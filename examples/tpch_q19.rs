//! Domain scenario 2: the full TPC-H Q19 query (Section 8) — selection
//! push-down, hash join, complex post-join predicate, aggregation — with
//! all four pluggable joins, printing the join's share of query time.
//!
//! ```text
//! cargo run --release --example tpch_q19 [scale_factor] [threads]
//! ```

use mmjoin::tpch::q19::{reference_q19, run_q19, Q19Join};
use mmjoin::tpch::{generate_tables, GenParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.2);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("TPC-H Q19 at scale factor {sf} ({} threads)", threads);
    let (part, lineitem) = generate_tables(&GenParams {
        scale_factor: sf,
        pre_selectivity: 0.0357,
        seed: 0x9119,
    });
    println!(
        "Part: {} rows, Lineitem: {} rows; pushed-down selection keeps 3.57%\n",
        part.len(),
        lineitem.len()
    );

    let expected = reference_q19(&part, &lineitem);
    println!(
        "{:<6} {:>12} {:>14} {:>12} {:>14}",
        "join", "total [ms]", "build/part[ms]", "probe [ms]", "revenue"
    );
    for join in Q19Join::ALL {
        let res = run_q19(join, &part, &lineitem, threads);
        let rel_err = (res.revenue - expected).abs() / expected.max(1.0);
        assert!(rel_err < 1e-6, "revenue mismatch for {}", join.name());
        println!(
            "{:<6} {:>12.1} {:>14.1} {:>12.1} {:>14.2}",
            join.name(),
            res.total_wall().as_secs_f64() * 1e3,
            res.build_wall.as_secs_f64() * 1e3,
            res.probe_wall.as_secs_f64() * 1e3,
            res.revenue
        );
    }
    println!("\n(Section 8: expect the join itself to be a small share of the query —");
    println!(" scanning, filtering and tuple reconstruction dominate.)");
}
