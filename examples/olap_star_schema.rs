//! Domain scenario 1: a star-schema OLAP fact-to-dimension join — the
//! workload that motivates the paper's 1:10 size ratio ("in a star
//! schema, often used in OLAP applications, the dimension tables are
//! typically much smaller than the fact table").
//!
//! We model a `sales` fact table joining a `customer` dimension, compare
//! a no-partitioning and a partition-based join, and use the NUMA cost
//! model to pick the better one for the (simulated) machine — i.e. a
//! miniature cost-based join-picker, the practitioner guidance of
//! Section 9 turned into code.
//!
//! ```text
//! cargo run --release --example olap_star_schema
//! ```

use mmjoin::core::{Algorithm, Join, JoinConfig};
use mmjoin::datagen::{gen_build_dense, gen_probe_zipf};
use mmjoin::util::Placement;

fn main() {
    let customers = 400_000; // dimension (dense surrogate keys)
    let sales = 4_000_000; // fact table rows
    let threads = 4;
    let placement = Placement::Chunked { parts: threads };

    println!("star schema: customer({customers}) ⋈ sales({sales})");
    println!("sales.customer_id is Zipf-skewed (loyal customers buy more)\n");

    // Moderate real-world skew on the foreign key.
    let dim = gen_build_dense(customers, 7, placement);
    let fact = gen_probe_zipf(sales, customers, 0.5, 8, placement);

    let cfg = JoinConfig::builder()
        .with_threads(threads)
        .with_sim_threads(32)
        .with_zipf(0.5)
        .build()
        .expect("valid configuration");

    println!(
        "{:<22} {:>14} {:>16} {:>10}",
        "plan", "sim time [ms]", "throughput[Mtps]", "matches"
    );
    let mut best: Option<(Algorithm, f64)> = None;
    for alg in [
        Algorithm::Nopa,
        Algorithm::Nop,
        Algorithm::Cpra,
        Algorithm::PraIs,
    ] {
        let res = Join::new(alg)
            .with_config(cfg.clone())
            .run(&dim, &fact)
            .expect("valid plan");
        let t = res.total_sim();
        println!(
            "{:<22} {:>14.2} {:>16.0} {:>10}",
            alg.name(),
            t * 1e3,
            res.sim_throughput_mtps(dim.len(), fact.len()),
            res.matches
        );
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((alg, t));
        }
    }
    let (winner, _) = best.unwrap();
    println!(
        "\ncost-model pick for this machine & workload: {}",
        winner.name()
    );
    println!("(lesson 7: with dense surrogate keys, array joins are hard to beat)");
}
