//! Quickstart: run every one of the thirteen join algorithms on the
//! study's canonical workload and print a leaderboard.
//!
//! ```text
//! cargo run --release --example quickstart [r_tuples] [s_tuples] [threads]
//! ```

use mmjoin::core::{Algorithm, Join, JoinConfig};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
use mmjoin::util::Placement;

fn main() {
    let mut args = std::env::args().skip(1);
    let r_n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500_000);
    let s_n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(r_n * 10);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("mmjoin quickstart: |R| = {r_n}, |S| = {s_n}, {threads} threads");
    println!("(dense primary keys 1..=|R|, uniform foreign-key probe — Section 7.1)\n");

    let placement = Placement::Chunked { parts: threads };
    let r = gen_build_dense(r_n, 42, placement);
    let s = gen_probe_fk(s_n, r_n, 43, placement);

    let cfg = JoinConfig::builder()
        .with_threads(threads)
        .with_sim_threads(32) // evaluate on the paper's 32-thread setup
        .build()
        .expect("valid configuration");

    let mut rows: Vec<(String, f64, f64, u64)> = Vec::new();
    for alg in Algorithm::ALL {
        let res = Join::new(alg)
            .with_config(cfg.clone())
            .run(&r, &s)
            .expect("valid plan");
        rows.push((
            alg.name().to_string(),
            res.sim_throughput_mtps(r.len(), s.len()),
            res.total_wall().as_secs_f64() * 1e3,
            res.matches,
        ));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!(
        "{:<7} {:>22} {:>14} {:>12}",
        "algo", "sim throughput [Mtps]", "wall [ms]", "matches"
    );
    for (name, tput, wall, matches) in &rows {
        println!("{name:<7} {tput:>22.0} {wall:>14.1} {matches:>12}");
    }
    println!("\nAll algorithms must report the same match count — they do: ");
    assert!(rows.iter().all(|r| r.3 == rows[0].3));
    println!("✓ {} matches each", rows[0].3);
}
