//! Domain scenario 3: "what-if" capacity planning with the NUMA cost
//! model — how would my join behave on a machine I don't have?
//!
//! The simulator answers the questions the paper's appendices study:
//! how does throughput scale with threads (Fig. 16), what does SMT do,
//! and what does suboptimal task scheduling cost (Fig. 6/7) — all
//! without owning a 4-socket box.
//!
//! ```text
//! cargo run --release --example numa_whatif
//! ```

use mmjoin::core::{Algorithm, Join};
use mmjoin::datagen::{gen_build_dense, gen_probe_fk};
use mmjoin::util::Placement;

fn main() {
    let r_n = 1 << 20;
    let s_n = r_n * 10;
    let host_threads = 4;
    let placement = Placement::Chunked {
        parts: host_threads,
    };
    let r = gen_build_dense(r_n, 1, placement);
    let s = gen_probe_fk(s_n, r_n, 2, placement);

    println!("what-if: CPRL vs NOP on the paper's 4-socket machine, varying threads\n");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "threads", "CPRL [Mtps]", "NOP [Mtps]", "CPRL/NOP"
    );
    for sim_threads in [4usize, 8, 16, 32, 60, 120] {
        let plan = |alg| {
            Join::new(alg)
                .with_threads(host_threads)
                .with_sim_threads(sim_threads)
                .run(&r, &s)
                .expect("valid plan")
        };
        let cprl = plan(Algorithm::Cprl);
        let nop = plan(Algorithm::Nop);
        let a = cprl.sim_throughput_mtps(r.len(), s.len());
        let b = nop.sim_throughput_mtps(r.len(), s.len());
        let smt = if sim_threads > 60 { " (SMT)" } else { "" };
        println!("{sim_threads:>8} {a:>16.0} {b:>16.0} {:>11.2}x{smt}", a / b);
    }

    println!("\nwhat-if: what does bad task scheduling cost PRO? (Fig. 6/7)");
    let plan = |alg| {
        Join::new(alg)
            .with_threads(host_threads)
            .with_sim_threads(60)
            .run(&r, &s)
            .expect("valid plan")
    };
    let pro = plan(Algorithm::Pro);
    let prois = plan(Algorithm::ProIs);
    println!(
        "  PRO   join phase: {:>8.2} ms (sequential task order, one hot node)",
        pro.sim_of("join") * 1e3
    );
    println!(
        "  PROiS join phase: {:>8.2} ms (NUMA round-robin, all controllers busy)",
        prois.sim_of("join") * 1e3
    );
    println!(
        "  speedup from scheduling alone: {:.2}x",
        pro.sim_of("join") / prois.sim_of("join")
    );
}
