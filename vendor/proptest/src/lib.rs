//! Minimal offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this crate provides a
//! deterministic re-implementation of exactly the API surface the
//! workspace's property tests use: `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy` with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, `any::<T>()`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: no shrinking, no persisted regression
//! files (`*.proptest-regressions` files are ignored), and the value
//! stream is a fixed function of the test name — every run sees the same
//! cases, which keeps CI deterministic.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $next:ident),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.$next() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8 => next_u64, u16 => next_u64, u32 => next_u64,
                        u64 => next_u64, usize => next_u64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T>() -> crate::strategy::Any<T>
    where
        crate::strategy::Any<T>: crate::strategy::Strategy,
    {
        crate::strategy::Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Anything usable as a vec-length spec: a range or a fixed length.
    pub trait IntoSizeRange {
        fn into_size_range(self) -> core::ops::Range<usize>;
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            *self.start()..self.end().saturating_add(1)
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self..self + 1
        }
    }

    /// `prop::collection::vec(element, len_range_or_exact_len)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Number of cases each `proptest!` test runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG (splitmix64 seeded from the test name).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            for b in name.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Run each embedded test function over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// `prop_assert!` — plain `assert!` (no shrinking machinery to report to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The `prop::` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u64..=5).generate(&mut rng);
            assert_eq!(w, 5);
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("lens");
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..10, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_compiles_and_runs(x in 0u32..100, mut v in prop::collection::vec(0u64..9, 0..5)) {
            prop_assert!(x < 100);
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
