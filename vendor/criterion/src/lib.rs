//! Minimal offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a simple
//! best-of-N timing loop instead of criterion's statistical machinery.
//! Good enough to keep the benches compiling, running, and printing
//! comparable numbers without network access.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported std implementation).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units a group's measurements are normalized to.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    best: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up once, then keep the best (least-noise) sample.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let t = start.elapsed();
            if t < self.best {
                self.best = t;
            }
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples,
        best: Duration::MAX,
    };
    f(&mut b);
    let secs = b.best.as_secs_f64();
    let rate = match tp {
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            format!("  {:>10.1} Melem/s", n as f64 / secs / 1e6)
        }
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / secs / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("  {name:<28} best {:>10.3} ms{rate}", secs * 1e3);
}

/// Declare a group of bench targets, optionally with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
