//! A fully-associative LRU data TLB with configurable page size.
//!
//! The pivotal hardware fact behind Figure 8: the paper's CPU has 256
//! data-TLB entries for 4 KB pages but only **32** for 2 MB pages — which
//! is why PRB (2 × 128-way scatter without SWWCB) gets *slower* with huge
//! pages while every buffered algorithm gets faster.

/// Fully-associative LRU TLB.
pub struct Tlb {
    /// Page numbers, LRU order (index 0 = most recent). `u64::MAX` = invalid.
    slots: Vec<u64>,
    page_shift: u32,
    hits: u64,
    misses: u64,
}

impl Tlb {
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0);
        assert!(page_bytes.is_power_of_two());
        Tlb {
            slots: vec![u64::MAX; entries],
            page_shift: page_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Translate the page containing `addr`. Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: usize) -> bool {
        let page = (addr >> self.page_shift) as u64;
        if let Some(pos) = self.slots.iter().position(|&p| p == page) {
            self.slots[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            self.slots.rotate_right(1);
            self.slots[0] = page;
            self.misses += 1;
            false
        }
    }

    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    pub fn page_bytes(&self) -> usize {
        1usize << self.page_shift
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(100));
        assert!(t.access(200));
        assert!(t.access(4095));
        assert!(!t.access(4096), "next page misses");
    }

    #[test]
    fn capacity_and_lru() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 MRU
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0));
        assert!(!t.access(4096));
    }

    #[test]
    fn huge_pages_cover_more_bytes() {
        let mut t = Tlb::new(1, 2 * 1024 * 1024);
        assert!(!t.access(0));
        assert!(t.access(2 * 1024 * 1024 - 1));
        assert!(!t.access(2 * 1024 * 1024));
    }
}
