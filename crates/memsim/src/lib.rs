//! Trace-driven memory-hierarchy simulator.
//!
//! The paper's Table 4 reports L2/L3 misses, hit rates, instructions
//! retired and IPC from Intel VTune; Figure 8 hinges on the TLB capacity
//! difference between 4 KB pages (256 entries) and 2 MB pages (32
//! entries). Since this reproduction cannot assume hardware counters, the
//! instrumented variants of the join kernels (see `mmjoin-core`'s
//! `instrumented` module) emit their real memory accesses into [`MemSim`],
//! a set-associative L1/L2/L3 + TLB model implementing
//! [`mmjoin_util::trace::MemTracer`].
//!
//! Fidelity notes: caches are LRU, physically-indexed-by-virtual-address
//! (no address translation beyond the page granularity the TLB sees),
//! single-core (the instrumented runs are single-threaded and scaled
//! down; Table 4's qualitative statements — partition-based joins trade
//! more instructions for ~99% join-phase hit rates, CHTJ doubles misses
//! vs NOP, array tables miss less than hash tables — are all products of
//! the access *pattern*, which is exact here). "Instructions retired" is
//! approximated by the kernels' op counts; IPC uses a simple
//! penalty-weighted cycle model.

pub mod cache;
pub mod tlb;

pub use cache::{Cache, CacheConfig};
pub use tlb::Tlb;

use mmjoin_util::trace::MemTracer;
use mmjoin_util::CACHE_LINE;

/// Aggregated counters of one instrumented phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    pub accesses: u64,
    pub l1_misses: u64,
    pub l2_accesses: u64,
    pub l2_misses: u64,
    pub l3_accesses: u64,
    pub l3_misses: u64,
    pub tlb_accesses: u64,
    pub tlb_misses: u64,
    pub ops: u64,
}

impl Counters {
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            return 0.0;
        }
        1.0 - self.l2_misses as f64 / self.l2_accesses as f64
    }

    pub fn l3_hit_rate(&self) -> f64 {
        if self.l3_accesses == 0 {
            return 0.0;
        }
        1.0 - self.l3_misses as f64 / self.l3_accesses as f64
    }

    pub fn tlb_miss_rate(&self) -> f64 {
        if self.tlb_accesses == 0 {
            return 0.0;
        }
        self.tlb_misses as f64 / self.tlb_accesses as f64
    }

    /// Penalty-weighted cycle model for the IPC proxy: a ~3-wide
    /// superscalar core retires ops at 0.35 cycles each; L1 misses that
    /// hit L2 are almost fully overlapped (1 cycle exposed), deeper
    /// misses expose more of their latency (L2→L3 8, L3→DRAM 45 cycles,
    /// TLB walk 25).
    pub fn cycles(&self) -> f64 {
        0.35 * self.ops as f64
            + 1.0 * self.l1_misses as f64
            + 8.0 * self.l2_misses as f64
            + 45.0 * self.l3_misses as f64
            + 25.0 * self.tlb_misses as f64
    }

    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0.0 {
            return 0.0;
        }
        self.ops as f64 / c
    }

    pub fn merge(&mut self, other: &Counters) {
        self.accesses += other.accesses;
        self.l1_misses += other.l1_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_misses += other.l2_misses;
        self.l3_accesses += other.l3_accesses;
        self.l3_misses += other.l3_misses;
        self.tlb_accesses += other.tlb_accesses;
        self.tlb_misses += other.tlb_misses;
        self.ops += other.ops;
    }
}

/// A three-level cache hierarchy plus data TLB.
pub struct MemSim {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    tlb: Tlb,
    counters: Counters,
}

impl MemSim {
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig, tlb: Tlb) -> Self {
        MemSim {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
            tlb,
            counters: Counters::default(),
        }
    }

    /// The paper's per-core hierarchy (Section 7.1): 32 KB L1d, 256 KB
    /// L2, 30 MB L3 (shared; the instrumented runs are single-threaded so
    /// the whole LLC is available), and a TLB sized for the page size.
    pub fn paper_machine(page_bytes: usize, tlb_entries: usize) -> Self {
        MemSim::new(
            CacheConfig::new(32 * 1024, 8),
            CacheConfig::new(256 * 1024, 8),
            CacheConfig::new(30 * 1024 * 1024, 16),
            Tlb::new(tlb_entries, page_bytes),
        )
    }

    /// A proportionally scaled-down hierarchy for small instrumented
    /// inputs: caches shrunk by `factor` so an input scaled by `factor`
    /// exercises the same capacity boundaries.
    pub fn scaled_paper_machine(factor: usize, page_bytes: usize, tlb_entries: usize) -> Self {
        let f = factor.max(1);
        // Floors match `Topology::paper_machine_scaled`'s effective
        // capacities so Equation (1)'s table sizing stays consistent
        // with the simulated caches at extreme scales.
        MemSim::new(
            CacheConfig::new((32 * 1024 / f).max(4 * CACHE_LINE), 4),
            CacheConfig::new((256 * 1024 / f).max(16 * CACHE_LINE), 8),
            CacheConfig::new((30 * 1024 * 1024 / f).max(64 * CACHE_LINE), 16),
            Tlb::new(tlb_entries, page_bytes),
        )
    }

    fn touch(&mut self, addr: usize, len: usize) {
        let first_line = addr / CACHE_LINE;
        let last_line = (addr + len.max(1) - 1) / CACHE_LINE;
        for line in first_line..=last_line {
            self.counters.accesses += 1;
            // A memory access retires ~2 instructions (address generation
            // + the load/store) on top of the kernels' explicit op counts
            // — the "instructions retired" proxy of Table 4.
            self.counters.ops += 2;
            self.counters.tlb_accesses += 1;
            if !self.tlb.access(line * CACHE_LINE) {
                self.counters.tlb_misses += 1;
            }
            if self.l1.access(line as u64) {
                continue;
            }
            self.counters.l1_misses += 1;
            self.counters.l2_accesses += 1;
            if self.l2.access(line as u64) {
                continue;
            }
            self.counters.l2_misses += 1;
            self.counters.l3_accesses += 1;
            if !self.l3.access(line as u64) {
                self.counters.l3_misses += 1;
            }
        }
    }

    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Reset counters (not cache contents) — e.g. between the build and
    /// probe phases of one run, like VTune's per-phase collection.
    pub fn reset_counters(&mut self) -> Counters {
        std::mem::take(&mut self.counters)
    }
}

impl MemTracer for MemSim {
    #[inline]
    fn read(&mut self, addr: usize, len: usize) {
        self.touch(addr, len);
    }

    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        self.touch(addr, len);
    }

    #[inline]
    fn ops(&mut self, n: u64) {
        self.counters.ops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sim() -> MemSim {
        // L1 = 4 lines direct..2-way, L2 = 16 lines, L3 = 64 lines.
        MemSim::new(
            CacheConfig::new(4 * 64, 2),
            CacheConfig::new(16 * 64, 4),
            CacheConfig::new(64 * 64, 8),
            Tlb::new(4, 4096),
        )
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut sim = tiny_sim();
        // Scan 1 MB in 8-byte steps: every 8th access misses L1 (new
        // line), and since the footprint exceeds all levels, every line
        // also misses L2 and L3.
        let n = 1 << 20;
        for off in (0..n).step_by(8) {
            sim.read(0x10_0000 + off, 8);
        }
        let c = sim.counters();
        let lines = (n / 64) as u64;
        assert_eq!(c.accesses, (n / 8) as u64);
        assert_eq!(c.l1_misses, lines);
        assert_eq!(c.l3_misses, lines);
    }

    #[test]
    fn repeated_small_working_set_hits() {
        let mut sim = tiny_sim();
        // Two lines accessed repeatedly: after the first touches,
        // everything hits L1.
        for _ in 0..1000 {
            sim.read(0x1000, 8);
            sim.read(0x1040, 8);
        }
        let c = sim.counters();
        assert_eq!(c.l1_misses, 2);
        assert_eq!(c.l3_misses, 2);
    }

    #[test]
    fn l2_captures_medium_working_set() {
        let mut sim = tiny_sim();
        // 8 lines: exceeds L1 (4 lines) but fits L2 (16 lines).
        for _ in 0..100 {
            for i in 0..8usize {
                sim.read(i * 64, 8);
            }
        }
        let c = sim.counters();
        assert!(c.l1_misses > 8, "L1 thrashes");
        assert_eq!(c.l2_misses, 8, "L2 holds the set after cold misses");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut sim = tiny_sim();
        sim.read(60, 8); // bytes 60..68 cross the line boundary at 64
        assert_eq!(sim.counters().accesses, 2);
    }

    #[test]
    fn tlb_capacity_behaviour() {
        let mut sim = tiny_sim(); // 4 TLB entries, 4 KB pages
                                  // Cycle through 8 pages: every access a TLB miss (LRU thrash).
        for _ in 0..10 {
            for p in 0..8usize {
                sim.read(p * 4096, 8);
            }
        }
        let c = sim.counters();
        assert_eq!(c.tlb_misses, 80);
        // Now a simulator with 8 entries sees only cold misses.
        let mut sim2 = MemSim::new(
            CacheConfig::new(4 * 64, 2),
            CacheConfig::new(16 * 64, 4),
            CacheConfig::new(64 * 64, 8),
            Tlb::new(8, 4096),
        );
        for _ in 0..10 {
            for p in 0..8usize {
                sim2.read(p * 4096, 8);
            }
        }
        assert_eq!(sim2.counters().tlb_misses, 8);
    }

    #[test]
    fn huge_pages_reduce_tlb_misses_for_scans() {
        let mb = 1 << 20;
        let mut small = MemSim::paper_machine(4096, 256);
        let mut huge = MemSim::paper_machine(2 * mb, 32);
        for off in (0..8 * mb).step_by(64) {
            small.read(off, 8);
            huge.read(off, 8);
        }
        assert!(small.counters().tlb_misses > huge.counters().tlb_misses * 100);
    }

    #[test]
    fn counters_math() {
        let c = Counters {
            accesses: 100,
            l1_misses: 10,
            l2_accesses: 10,
            l2_misses: 5,
            l3_accesses: 5,
            l3_misses: 1,
            tlb_accesses: 100,
            tlb_misses: 2,
            ops: 1000,
        };
        assert!((c.l2_hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.l3_hit_rate() - 0.8).abs() < 1e-12);
        assert!(c.ipc() > 0.0 && c.ipc() < 3.0);
        let mut d = c.clone();
        d.merge(&c);
        assert_eq!(d.ops, 2000);
    }
}
