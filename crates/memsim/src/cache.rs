//! A set-associative, LRU, write-allocate cache level.

use mmjoin_util::CACHE_LINE;

/// Geometry of one cache level.
#[derive(Copy, Clone, Debug)]
pub struct CacheConfig {
    /// Total bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    pub fn new(size: usize, assoc: usize) -> Self {
        assert!(size >= CACHE_LINE * assoc, "cache smaller than one set");
        CacheConfig { size, assoc }
    }

    pub fn sets(&self) -> usize {
        (self.size / CACHE_LINE / self.assoc).next_power_of_two()
    }
}

/// One cache level. Tags are line numbers; each set is kept in LRU order
/// (index 0 = most recent).
pub struct Cache {
    /// `sets * assoc` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    assoc: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            tags: vec![u64::MAX; sets * config.assoc],
            assoc: config.assoc,
            set_mask: (sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one cache line (by line number). Returns `true` on hit.
    /// Misses allocate (LRU eviction).
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let ways = &mut self.tags[set * self.assoc..(set + 1) * self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to front (most recently used).
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            // Evict LRU (last), insert at front.
            ways.rotate_right(1);
            ways[0] = line;
            self.misses += 1;
            false
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(CacheConfig::new(64 * 8, 2));
        assert!(!c.access(5));
        assert!(c.access(5));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2-way, 4 sets: lines 0, 4, 8 all map to set 0.
        let mut c = Cache::new(CacheConfig::new(64 * 8, 2));
        c.access(0);
        c.access(4);
        c.access(0); // 0 is now MRU
        assert!(!c.access(8)); // evicts 4
        assert!(c.access(0), "0 survived");
        assert!(!c.access(4), "4 was evicted");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = Cache::new(CacheConfig::new(64 * 8, 2));
        for line in 0..4u64 {
            c.access(line);
        }
        for line in 0..4u64 {
            assert!(c.access(line), "line {line}");
        }
    }

    #[test]
    fn full_associativity_capacity() {
        // 8 lines total, 8-way = 1 set: holds exactly 8 lines.
        let mut c = Cache::new(CacheConfig::new(64 * 8, 8));
        for line in 0..8u64 {
            c.access(line);
        }
        for line in 0..8u64 {
            assert!(c.access(line));
        }
        c.access(100); // evicts LRU = line 0 (accessed longest ago)
        assert!(!c.access(0));
    }
}
