//! The *real* host's memory topology, detected from `/sys`.
//!
//! Everything else in this crate describes a *simulated* machine; the
//! detection here answers the complementary question "what is the box
//! this process actually runs on capable of?" — how many NUMA nodes the
//! OS exposes, whether transparent huge pages are enabled, and whether
//! any explicit 2 MiB hugepages are reserved. The bench harness stamps
//! the answer into run metadata (runs from hosts with different
//! topologies are not comparable), and `host_machine` turns it into a
//! first-order [`Topology`] for simulating "this host" instead of the
//! paper's machine.
//!
//! The parsing itself lives in `mmjoin_util::mem` next to the syscall
//! layer that consumes it; this module re-exports it as the public
//! topology-facing API.

pub use mmjoin_util::mem::{detect_topology_from, host_topology, HostTopology};

use crate::topology::{PageSize, Topology};

/// A [`Topology`] describing the detected host, for simulating on "this
/// machine" rather than the paper's.
///
/// First-order by construction: node count comes from `/sys`, cores are
/// split evenly across nodes from `threads`, caches keep the paper's
/// per-core/per-socket sizes (the model's sensitivity is to *placement*,
/// not exact cache geometry), and the page size reflects whether the
/// host can actually back allocations with 2 MiB pages (THP enabled or
/// hugepages reserved).
pub fn host_machine(threads: usize) -> Topology {
    let host = host_topology();
    let nodes = host.nodes.max(1);
    let threads = threads.max(1);
    let mut t = Topology::paper_machine();
    t.nodes = nodes;
    t.cores_per_node = threads.div_ceil(nodes).max(1);
    t.smt = 1;
    t.page_size = if host.thp_enabled || host.free_hugepages_2m > 0 {
        PageSize::Huge2M
    } else {
        PageSize::Small4K
    };
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_machine_is_well_formed() {
        for threads in [0, 1, 3, 64] {
            let t = host_machine(threads);
            assert!(t.nodes >= 1);
            assert!(t.cores_per_node >= 1);
            assert!(t.physical_cores() >= threads.max(1) / 2);
        }
    }

    #[test]
    fn reexports_detect() {
        // The re-exported detection API is callable and total.
        let h = host_topology();
        assert!(h.nodes >= 1);
        let absent = detect_topology_from(std::path::Path::new("/nonexistent-mmjoin"));
        assert_eq!(absent.nodes, 1);
        assert!(!absent.detected);
    }
}
