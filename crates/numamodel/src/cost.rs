//! First-order NUMA cost parameters.
//!
//! Numbers are representative of the paper's platform class (Ivy Bridge EX,
//! QPI interconnect); the *ratios* (remote/local bandwidth and latency) are
//! what drive every qualitative result, and those ratios are taken from the
//! platform's published characteristics.

/// Cost-model parameters for the simulated machine.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Peak DRAM bandwidth of one node's memory controller, bytes/s.
    pub node_bandwidth: f64,
    /// Total interconnect (QPI) bandwidth of one socket, bytes/s — shared
    /// by all of that socket's concurrent remote streams.
    pub link_bandwidth: f64,
    /// Local DRAM random-access latency, seconds.
    pub local_latency: f64,
    /// Remote DRAM random-access latency, seconds.
    pub remote_latency: f64,
    /// Memory-level parallelism: how many outstanding random misses the
    /// out-of-order core overlaps (divides effective random-access cost).
    pub mlp: f64,
    /// CPU cost per simple per-tuple operation (hash, compare, copy),
    /// seconds. Used for the compute component of task costs.
    pub cpu_op: f64,
    /// Multiplier on effective per-core compute throughput when two SMT
    /// threads share a core (>1 means slower per thread).
    pub smt_penalty: f64,
    /// Extra cost per TLB miss, seconds (page-walk).
    pub tlb_miss: f64,
}

impl CostModel {
    /// Defaults for the paper-class 4-socket Ivy Bridge EX machine.
    pub fn paper_machine() -> Self {
        CostModel {
            node_bandwidth: 55e9,
            link_bandwidth: 28e9,
            local_latency: 90e-9,
            remote_latency: 160e-9,
            mlp: 6.0,
            // ~2–3 simple ops per cycle at 2.3 GHz (the join kernels
            // retire ~20 instructions/tuple at IPC ≈ 2, Table 4).
            cpu_op: 0.25e-9,
            smt_penalty: 1.6,
            tlb_miss: 35e-9,
        }
    }

    /// Effective time for `n` random accesses at `latency`, overlapped by
    /// the MLP factor.
    #[inline]
    pub fn random_access_time(&self, n: f64, remote: bool) -> f64 {
        let lat = if remote {
            self.remote_latency
        } else {
            self.local_latency
        };
        n * lat / self.mlp
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_is_slower() {
        let m = CostModel::paper_machine();
        assert!(m.remote_latency > m.local_latency);
        assert!(m.link_bandwidth < m.node_bandwidth);
        assert!(m.random_access_time(1e6, true) > m.random_access_time(1e6, false));
    }

    #[test]
    fn mlp_overlaps_latency() {
        let m = CostModel::paper_machine();
        let serial = 1e6 * m.local_latency;
        assert!(m.random_access_time(1e6, false) < serial);
    }
}
