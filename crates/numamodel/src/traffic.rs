//! Node-to-node traffic matrices.
//!
//! Figure 4 of the paper shows the NUMA *write patterns* of PRO (every
//! thread writes to every node — many random remote writes) versus CPRL
//! (every thread writes only to its local node). `TrafficMatrix` is the
//! quantified version: bytes moved from the node of the initiating thread
//! to the node of the touched memory, split by access class.

/// Access classes tracked per (initiator node, target node) pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessClass {
    SeqRead,
    SeqWrite,
    RandRead,
    RandWrite,
}

/// Bytes moved between nodes, per access class.
#[derive(Clone, Debug)]
pub struct TrafficMatrix {
    nodes: usize,
    /// `[class][from][to]` in bytes, class indexed by `AccessClass as usize`.
    bytes: Vec<Vec<Vec<f64>>>,
}

impl TrafficMatrix {
    pub fn new(nodes: usize) -> Self {
        TrafficMatrix {
            nodes,
            bytes: vec![vec![vec![0.0; nodes]; nodes]; 4],
        }
    }

    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn add(&mut self, class: AccessClass, from: usize, to: usize, bytes: f64) {
        self.bytes[class as usize][from][to] += bytes;
    }

    pub fn get(&self, class: AccessClass, from: usize, to: usize) -> f64 {
        self.bytes[class as usize][from][to]
    }

    pub fn merge(&mut self, other: &TrafficMatrix) {
        assert_eq!(self.nodes, other.nodes);
        for c in 0..4 {
            for f in 0..self.nodes {
                for t in 0..self.nodes {
                    self.bytes[c][f][t] += other.bytes[c][f][t];
                }
            }
        }
    }

    /// Total bytes written to memory on a *different* node than the
    /// initiating thread — the quantity CPRL eliminates.
    pub fn remote_write_bytes(&self) -> f64 {
        let mut sum = 0.0;
        for c in [AccessClass::SeqWrite, AccessClass::RandWrite] {
            for f in 0..self.nodes {
                for t in 0..self.nodes {
                    if f != t {
                        sum += self.bytes[c as usize][f][t];
                    }
                }
            }
        }
        sum
    }

    /// Total bytes read from remote nodes.
    pub fn remote_read_bytes(&self) -> f64 {
        let mut sum = 0.0;
        for c in [AccessClass::SeqRead, AccessClass::RandRead] {
            for f in 0..self.nodes {
                for t in 0..self.nodes {
                    if f != t {
                        sum += self.bytes[c as usize][f][t];
                    }
                }
            }
        }
        sum
    }

    /// Total bytes in all classes.
    pub fn total_bytes(&self) -> f64 {
        self.bytes.iter().flatten().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_split() {
        let mut m = TrafficMatrix::new(4);
        m.add(AccessClass::SeqWrite, 0, 0, 100.0); // local write
        m.add(AccessClass::SeqWrite, 0, 1, 50.0); // remote write
        m.add(AccessClass::RandWrite, 2, 3, 25.0); // remote write
        m.add(AccessClass::SeqRead, 1, 0, 10.0); // remote read
        assert_eq!(m.remote_write_bytes(), 75.0);
        assert_eq!(m.remote_read_bytes(), 10.0);
        assert_eq!(m.total_bytes(), 185.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = TrafficMatrix::new(2);
        a.add(AccessClass::SeqRead, 0, 1, 5.0);
        let mut b = TrafficMatrix::new(2);
        b.add(AccessClass::SeqRead, 0, 1, 7.0);
        a.merge(&b);
        assert_eq!(a.get(AccessClass::SeqRead, 0, 1), 12.0);
    }
}
