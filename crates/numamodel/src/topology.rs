//! Machine topology: sockets, cores, SMT, caches, TLB, page size.
//!
//! The default is the paper's testbed (Section 7.1): four Intel Xeon
//! E7-4870 v2 sockets, 15 physical cores per socket, 2-way SMT, 32 KB L1d,
//! 256 KB L2, 30 MB shared L3 per socket, 256 TLB entries with 4 KB pages
//! but only 32 with 2 MB pages.

/// Virtual-memory page size used for all allocations (Section 7.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PageSize {
    /// 4 KB small pages, 256 data-TLB entries on the paper's CPU.
    Small4K,
    /// 2 MB transparent huge pages, only 32 TLB entries.
    Huge2M,
}

impl PageSize {
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            PageSize::Small4K => 4 * 1024,
            PageSize::Huge2M => 2 * 1024 * 1024,
        }
    }

    /// Number of data-TLB entries available at this page size on the
    /// paper's Ivy Bridge EX (Section 7.1).
    #[inline]
    pub fn tlb_entries(self) -> usize {
        match self {
            PageSize::Small4K => 256,
            PageSize::Huge2M => 32,
        }
    }
}

/// A (simulated) shared-memory machine.
#[derive(Clone, Debug)]
pub struct Topology {
    /// NUMA nodes (= sockets).
    pub nodes: usize,
    /// Physical cores per socket.
    pub cores_per_node: usize,
    /// Hardware threads per core (SMT ways).
    pub smt: usize,
    /// Private L1 data cache per core, bytes.
    pub l1d: usize,
    /// Private L2 cache per core, bytes.
    pub l2: usize,
    /// Shared last-level cache per socket, bytes.
    pub llc: usize,
    /// Page size for all allocations.
    pub page_size: PageSize,
    /// Capacity scale divisor: caches and page bytes are reported divided
    /// by this. Used to emulate the paper's machine against inputs scaled
    /// down by the same factor — every capacity-relative crossover (table
    /// vs LLC, TLB coverage vs table) then falls at the same *relative*
    /// input size as on the real machine. 1 = unscaled.
    pub capacity_scale: usize,
}

impl Topology {
    /// The paper's machine: 4 × (15 cores × 2 SMT), 30 MB LLC/socket.
    pub fn paper_machine() -> Self {
        Topology {
            nodes: 4,
            cores_per_node: 15,
            smt: 2,
            l1d: 32 * 1024,
            l2: 256 * 1024,
            llc: 30 * 1024 * 1024,
            page_size: PageSize::Huge2M,
            capacity_scale: 1,
        }
    }

    /// The paper's machine with caches/pages shrunk by `scale`, for runs
    /// whose input data is scaled down by the same factor (see DESIGN.md).
    pub fn paper_machine_scaled(scale: usize) -> Self {
        let mut t = Topology::paper_machine();
        t.capacity_scale = scale.max(1);
        t
    }

    /// Effective L2 per core after scaling.
    #[inline]
    pub fn l2_bytes(&self) -> usize {
        (self.l2 / self.capacity_scale).max(1024)
    }

    /// Effective LLC per socket after scaling.
    #[inline]
    pub fn llc_bytes(&self) -> usize {
        (self.llc / self.capacity_scale).max(4096)
    }

    /// Effective page bytes after scaling.
    #[inline]
    pub fn page_bytes(&self) -> usize {
        (self.page_size.bytes() / self.capacity_scale).max(64)
    }

    /// Data-TLB entries (page-size dependent, not scaled).
    #[inline]
    pub fn tlb_entries(&self) -> usize {
        self.page_size.tlb_entries()
    }

    /// A single-socket machine (for PRB/PRO's original design context).
    pub fn single_socket(cores: usize) -> Self {
        Topology {
            nodes: 1,
            cores_per_node: cores,
            smt: 1,
            l1d: 32 * 1024,
            l2: 256 * 1024,
            llc: 20 * 1024 * 1024,
            page_size: PageSize::Huge2M,
            capacity_scale: 1,
        }
    }

    /// Total physical cores.
    #[inline]
    pub fn physical_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Total hardware contexts.
    #[inline]
    pub fn hw_contexts(&self) -> usize {
        self.physical_cores() * self.smt
    }

    /// NUMA node a given logical thread runs on.
    ///
    /// Threads are distributed round-robin over nodes — exactly the thread
    /// placement of Appendix B ("From that starting point we increase the
    /// number of threads distributing threads evenly across NUMA regions").
    #[inline]
    pub fn node_of_thread(&self, thread: usize) -> usize {
        thread % self.nodes
    }

    /// Whether running `threads` threads requires SMT (more threads than
    /// physical cores) — SMT threads share private L1/L2 (Appendix B).
    #[inline]
    pub fn uses_smt(&self, threads: usize) -> bool {
        threads > self.physical_cores()
    }

    /// Share of the socket-level LLC available to one of `threads` running
    /// threads (footnote 5 of the paper: "As the LLC is shared between
    /// cores, the available share per thread is dependent on the number of
    /// concurrently running threads").
    #[inline]
    pub fn llc_per_thread(&self, threads: usize) -> usize {
        let threads_per_node = threads.div_ceil(self.nodes).max(1);
        self.llc_bytes() / threads_per_node
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_dimensions() {
        let t = Topology::paper_machine();
        assert_eq!(t.physical_cores(), 60);
        assert_eq!(t.hw_contexts(), 120);
        assert_eq!(t.nodes, 4);
    }

    #[test]
    fn round_robin_thread_placement() {
        let t = Topology::paper_machine();
        assert_eq!(t.node_of_thread(0), 0);
        assert_eq!(t.node_of_thread(1), 1);
        assert_eq!(t.node_of_thread(4), 0);
        assert_eq!(t.node_of_thread(7), 3);
    }

    #[test]
    fn smt_threshold() {
        let t = Topology::paper_machine();
        assert!(!t.uses_smt(60));
        assert!(t.uses_smt(61));
        assert!(t.uses_smt(120));
    }

    #[test]
    fn tlb_entries_shrink_with_huge_pages() {
        assert_eq!(PageSize::Small4K.tlb_entries(), 256);
        assert_eq!(PageSize::Huge2M.tlb_entries(), 32);
        assert!(PageSize::Huge2M.bytes() > PageSize::Small4K.bytes());
    }

    #[test]
    fn llc_share_shrinks_with_threads() {
        let t = Topology::paper_machine();
        assert!(t.llc_per_thread(60) < t.llc_per_thread(4));
        // 32 threads over 4 nodes = 8 per node => 30MB/8.
        assert_eq!(t.llc_per_thread(32), 30 * 1024 * 1024 / 8);
    }
}
