//! Simulated NUMA machine: topology, placement-aware traffic accounting,
//! and a bandwidth-contention simulator.
//!
//! # Why this crate exists
//!
//! The paper runs on a 4-socket Intel Xeon E7-4870 v2 (60 physical cores,
//! 120 hardware contexts, 4 NUMA nodes). This reproduction runs wherever
//! `cargo test` runs — possibly a single-core laptop. All algorithms in
//! `mmjoin-core` are *really* multi-threaded (their correctness under
//! concurrency is tested for real), but their *performance characteristics
//! under NUMA* — which is what Figures 5–7, 15, 16 and Table 3 study — are
//! properties of where data lives and who moves it, not of the host they
//! happen to execute on.
//!
//! Each algorithm therefore additionally describes every barrier-delimited
//! phase as a set of [`TaskSpec`]s: "this task moves this many bytes
//! from/to this node, performs this many random accesses, and burns this
//! much CPU". The [`sim`] module schedules those tasks on a configurable
//! [`Topology`] under a [`CostModel`] with per-node bandwidth contention,
//! yielding:
//!
//! * simulated phase/total runtimes (thread-scaling curves, Fig 16/Table 3),
//! * per-node bandwidth-utilization timelines (Fig 6),
//! * node-to-node traffic matrices (Fig 4's write patterns, quantified).
//!
//! The model is deliberately first-order: sequential traffic is
//! bandwidth-bound (node bandwidth split evenly among concurrent users),
//! random traffic is latency-bound with a memory-level-parallelism factor,
//! and remote accesses pay an interconnect premium. That is exactly the
//! level of fidelity the paper's arguments rely on (remote writes are
//! expensive; one hot memory controller serializes the join phase; SMT
//! shares private caches).

pub mod cost;
pub mod host;
pub mod sim;
pub mod task;
pub mod topology;
pub mod traffic;

pub use cost::CostModel;
pub use host::{host_machine, host_topology, HostTopology};
pub use sim::{simulate_phase, PhaseSim};
pub use task::TaskSpec;
pub use topology::Topology;
pub use traffic::TrafficMatrix;
