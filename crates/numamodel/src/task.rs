//! Task descriptions consumed by the phase simulator.
//!
//! A [`TaskSpec`] is the cost-model summary of one schedulable unit of
//! work: either a thread's chunk of a scan/partition/probe phase, or one
//! co-partition join task pulled from the task queue. It records how many
//! bytes the task streams from/to each NUMA node, how many random (cache-
//! missing) accesses it performs against each node, and its pure CPU
//! component.

use crate::topology::Topology;

/// One schedulable unit of work for the simulator.
#[derive(Clone, Debug, Default)]
pub struct TaskSpec {
    /// Sequentially streamed bytes (reads + writes) against each node.
    pub stream_bytes: Vec<f64>,
    /// Random (DRAM-latency) accesses against each node.
    pub random_accesses: Vec<f64>,
    /// Per-tuple-style CPU operations (hashing, comparisons, copies).
    pub cpu_ops: f64,
    /// TLB misses attributed to this task (page-size dependent).
    pub tlb_misses: f64,
    /// Node preference of the executing thread; the simulator uses it to
    /// decide local vs remote costs. `None` = assigned at schedule time.
    pub home_node: Option<usize>,
}

impl TaskSpec {
    pub fn new(nodes: usize) -> Self {
        TaskSpec {
            stream_bytes: vec![0.0; nodes],
            random_accesses: vec![0.0; nodes],
            cpu_ops: 0.0,
            tlb_misses: 0.0,
            home_node: None,
        }
    }

    /// Add `bytes` of streamed traffic against `node`.
    pub fn stream(&mut self, node: usize, bytes: f64) -> &mut Self {
        self.stream_bytes[node] += bytes;
        self
    }

    /// Spread `bytes` of streamed traffic evenly over all nodes
    /// (interleaved buffers).
    pub fn stream_interleaved(&mut self, bytes: f64) -> &mut Self {
        let n = self.stream_bytes.len() as f64;
        for b in &mut self.stream_bytes {
            *b += bytes / n;
        }
        self
    }

    /// Add `n` random accesses against `node`.
    pub fn random(&mut self, node: usize, n: f64) -> &mut Self {
        self.random_accesses[node] += n;
        self
    }

    /// Spread `n` random accesses evenly over all nodes (e.g. probes of an
    /// interleaved global hash table).
    pub fn random_interleaved(&mut self, n: f64) -> &mut Self {
        let k = self.random_accesses.len() as f64;
        for r in &mut self.random_accesses {
            *r += n / k;
        }
        self
    }

    pub fn cpu(&mut self, ops: f64) -> &mut Self {
        self.cpu_ops += ops;
        self
    }

    pub fn tlb(&mut self, misses: f64) -> &mut Self {
        self.tlb_misses += misses;
        self
    }

    pub fn on_node(&mut self, node: usize) -> &mut Self {
        self.home_node = Some(node);
        self
    }

    /// Total bytes streamed, for sanity assertions.
    pub fn total_stream_bytes(&self) -> f64 {
        self.stream_bytes.iter().sum()
    }
}

/// Helper: build one `TaskSpec` per thread for a simple chunked scan phase
/// where each thread streams its chunk of a buffer with the given placement.
pub fn chunked_scan_tasks(
    topo: &Topology,
    threads: usize,
    total_bytes: f64,
    placement: mmjoin_util::Placement,
) -> Vec<TaskSpec> {
    let mut tasks = Vec::with_capacity(threads);
    let per_thread = total_bytes / threads as f64;
    for t in 0..threads {
        let mut spec = TaskSpec::new(topo.nodes);
        spec.on_node(topo.node_of_thread(t));
        match placement {
            mmjoin_util::Placement::Node(n) => {
                spec.stream(n % topo.nodes, per_thread);
            }
            mmjoin_util::Placement::Interleaved => {
                spec.stream_interleaved(per_thread);
            }
            mmjoin_util::Placement::Chunked { .. } => {
                // Thread t's chunk lives on node_of_thread(t) when chunk
                // count equals thread count; otherwise approximately the
                // proportional node.
                spec.stream(topo.node_of_thread(t), per_thread);
            }
        }
        tasks.push(spec);
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::Placement;

    #[test]
    fn builder_accumulates() {
        let mut t = TaskSpec::new(4);
        t.stream(0, 100.0).stream(0, 50.0).random(2, 7.0).cpu(3.0);
        assert_eq!(t.stream_bytes[0], 150.0);
        assert_eq!(t.random_accesses[2], 7.0);
        assert_eq!(t.cpu_ops, 3.0);
        assert_eq!(t.total_stream_bytes(), 150.0);
    }

    #[test]
    fn interleaved_splits_evenly() {
        let mut t = TaskSpec::new(4);
        t.stream_interleaved(400.0);
        assert!(t.stream_bytes.iter().all(|&b| (b - 100.0).abs() < 1e-9));
    }

    #[test]
    fn chunked_scan_conserves_bytes() {
        let topo = Topology::paper_machine();
        for placement in [
            Placement::Interleaved,
            Placement::Node(2),
            Placement::Chunked { parts: 8 },
        ] {
            let tasks = chunked_scan_tasks(&topo, 8, 8000.0, placement);
            let total: f64 = tasks.iter().map(TaskSpec::total_stream_bytes).sum();
            assert!((total - 8000.0).abs() < 1e-6, "{placement:?}");
        }
    }
}
