//! Event-driven phase simulator with per-node bandwidth contention.
//!
//! Given the [`TaskSpec`]s of one barrier-delimited phase and a task order,
//! the simulator executes them on `threads` simulated workers:
//!
//! * Each worker runs one task at a time and pulls the next task from the
//!   queue in the given order when it finishes (exactly the LIFO/FIFO task
//!   queues of the PR*/CPR* join phases).
//! * A task streams its per-node byte demands concurrently from/to all
//!   nodes. At any instant, a node's bandwidth is split evenly among the
//!   active tasks using it; remote streams are additionally capped by the
//!   interconnect link bandwidth (shared by tasks on the same (home, node)
//!   link).
//! * Random accesses contribute both latency (overlapped by the MLP
//!   factor, drained as "stall time" concurrently with the streams) and
//!   cache-line-sized bandwidth demand.
//! * Running more threads than physical cores applies the SMT penalty to
//!   the compute/stall component (shared execution resources), which is
//!   what flattens the curves beyond 60 threads in Figure 16.
//!
//! The output contains the phase makespan, per-node busy fractions and a
//! utilization timeline — Figure 6's bandwidth profiles fall directly out
//! of the timeline.

use crate::cost::CostModel;
use crate::task::TaskSpec;
use crate::topology::Topology;

const EPS: f64 = 1e-12;

/// One timeline interval with per-node bandwidth utilization in `[0,1]`.
#[derive(Clone, Debug)]
pub struct TimelineInterval {
    pub start: f64,
    pub len: f64,
    pub node_util: Vec<f64>,
}

/// Result of simulating one phase.
#[derive(Clone, Debug)]
pub struct PhaseSim {
    /// Phase makespan in seconds (barrier-to-barrier).
    pub duration: f64,
    /// Per-node busy time in seconds (integral of utilization).
    pub node_busy: Vec<f64>,
    /// Utilization timeline (one entry per simulator event interval).
    pub timeline: Vec<TimelineInterval>,
    /// Completion time of every task, indexed like the input.
    pub task_finish: Vec<f64>,
}

impl PhaseSim {
    /// An empty phase.
    pub fn empty(nodes: usize) -> Self {
        PhaseSim {
            duration: 0.0,
            node_busy: vec![0.0; nodes],
            timeline: Vec::new(),
            task_finish: Vec::new(),
        }
    }

    /// Downsample the timeline into `buckets` equal time buckets of mean
    /// per-node utilization (for printing Figure 6-style profiles).
    pub fn bucketed_utilization(&self, buckets: usize) -> Vec<Vec<f64>> {
        let nodes = self.node_busy.len();
        let mut out = vec![vec![0.0; nodes]; buckets];
        if self.duration <= 0.0 || buckets == 0 {
            return out;
        }
        let bucket_len = self.duration / buckets as f64;
        for iv in &self.timeline {
            let mut t = iv.start;
            let end = iv.start + iv.len;
            while t < end - EPS {
                let b = ((t / bucket_len) as usize).min(buckets - 1);
                let bucket_end = (b as f64 + 1.0) * bucket_len;
                let seg = (end.min(bucket_end) - t).max(0.0);
                for (o, u) in out[b].iter_mut().zip(&iv.node_util) {
                    *o += u * seg / bucket_len;
                }
                t += seg.max(EPS);
            }
        }
        out
    }
}

struct ActiveTask {
    idx: usize,
    remaining_bytes: Vec<f64>,
    remaining_stall: f64,
    home: usize,
}

/// Simulate one phase. `order` indexes into `tasks` and defines queue
/// order; workers pull from the front. If `order` is shorter than `tasks`,
/// remaining tasks are ignored (useful for ablation).
pub fn simulate_phase(
    topo: &Topology,
    model: &CostModel,
    threads: usize,
    tasks: &[TaskSpec],
    order: &[usize],
) -> PhaseSim {
    let nodes = topo.nodes;
    let threads = threads.max(1);
    let smt_factor = if topo.uses_smt(threads) {
        model.smt_penalty
    } else {
        1.0
    };

    let mut sim = PhaseSim::empty(nodes);
    sim.task_finish = vec![0.0; tasks.len()];
    let mut queue = order.iter().copied();
    let mut active: Vec<ActiveTask> = Vec::with_capacity(threads);
    let mut now = 0.0_f64;

    let make_active = |idx: usize, worker_slot: usize| -> ActiveTask {
        let t = &tasks[idx];
        let home = t
            .home_node
            .unwrap_or_else(|| topo.node_of_thread(worker_slot));
        let mut remaining_bytes = t.stream_bytes.clone();
        remaining_bytes.resize(nodes, 0.0);
        let mut stall = t.cpu_ops * model.cpu_op;
        for (n, &cnt) in t.random_accesses.iter().enumerate() {
            if cnt > 0.0 {
                // Random cache-line reads cost ~2x their bytes in DRAM
                // bandwidth (row activation, no open-row streaming) — the
                // effect that bandwidth-saturates NOP's probe phase at
                // high thread counts (Table 3's sublinear NOP scaling).
                remaining_bytes[n] += cnt * mmjoin_util::CACHE_LINE as f64 * 2.0;
                stall += model.random_access_time(cnt, n != home);
            }
        }
        stall += t.tlb_misses * model.tlb_miss;
        stall *= smt_factor;
        ActiveTask {
            idx,
            remaining_bytes,
            remaining_stall: stall,
            home,
        }
    };

    // Fill initial workers.
    for slot in 0..threads {
        if let Some(idx) = queue.next() {
            active.push(make_active(idx, slot));
        } else {
            break;
        }
    }

    let mut guard = 0usize;
    let guard_max = (tasks.len() + threads) * 64 + 1024;
    while !active.is_empty() {
        guard += 1;
        assert!(guard < guard_max, "simulator failed to converge");

        // Rates: per-node memory-controller users, plus per-socket
        // interconnect egress users. Every remote stream of a task homed
        // on socket `h` shares socket `h`'s interconnect capacity — this
        // is what makes remote-heavy access patterns (PRO's scatter,
        // spread-out reads) slower than node-local ones even at equal
        // per-node byte totals.
        let mut node_users = vec![0u32; nodes];
        let mut egress_users = vec![0u32; nodes];
        for a in &active {
            for (n, bytes) in a.remaining_bytes.iter().enumerate() {
                if *bytes > EPS {
                    node_users[n] += 1;
                    if n != a.home {
                        egress_users[a.home] += 1;
                    }
                }
            }
        }
        let rate = |a: &ActiveTask, n: usize| -> f64 {
            if a.remaining_bytes[n] <= EPS {
                return 0.0;
            }
            let share = model.node_bandwidth / node_users[n] as f64;
            if n == a.home {
                share
            } else {
                share.min(model.link_bandwidth / egress_users[a.home] as f64)
            }
        };

        // Next event: soonest completion of any byte stream or stall.
        let mut dt = f64::INFINITY;
        for a in &active {
            if a.remaining_stall > EPS {
                dt = dt.min(a.remaining_stall);
            }
            for n in 0..nodes {
                let r = rate(a, n);
                if r > 0.0 {
                    dt = dt.min(a.remaining_bytes[n] / r);
                }
            }
        }
        if !dt.is_finite() {
            // All active tasks are already complete (zero-work tasks).
            dt = 0.0;
        }

        // Record utilization for this interval.
        if dt > 0.0 {
            let mut util = vec![0.0; nodes];
            for a in &active {
                for (n, u) in util.iter_mut().enumerate() {
                    *u += rate(a, n) / model.node_bandwidth;
                }
            }
            for (busy, u) in sim.node_busy.iter_mut().zip(&util) {
                *busy += u * dt;
            }
            sim.timeline.push(TimelineInterval {
                start: now,
                len: dt,
                node_util: util,
            });
        }

        // Advance.
        for a in &mut active {
            for n in 0..nodes {
                let r = rate(a, n);
                if r > 0.0 {
                    a.remaining_bytes[n] = (a.remaining_bytes[n] - r * dt).max(0.0);
                }
            }
            if a.remaining_stall > EPS {
                a.remaining_stall = (a.remaining_stall - dt).max(0.0);
            }
        }
        now += dt;

        // Retire finished tasks, pull replacements.
        let mut slot = 0;
        while slot < active.len() {
            let done = active[slot].remaining_stall <= EPS
                && active[slot].remaining_bytes.iter().all(|&b| b <= EPS);
            if done {
                sim.task_finish[active[slot].idx] = now;
                if let Some(next) = queue.next() {
                    let home_slot = slot;
                    active[slot] = make_active(next, home_slot);
                    slot += 1;
                } else {
                    active.swap_remove(slot);
                }
            } else {
                slot += 1;
            }
        }
    }

    sim.duration = now;
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, CostModel) {
        (Topology::paper_machine(), CostModel::paper_machine())
    }

    fn stream_task(topo: &Topology, node: usize, bytes: f64, home: usize) -> TaskSpec {
        let mut t = TaskSpec::new(topo.nodes);
        t.stream(node, bytes).on_node(home);
        t
    }

    #[test]
    fn single_local_stream_time() {
        let (topo, model) = setup();
        let bytes = 1e9;
        let task = stream_task(&topo, 0, bytes, 0);
        let sim = simulate_phase(&topo, &model, 1, &[task], &[0]);
        let expected = bytes / model.node_bandwidth;
        assert!((sim.duration - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn remote_stream_is_link_capped() {
        let (topo, model) = setup();
        let bytes = 1e9;
        let task = stream_task(&topo, 1, bytes, 0);
        let sim = simulate_phase(&topo, &model, 1, &[task], &[0]);
        let expected = bytes / model.link_bandwidth;
        assert!((sim.duration - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn contention_halves_bandwidth() {
        let (topo, model) = setup();
        let bytes = 1e9;
        // Two tasks on the same node at the same time.
        let tasks = vec![
            stream_task(&topo, 0, bytes, 0),
            stream_task(&topo, 0, bytes, 0),
        ];
        let sim = simulate_phase(&topo, &model, 2, &tasks, &[0, 1]);
        let expected = 2.0 * bytes / model.node_bandwidth;
        assert!((sim.duration - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn separate_nodes_run_in_parallel() {
        let (topo, model) = setup();
        let bytes = 1e9;
        let tasks = vec![
            stream_task(&topo, 0, bytes, 0),
            stream_task(&topo, 1, bytes, 1),
        ];
        let sim = simulate_phase(&topo, &model, 2, &tasks, &[0, 1]);
        let expected = bytes / model.node_bandwidth;
        assert!((sim.duration - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn queue_order_matters_for_node_hotspots() {
        // 8 tasks, 2 on each node-resident partition; 4 threads.
        // Sequential order processes same-node tasks together (hotspot),
        // round-robin order spreads them. Round-robin must be faster —
        // this is exactly the PRO vs PROiS scheduling effect.
        let (topo, model) = setup();
        let bytes = 1e8;
        let mut tasks = Vec::new();
        for node in 0..4 {
            for _ in 0..2 {
                // home == data node would be free of contention; pin all
                // homes distinct from data to stress memory controllers.
                tasks.push(stream_task(&topo, node, bytes, node));
            }
        }
        let sequential: Vec<usize> = (0..8).collect(); // 0,0,1,1,2,2,3,3 node order
        let round_robin: Vec<usize> = vec![0, 2, 4, 6, 1, 3, 5, 7];
        let s = simulate_phase(&topo, &model, 4, &tasks, &sequential);
        let r = simulate_phase(&topo, &model, 4, &tasks, &round_robin);
        assert!(
            r.duration < s.duration * 0.75,
            "round robin {} vs sequential {}",
            r.duration,
            s.duration
        );
    }

    #[test]
    fn stall_only_task() {
        let (topo, model) = setup();
        let mut t = TaskSpec::new(topo.nodes);
        t.cpu(1e6).on_node(0);
        let sim = simulate_phase(&topo, &model, 1, &[t], &[0]);
        let expected = 1e6 * model.cpu_op;
        assert!((sim.duration - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn smt_penalty_applies_beyond_physical_cores() {
        let (topo, model) = setup();
        let mk = || {
            let mut t = TaskSpec::new(topo.nodes);
            t.cpu(1e6);
            t
        };
        let tasks60: Vec<TaskSpec> = (0..60).map(|_| mk()).collect();
        let tasks120: Vec<TaskSpec> = (0..120).map(|_| mk()).collect();
        let o60: Vec<usize> = (0..60).collect();
        let o120: Vec<usize> = (0..120).collect();
        let s60 = simulate_phase(&topo, &model, 60, &tasks60, &o60);
        let s120 = simulate_phase(&topo, &model, 120, &tasks120, &o120);
        // 120 threads do 2x the CPU work but with the SMT penalty, so the
        // makespan must be worse than the 60-thread run of half the work.
        assert!(s120.duration > s60.duration);
    }

    #[test]
    fn zero_work_tasks_terminate() {
        let (topo, model) = setup();
        let tasks = vec![TaskSpec::new(topo.nodes), TaskSpec::new(topo.nodes)];
        let sim = simulate_phase(&topo, &model, 2, &tasks, &[0, 1]);
        assert_eq!(sim.duration, 0.0);
    }

    #[test]
    fn timeline_integrates_to_busy_time() {
        let (topo, model) = setup();
        let tasks = vec![stream_task(&topo, 0, 1e9, 0), stream_task(&topo, 1, 5e8, 1)];
        let sim = simulate_phase(&topo, &model, 2, &tasks, &[0, 1]);
        let mut integral = vec![0.0; topo.nodes];
        for iv in &sim.timeline {
            for (acc, u) in integral.iter_mut().zip(&iv.node_util) {
                *acc += u * iv.len;
            }
        }
        for (acc, busy) in integral.iter().zip(&sim.node_busy) {
            assert!((acc - busy).abs() < 1e-9);
        }
        // Node 0 moved 1e9 bytes at full bw => busy 1e9/bw seconds.
        let expect0 = 1e9 / model.node_bandwidth;
        assert!((sim.node_busy[0] - expect0).abs() / expect0 < 1e-9);
    }

    #[test]
    fn bucketed_utilization_shapes() {
        let (topo, model) = setup();
        // One long task on node 0, then one on node 1 (single worker).
        let tasks = vec![stream_task(&topo, 0, 1e9, 0), stream_task(&topo, 1, 1e9, 1)];
        let sim = simulate_phase(&topo, &model, 1, &tasks, &[0, 1]);
        let b = sim.bucketed_utilization(10);
        // First half: node 0 busy; second half: node 1 busy.
        assert!(b[0][0] > 0.9 && b[0][1] < 0.1);
        assert!(b[9][1] > 0.9 && b[9][0] < 0.1);
    }

    #[test]
    fn more_threads_is_not_slower_for_parallel_work() {
        let (topo, model) = setup();
        let mk = |node: usize| stream_task(&topo, node, 1e8, node);
        let tasks: Vec<TaskSpec> = (0..16).map(|i| mk(i % 4)).collect();
        let order: Vec<usize> = (0..16).collect();
        let t1 = simulate_phase(&topo, &model, 1, &tasks, &order).duration;
        let t4 = simulate_phase(&topo, &model, 4, &tasks, &order).duration;
        let t16 = simulate_phase(&topo, &model, 16, &tasks, &order).duration;
        assert!(t4 < t1);
        assert!(t16 <= t4 + 1e-12);
    }
}
