//! Worker-pool abstraction shared by every thread-parallel phase.
//!
//! The crates below `mmjoin-core` (partitioning, hash tables) run their
//! parallel phases against this small trait instead of spawning scoped
//! threads themselves. `mmjoin-core`'s persistent NUMA-aware executor
//! implements it, so a whole join — partitioning included — executes on
//! one long-lived pool; [`ScopedPool`] is the fallback implementation
//! (one `std::thread::scope` per phase) used by legacy entry points and
//! unit tests.

use std::sync::{Mutex, MutexGuard};

use crate::perf::CounterDelta;

/// Lock a mutex, recovering from poison.
///
/// A mutex is poisoned when a thread panicked while holding it. All the
/// mutexes in the join runtime guard either plain-old-data (counters,
/// result slots) or control state whose invariants are re-established by
/// the phase barrier, so the data is never left half-updated in a way a
/// later reader could misinterpret: recovering is always safe, and it
/// keeps one panicked morsel task from cascading poison into every
/// unrelated join sharing the persistent pool.
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Consume a mutex, recovering from poison (see [`lock_recover`]).
pub fn into_inner_recover<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Scheduling counters for one or more executed phases.
///
/// `tasks` counts executed morsels (one closure invocation each),
/// `steals` counts morsels a worker claimed from another NUMA node's
/// queue, and `idle_ns` sums the time workers spent waiting at the
/// phase barrier after finishing their own work (a direct measure of
/// load imbalance).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Morsels executed.
    pub tasks: u64,
    /// Morsels claimed from a remote node's queue.
    pub steals: u64,
    /// Nanoseconds workers spent at the barrier waiting for stragglers.
    pub idle_ns: u64,
}

impl ExecCounters {
    pub const fn new() -> Self {
        ExecCounters {
            tasks: 0,
            steals: 0,
            idle_ns: 0,
        }
    }

    /// Accumulate another phase's counters into this one.
    pub fn merge(&mut self, other: ExecCounters) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.idle_ns += other.idle_ns;
    }
}

/// One worker's slice of one executed phase (a *span*), recorded by the
/// executor when profiling is enabled. A driver phase made of several
/// barrier broadcasts yields several spans per worker; their `tasks` /
/// `steals` sum to the phase's [`ExecCounters`], which is the invariant
/// the observability tests pin down.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerPhaseStat {
    /// Worker index in `0..workers()`.
    pub worker: usize,
    /// Span start, ns since the recording epoch (the join start).
    pub start_ns: u64,
    /// Span duration in ns (this worker's time to its barrier arrival).
    pub dur_ns: u64,
    /// Morsels this worker executed during the span.
    pub tasks: u64,
    /// Morsels it claimed from a remote NUMA node's queue.
    pub steals: u64,
    /// Native PMU deltas for the span; all `None` when the host exposes
    /// no counters (see `crate::perf`).
    pub counters: CounterDelta,
}

/// A pool of `workers()` threads that can execute one phase at a time.
///
/// `broadcast` is the phase primitive: it invokes `f(w)` exactly once
/// for every worker index `w` in `0..workers()` and returns only after
/// every invocation has finished. The return is a **full barrier with
/// release/acquire semantics**: all memory writes performed inside `f`
/// happen-before anything the caller does after `broadcast` returns.
/// The lock-free tables' relaxed probes rely on exactly this edge (see
/// `mmjoin_core::exec`).
pub trait WorkerPool: Sync {
    /// Number of workers `broadcast` fans out to.
    fn workers(&self) -> usize;

    /// Run `f(w)` once per worker; return after all complete.
    fn broadcast(&self, f: &(dyn Fn(usize) + Sync));
}

/// Fallback [`WorkerPool`]: spawns `workers` scoped threads per
/// broadcast. Functionally identical to the persistent executor (the
/// scope join provides the same happens-before edge) but pays thread
/// creation at every phase — use only for tests and legacy shims.
pub struct ScopedPool {
    workers: usize,
}

impl ScopedPool {
    pub fn new(workers: usize) -> Self {
        ScopedPool {
            workers: workers.max(1),
        }
    }
}

impl WorkerPool for ScopedPool {
    fn workers(&self) -> usize {
        self.workers
    }

    fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        std::thread::scope(|s| {
            for w in 0..self.workers {
                s.spawn(move || f(w));
            }
        });
    }
}

/// Run `f(w)` on workers `0..active` of `pool` and collect the results
/// in worker order. Workers `active..pool.workers()` idle through the
/// phase. The chunk-per-worker phases (histograms, chunk-local
/// partitioning, table probes) are all built on this.
pub fn broadcast_map<R, F>(pool: &dyn WorkerPool, active: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let active = active.min(pool.workers()).max(1);
    let slots: Vec<Mutex<Option<R>>> = (0..active).map(|_| Mutex::new(None)).collect();
    pool.broadcast(&|w| {
        if w < active {
            let r = f(w);
            *lock_recover(&slots[w]) = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|m| into_inner_recover(m).expect("worker produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_pool_runs_every_worker() {
        let pool = ScopedPool::new(7);
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn broadcast_map_collects_in_order() {
        let pool = ScopedPool::new(4);
        let out = broadcast_map(&pool, 4, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn broadcast_map_clamps_active() {
        let pool = ScopedPool::new(4);
        let out = broadcast_map(&pool, 2, |w| w);
        assert_eq!(out, vec![0, 1]);
        // More active than workers: clamp to pool size.
        let out = broadcast_map(&pool, 9, |w| w);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn counters_merge() {
        let mut a = ExecCounters {
            tasks: 1,
            steals: 2,
            idle_ns: 3,
        };
        a.merge(ExecCounters {
            tasks: 10,
            steals: 20,
            idle_ns: 30,
        });
        assert_eq!(a.tasks, 11);
        assert_eq!(a.steals, 22);
        assert_eq!(a.idle_ns, 33);
    }

    #[test]
    fn zero_workers_clamped() {
        let pool = ScopedPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
