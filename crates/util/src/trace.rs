//! Memory-access tracing hooks.
//!
//! Table 4 and Figure 8 of the paper rely on hardware performance counters
//! (cache and TLB misses). This reproduction obtains the same metrics from
//! a trace-driven simulator (`mmjoin-memsim`). Hot kernels are generic
//! over a [`MemTracer`]; the default [`NoTracer`] makes every hook a
//! no-op that the optimizer deletes, so the fast path pays nothing.
//!
//! Addresses are the real virtual addresses of the touched memory, which
//! keeps spatial locality (cache lines, pages) faithful.

/// Observer of the memory accesses and retired operations of a kernel.
pub trait MemTracer {
    /// `len` bytes read starting at `addr`.
    fn read(&mut self, addr: usize, len: usize);
    /// `len` bytes written starting at `addr`.
    fn write(&mut self, addr: usize, len: usize);
    /// `n` arithmetic/logic operations retired (the "instruction" proxy).
    fn ops(&mut self, n: u64);
}

/// The zero-cost tracer used by all non-instrumented runs.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoTracer;

impl MemTracer for NoTracer {
    #[inline(always)]
    fn read(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn write(&mut self, _addr: usize, _len: usize) {}
    #[inline(always)]
    fn ops(&mut self, _n: u64) {}
}

/// A tracer that simply counts accesses — handy in tests to assert that a
/// kernel touches what we think it touches.
#[derive(Clone, Debug, Default)]
pub struct CountingTracer {
    pub reads: u64,
    pub read_bytes: u64,
    pub writes: u64,
    pub write_bytes: u64,
    pub ops: u64,
}

impl MemTracer for CountingTracer {
    #[inline]
    fn read(&mut self, _addr: usize, len: usize) {
        self.reads += 1;
        self.read_bytes += len as u64;
    }
    #[inline]
    fn write(&mut self, _addr: usize, len: usize) {
        self.writes += 1;
        self.write_bytes += len as u64;
    }
    #[inline]
    fn ops(&mut self, n: u64) {
        self.ops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        t.read(0x1000, 8);
        t.read(0x2000, 64);
        t.write(0x3000, 8);
        t.ops(5);
        assert_eq!(t.reads, 2);
        assert_eq!(t.read_bytes, 72);
        assert_eq!(t.writes, 1);
        assert_eq!(t.ops, 5);
    }
}
