//! A minimal JSON parser, just enough for the workspace's own
//! hand-rolled artifacts (`BENCH_*.json`, profile traces/metrics, the
//! run ledger) and the `mmjoin-serve` wire protocol, without an
//! external serde dependency. Strict where it matters — rejects
//! trailing garbage, unterminated strings, malformed numbers — and
//! deliberately simple everywhere else (numbers come back as `f64`;
//! `\uXXXX` escapes decode the full plane: surrogate pairs combine into
//! the astral code point they encode, and only *lone* surrogates
//! degrade to replacement chars).
//!
//! Lived in `mmjoin-bench` until the service layer needed it below the
//! bench crate in the dependency graph; `mmjoin_bench::jsonv` re-exports
//! this module, so existing callers are unaffected.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered; duplicate keys keep both entries (the
    /// validator's `get` sees the first, like most parsers).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A number or JSON `null` — the shape every optional native counter
    /// takes in the profile artifacts.
    pub fn is_num_or_null(&self) -> bool {
        matches!(self, Value::Num(_) | Value::Null)
    }
}

/// Parse `input` as exactly one JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            match code {
                                // High surrogate: only meaningful as the
                                // first half of a `\uD8xx\uDCxx` pair
                                // (how the ledger's host/CPU strings
                                // round-trip emoji and other astral
                                // chars through other JSON writers).
                                0xD800..=0xDBFF => {
                                    let paired = self.bytes.get(self.pos + 1) == Some(&b'\\')
                                        && self.bytes.get(self.pos + 2) == Some(&b'u');
                                    let low = if paired {
                                        self.hex_escape(self.pos + 3).ok()
                                    } else {
                                        None
                                    };
                                    match low {
                                        Some(low @ 0xDC00..=0xDFFF) => {
                                            let c =
                                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                            out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                            self.pos += 6;
                                        }
                                        // Lone high surrogate: not a
                                        // valid scalar value.
                                        _ => out.push('\u{fffd}'),
                                    }
                                }
                                // Lone low surrogate: same degradation.
                                0xDC00..=0xDFFF => out.push('\u{fffd}'),
                                c => out.push(char::from_u32(c).unwrap_or('\u{fffd}')),
                            }
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is valid UTF-8
                    // by construction of &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    /// Four hex digits starting at byte `at` (the body of a `\uXXXX`
    /// escape), as a code unit.
    fn hex_escape(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        if !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("bad \\u escape {text:?}"));
        }
        u32::from_str_radix(text, 16).map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Value::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn nested() {
        let v = parse("{\"a\": [1, {\"b\": null}], \"c\": false}").unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert!(arr[1].get("b").unwrap().is_null());
        assert!(arr[1].get("b").unwrap().is_num_or_null());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // 😀 is U+1F600, encoded in JSON as the pair \uD83D\uDE00.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
        assert_eq!(
            parse("\"a\\uD83D\\uDE00b\"").unwrap(),
            Value::Str("a😀b".to_string())
        );
        // Raw (non-escaped) astral chars pass through untouched, so the
        // escaped and raw spellings of the same string round-trip to the
        // same value — the property the ledger's host strings rely on.
        assert_eq!(
            parse("\"😀\"").unwrap(),
            parse("\"\\uD83D\\uDE00\"").unwrap()
        );
    }

    #[test]
    fn lone_surrogates_degrade_to_replacement() {
        // Lone high, lone low, and high-followed-by-BMP-escape all
        // produce a single replacement char for the invalid unit.
        assert_eq!(
            parse("\"\\uD83Dx\"").unwrap(),
            Value::Str("\u{fffd}x".to_string())
        );
        assert_eq!(
            parse("\"\\uDE00\"").unwrap(),
            Value::Str("\u{fffd}".to_string())
        );
        assert_eq!(
            parse("\"\\uD83D\\u0041\"").unwrap(),
            Value::Str("\u{fffd}A".to_string())
        );
        // A truncated pair is still a parse error, not silent data loss.
        assert!(parse("\"\\uD8\"").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "[1] garbage",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_own_artifacts() {
        // The shape emitted by observe::metrics / the kernels bin.
        let doc = "{\n  \"meta\": {\"cpu_model\": \"x\", \"perf_counters\": false},\n  \
                   \"runs\": [\n    {\"checksum\": \"0xff\", \"phases\": []}\n  ]\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("meta").unwrap().get("perf_counters"),
            Some(&Value::Bool(false))
        );
        assert_eq!(
            v.get("runs").unwrap().as_arr().unwrap()[0]
                .get("checksum")
                .unwrap()
                .as_str(),
            Some("0xff")
        );
    }
}
