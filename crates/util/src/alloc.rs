//! Cache-line-aligned, policy-aware buffers.
//!
//! The original C implementations allocate partition buffers and hash
//! tables with `posix_memalign` at cache-line granularity so SWWCB flushes
//! copy exactly one aligned cache line. `AlignedBuf` reproduces that:
//! every buffer starts on a 64-byte boundary.
//!
//! Since the memory subsystem landed, large buffers additionally route
//! through [`crate::mem`]: when the process-global
//! [`crate::mem::AllocPolicy`] is a mapped one, any request of at least
//! [`crate::mem::MAP_THRESHOLD`] bytes is served from an mmap-backed
//! arena (huge pages, NUMA placement, pooled reuse), transparently to
//! every consumer. The portable heap path is both the default and the
//! fallback when mapping is unavailable.

use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ptr::NonNull;

use crate::{mem, CACHE_LINE};

/// Where an `AlignedBuf`'s bytes came from (and go back to).
enum Backing {
    /// Zero-sized: dangling pointer, nothing to free.
    None,
    /// Global allocator; freed with exactly this layout.
    Heap(Layout),
    /// Policy-aware mapped arena; the held Block returns to the arena
    /// pool when this backing drops.
    Mapped(#[allow(dead_code)] mem::Block),
}

/// A heap buffer of `T` aligned to (at least) one cache line.
///
/// `T` must not need drop (we only store plain-old-data: tuples, counters,
/// bucket structs); this is enforced at compile time.
pub struct AlignedBuf<T> {
    ptr: NonNull<T>,
    len: usize,
    backing: Backing,
    _marker: PhantomData<T>,
}

// SAFETY: the buffer uniquely owns its allocation; `T: Send/Sync` carries
// over like for Vec<T>.
unsafe impl<T: Send> Send for AlignedBuf<T> {}
unsafe impl<T: Sync> Sync for AlignedBuf<T> {}

impl<T> AlignedBuf<T> {
    /// Post-monomorphization guard: constructing an `AlignedBuf<T>` for
    /// a `T` with a destructor is a compile error, not a debug panic.
    const NO_DROP: () = assert!(
        !std::mem::needs_drop::<T>(),
        "AlignedBuf only stores plain-old-data"
    );

    /// The layout for `n` elements at cache-line alignment, with every
    /// overflow path (`size * n`, and the allocator's `size + align`
    /// rounding) checked rather than wrapped.
    fn layout_for(n: usize) -> Layout {
        let align = std::mem::align_of::<T>().max(CACHE_LINE);
        let size = std::mem::size_of::<T>()
            .checked_mul(n)
            .expect("allocation size overflow");
        // `from_size_align` rejects sizes that would overflow
        // `isize::MAX` once rounded up to `align` — keep that check
        // loud instead of letting a wrapped size reach the allocator.
        Layout::from_size_align(size, align).expect("allocation size overflow")
    }

    /// Shared allocation path. `zero_heap` picks `alloc_zeroed` for the
    /// heap branch; mapped blocks from the pool are zeroed iff
    /// `zero_reused` (fresh kernel pages are always zero already).
    fn allocate(n: usize, zero_heap: bool, zero_reused: bool) -> Self {
        let () = Self::NO_DROP;
        if n == 0 || std::mem::size_of::<T>() == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: n,
                backing: Backing::None,
                _marker: PhantomData,
            };
        }
        let layout = Self::layout_for(n);
        if let Some(block) = mem::acquire(layout.size(), layout.align()) {
            let ptr = block.ptr().cast::<T>();
            if zero_reused && !block.is_fresh() {
                // SAFETY: the block spans at least layout.size() bytes.
                unsafe { std::ptr::write_bytes(ptr.as_ptr().cast::<u8>(), 0, layout.size()) };
            }
            return AlignedBuf {
                ptr,
                len: n,
                backing: Backing::Mapped(block),
                _marker: PhantomData,
            };
        }
        // SAFETY: layout has non-zero size (checked above).
        let raw = unsafe {
            if zero_heap {
                alloc_zeroed(layout)
            } else {
                alloc(layout)
            }
        };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        AlignedBuf {
            ptr,
            len: n,
            backing: Backing::Heap(layout),
            _marker: PhantomData,
        }
    }

    /// Allocate `n` zeroed elements aligned to a cache line.
    pub fn zeroed(n: usize) -> Self {
        Self::allocate(n, true, true)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe a valid allocation of initialized
        // (zeroed) Ts; T is POD.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T: Copy> AlignedBuf<T> {
    /// Allocate `n` elements, each initialized to `value` (the
    /// sentinel-filled hash-table arrays: `u32::MAX` slots etc.).
    pub fn filled(n: usize, value: T) -> Self {
        let mut buf = Self::allocate(n, false, false);
        for slot in buf.as_mut_slice_uninit() {
            *slot = value;
        }
        buf
    }

    /// The full backing slice without the "already initialized"
    /// promise: only for `filled`/`AlignedVec`, which overwrite before
    /// exposing.
    #[inline]
    fn as_mut_slice_uninit(&mut self) -> &mut [T] {
        // SAFETY: T is Copy POD; any bit pattern the allocator hands
        // back is only ever *written* through this slice before a
        // typed read happens.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        match &self.backing {
            Backing::None => {}
            Backing::Heap(layout) => {
                // SAFETY: allocated with exactly this layout.
                unsafe { dealloc(self.ptr.as_ptr().cast(), *layout) };
            }
            // The Block's own drop returns it to the arena pool.
            Backing::Mapped(_) => {}
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

impl<T> std::ops::Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> std::ops::DerefMut for AlignedBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<'a, T> IntoIterator for &'a AlignedBuf<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, T> IntoIterator for &'a mut AlignedBuf<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// A growable `Vec`-alike backed by [`AlignedBuf`], so append-heavy
/// consumers (chained-table overflow buckets, materialized output,
/// sort scratch) also route through the policy-aware arenas.
///
/// Restricted to `Copy` plain-old-data, like `AlignedBuf` itself.
pub struct AlignedVec<T: Copy> {
    buf: AlignedBuf<T>,
    len: usize,
}

impl<T: Copy> AlignedVec<T> {
    pub fn new() -> Self {
        AlignedVec {
            buf: AlignedBuf::zeroed(0),
            len: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        AlignedVec {
            buf: AlignedBuf::zeroed(cap),
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Grow the backing buffer to at least `need` elements (amortized
    /// doubling), preserving the first `len` elements.
    fn grow_to(&mut self, need: usize) {
        let new_cap = need.max(self.capacity().saturating_mul(2)).max(8);
        let mut next = AlignedBuf::<T>::zeroed(new_cap);
        next.as_mut_slice_uninit()[..self.len].copy_from_slice(self.as_slice());
        self.buf = next;
    }

    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len == self.capacity() {
            self.grow_to(self.len + 1);
        }
        self.buf.as_mut_slice_uninit()[self.len] = value;
        self.len += 1;
    }

    pub fn extend_from_slice(&mut self, src: &[T]) {
        let need = self.len.checked_add(src.len()).expect("capacity overflow");
        if need > self.capacity() {
            self.grow_to(need);
        }
        self.buf.as_mut_slice_uninit()[self.len..need].copy_from_slice(src);
        self.len = need;
    }

    /// Reserve capacity for at least `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        let need = self.len.checked_add(additional).expect("capacity overflow");
        if need > self.capacity() {
            self.grow_to(need);
        }
    }

    /// Resize to `new_len`, filling any new tail with `value`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        if new_len > self.capacity() {
            self.grow_to(new_len);
        }
        if new_len > self.len {
            for slot in &mut self.buf.as_mut_slice_uninit()[self.len..new_len] {
                *slot = value;
            }
        }
        self.len = new_len;
    }

    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf.as_slice()[..self.len]
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        let len = self.len;
        &mut self.buf.as_mut_slice()[..len]
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> std::ops::Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> std::ops::DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<'a, T: Copy> IntoIterator for &'a AlignedVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={}, cap={})", self.len, self.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let buf = AlignedBuf::<u64>::zeroed(1000);
        assert_eq!(buf.len(), 1000);
        assert!(buf.as_slice().iter().all(|&x| x == 0));
        assert_eq!(buf.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn zero_len_ok() {
        let buf = AlignedBuf::<u64>::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice(), &[] as &[u64]);
    }

    #[test]
    fn writes_persist() {
        let mut buf = AlignedBuf::<u32>::zeroed(64);
        for (i, v) in buf.as_mut_slice().iter_mut().enumerate() {
            *v = i as u32;
        }
        assert_eq!(buf.as_slice()[63], 63);
    }

    #[test]
    fn large_alignment_type() {
        #[repr(align(64))]
        #[derive(Copy, Clone)]
        struct Line(#[allow(dead_code)] [u8; 64]);
        let buf = AlignedBuf::<Line>::zeroed(8);
        assert_eq!(buf.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn filled_sets_every_element() {
        let buf = AlignedBuf::<u32>::filled(777, u32::MAX);
        assert!(buf.as_slice().iter().all(|&x| x == u32::MAX));
        assert_eq!(buf.as_ptr() as usize % CACHE_LINE, 0);
    }

    /// Satellite regression: a request whose byte size is near
    /// `usize::MAX` must panic loudly (checked math), never wrap into
    /// a small allocation.
    #[test]
    fn oversized_request_panics_cleanly() {
        for n in [
            usize::MAX,
            usize::MAX / 8 + 1,
            (isize::MAX as usize) / 8 + 1,
        ] {
            let r = std::panic::catch_unwind(|| AlignedBuf::<u64>::zeroed(n));
            assert!(r.is_err(), "n={n} must panic, not allocate");
        }
    }

    /// Under a mapped policy the same sizes must panic identically —
    /// the arena rounding is overflow-checked too.
    #[test]
    fn oversized_request_panics_under_mapped_policy() {
        let r = std::panic::catch_unwind(|| {
            crate::mem::with_policy(crate::mem::AllocPolicy::THP, || {
                AlignedBuf::<u64>::zeroed(usize::MAX / 8 + 1)
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn mapped_policy_round_trip_contents() {
        crate::mem::with_policy(crate::mem::AllocPolicy::THP, || {
            let n = crate::PAGE_2M / 8;
            let mut buf = AlignedBuf::<u64>::zeroed(n);
            assert!(buf.as_slice().iter().all(|&x| x == 0));
            for (i, v) in buf.as_mut_slice().iter_mut().enumerate() {
                *v = i as u64;
            }
            assert_eq!(buf.as_slice()[n - 1], (n - 1) as u64);
            drop(buf);
            // Pool reuse must still observe the zeroed contract.
            let buf2 = AlignedBuf::<u64>::zeroed(n);
            assert!(buf2.as_slice().iter().all(|&x| x == 0));
        });
        crate::mem::pool_clear();
    }

    #[test]
    fn aligned_vec_push_grow_resize() {
        let mut v = AlignedVec::<u64>::new();
        assert!(v.is_empty());
        for i in 0..10_000u64 {
            v.push(i);
        }
        assert_eq!(v.len(), 10_000);
        assert_eq!(v[9_999], 9_999);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
        v.resize(10_005, 42);
        assert_eq!(v.len(), 10_005);
        assert_eq!(v[10_004], 42);
        v.resize(3, 0);
        assert_eq!(v.as_slice(), &[0, 1, 2]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn aligned_vec_extend_and_capacity() {
        let mut v = AlignedVec::<u32>::with_capacity(4);
        assert!(v.capacity() >= 4);
        v.extend_from_slice(&[1, 2, 3]);
        v.extend_from_slice(&[4, 5, 6, 7, 8]);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        v.reserve(100);
        assert!(v.capacity() >= 108);
        assert_eq!(v.len(), 8);
    }
}
