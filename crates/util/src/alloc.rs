//! Cache-line-aligned buffers.
//!
//! The original C implementations allocate partition buffers and hash
//! tables with `posix_memalign` at cache-line granularity so SWWCB flushes
//! copy exactly one aligned cache line. `AlignedBuf` reproduces that:
//! every buffer starts on a 64-byte boundary.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ptr::NonNull;

use crate::CACHE_LINE;

/// A heap buffer of `T` aligned to (at least) one cache line.
///
/// `T` must not need drop (we only store plain-old-data: tuples, counters,
/// bucket structs); this is enforced at construction with a debug
/// assertion on `std::mem::needs_drop`.
pub struct AlignedBuf<T> {
    ptr: NonNull<T>,
    len: usize,
    layout: Option<Layout>,
    _marker: PhantomData<T>,
}

// SAFETY: the buffer uniquely owns its allocation; `T: Send/Sync` carries
// over like for Vec<T>.
unsafe impl<T: Send> Send for AlignedBuf<T> {}
unsafe impl<T: Sync> Sync for AlignedBuf<T> {}

impl<T> AlignedBuf<T> {
    /// Allocate `n` zeroed elements aligned to a cache line.
    pub fn zeroed(n: usize) -> Self {
        debug_assert!(
            !std::mem::needs_drop::<T>(),
            "AlignedBuf only stores plain-old-data"
        );
        if n == 0 || std::mem::size_of::<T>() == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: n,
                layout: None,
                _marker: PhantomData,
            };
        }
        let align = std::mem::align_of::<T>().max(CACHE_LINE);
        let size = std::mem::size_of::<T>()
            .checked_mul(n)
            .expect("allocation size overflow");
        let layout = Layout::from_size_align(size, align).expect("bad layout");
        // SAFETY: layout has non-zero size (checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        AlignedBuf {
            ptr,
            len: n,
            layout: Some(layout),
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe a valid allocation of initialized
        // (zeroed) Ts; T is POD.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if let Some(layout) = self.layout {
            // SAFETY: allocated with exactly this layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let buf = AlignedBuf::<u64>::zeroed(1000);
        assert_eq!(buf.len(), 1000);
        assert!(buf.as_slice().iter().all(|&x| x == 0));
        assert_eq!(buf.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn zero_len_ok() {
        let buf = AlignedBuf::<u64>::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice(), &[] as &[u64]);
    }

    #[test]
    fn writes_persist() {
        let mut buf = AlignedBuf::<u32>::zeroed(64);
        for (i, v) in buf.as_mut_slice().iter_mut().enumerate() {
            *v = i as u32;
        }
        assert_eq!(buf.as_slice()[63], 63);
    }

    #[test]
    fn large_alignment_type() {
        #[repr(align(64))]
        #[derive(Copy, Clone)]
        struct Line(#[allow(dead_code)] [u8; 64]);
        let buf = AlignedBuf::<Line>::zeroed(8);
        assert_eq!(buf.as_ptr() as usize % 64, 0);
    }
}
