//! Policy-aware memory subsystem: mmap-backed arenas with huge pages
//! and NUMA placement.
//!
//! The paper attributes large swings between the thirteen joins to TLB
//! misses and NUMA effects. This module lets a run opt into the memory
//! layouts those effects depend on:
//!
//! * **Page policy** — plain 4 KiB pages, transparent huge pages
//!   (`madvise(MADV_HUGEPAGE)`), or explicit 2 MiB `MAP_HUGETLB`
//!   mappings.
//! * **NUMA policy** — first-touch (the kernel default), interleave
//!   across all detected nodes, or bind to one node, applied per region
//!   with the raw `mbind` syscall.
//! * **Arena pool** — released blocks are kept mapped (bounded by
//!   `MMJOIN_ARENA_POOL_MB`, default 256) so back-to-back joins reuse
//!   already-faulted pages instead of paying the kernel's fault + zero
//!   cost per query.
//!
//! Design constraints mirror [`crate::perf`]:
//!
//! * **No dependencies.** The workspace has no `libc`; `mmap`,
//!   `munmap`, `madvise`, `mbind` and `set_mempolicy` are issued with
//!   inline assembly, gated to Linux on x86-64/aarch64. Elsewhere a
//!   stub backend reports every mapping as unavailable.
//! * **Graceful fallback, never an error.** No free 2 MiB hugetlb
//!   pages → transparent huge pages → plain pages; `mbind`
//!   ENOSYS/EPERM → first-touch; no mmap backend at all → the portable
//!   heap allocator. Every downgrade only increments a degradation
//!   counter (surfaced per phase in `PhaseStat` and in the metrics
//!   exporters) — behaviour and results are identical.
//!
//! The active policy is process-global, exactly like
//! [`crate::kernels`]: an explicit [`set_policy`] (installed by
//! `JoinConfig::alloc_policy` when a join starts) wins over the
//! `MMJOIN_ALLOC` environment variable, which wins over the default
//! ([`AllocPolicy::Portable`] — the pre-existing aligned heap path).

use std::path::Path;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{PAGE_2M, PAGE_4K};

/// Buffers below this many bytes always use the portable heap
/// allocator: they are cache-resident anyway, and mapping granularity
/// would waste most of the page.
pub const MAP_THRESHOLD: usize = 64 * 1024;

// ---------------------------------------------------------------------------
// Policy types
// ---------------------------------------------------------------------------

/// Page size/backing for mapped arenas.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PagePolicy {
    /// Plain 4 KiB pages.
    Small,
    /// Transparent huge pages: plain mapping + `madvise(MADV_HUGEPAGE)`.
    Thp,
    /// Explicit 2 MiB `MAP_HUGETLB` pages (needs reserved hugepages).
    HugeTlb,
}

/// NUMA placement for mapped arenas.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NumaPolicy {
    /// Kernel default: pages land on the node of the first-touching
    /// thread.
    FirstTouch,
    /// `mbind(MPOL_INTERLEAVE)` across all detected nodes.
    Interleave,
    /// `mbind(MPOL_BIND)` to one node.
    Bind(u16),
}

/// How join buffers are allocated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// The pre-existing cache-line-aligned heap allocator; never
    /// touches mmap. This is the default.
    #[default]
    Portable,
    /// mmap-backed arenas with the given page and NUMA placement.
    Mapped { pages: PagePolicy, numa: NumaPolicy },
}

impl AllocPolicy {
    /// Shorthand for transparent-huge-page arenas with first-touch
    /// placement — the usual first thing to try.
    pub const THP: AllocPolicy = AllocPolicy::Mapped {
        pages: PagePolicy::Thp,
        numa: NumaPolicy::FirstTouch,
    };

    /// Parse a policy string: a page token (`portable`, `mapped`,
    /// `thp`, `hugetlb`) and/or a NUMA token (`firsttouch`,
    /// `interleave`, `bind:N`) joined with `+`. A NUMA token alone
    /// implies plain mapped pages (`interleave` ==
    /// `mapped+interleave`).
    pub fn parse(s: &str) -> Result<AllocPolicy, String> {
        let mut pages: Option<PagePolicy> = None;
        let mut numa: Option<NumaPolicy> = None;
        let mut portable = false;
        for tok in s.split('+') {
            let t = tok.trim().to_ascii_lowercase();
            match t.as_str() {
                "portable" | "heap" => portable = true,
                "mapped" | "small" => pages = Some(PagePolicy::Small),
                "thp" | "transparent" => pages = Some(PagePolicy::Thp),
                "hugetlb" | "huge" => pages = Some(PagePolicy::HugeTlb),
                "firsttouch" | "first-touch" => numa = Some(NumaPolicy::FirstTouch),
                "interleave" => numa = Some(NumaPolicy::Interleave),
                _ => {
                    if let Some(n) = t.strip_prefix("bind:") {
                        let node: u16 = n
                            .parse()
                            .map_err(|_| format!("invalid NUMA node in {tok:?}"))?;
                        numa = Some(NumaPolicy::Bind(node));
                    } else {
                        return Err(format!(
                            "unknown alloc policy token {tok:?} \
                             (expected portable|mapped|thp|hugetlb|firsttouch|interleave|bind:N)"
                        ));
                    }
                }
            }
        }
        if portable {
            if pages.is_some() || numa.is_some() {
                return Err(format!(
                    "portable cannot be combined with other tokens: {s:?}"
                ));
            }
            return Ok(AllocPolicy::Portable);
        }
        if pages.is_none() && numa.is_none() {
            return Err(format!("empty alloc policy {s:?}"));
        }
        Ok(AllocPolicy::Mapped {
            pages: pages.unwrap_or(PagePolicy::Small),
            numa: numa.unwrap_or(NumaPolicy::FirstTouch),
        })
    }

    /// Canonical name; round-trips through [`AllocPolicy::parse`].
    pub fn name(&self) -> String {
        match *self {
            AllocPolicy::Portable => "portable".to_string(),
            AllocPolicy::Mapped { pages, numa } => {
                let p = match pages {
                    PagePolicy::Small => "mapped",
                    PagePolicy::Thp => "thp",
                    PagePolicy::HugeTlb => "hugetlb",
                };
                match numa {
                    NumaPolicy::FirstTouch => p.to_string(),
                    NumaPolicy::Interleave => format!("{p}+interleave"),
                    NumaPolicy::Bind(n) => format!("{p}+bind:{n}"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global policy cell (same shape as kernels::set_mode)
// ---------------------------------------------------------------------------

/// 0 = unresolved; otherwise `encode_policy() + 1`-style packing, see
/// `encode_policy`.
static POLICY: AtomicU32 = AtomicU32::new(0);

fn encode_policy(p: AllocPolicy) -> u32 {
    match p {
        AllocPolicy::Portable => 1,
        AllocPolicy::Mapped { pages, numa } => {
            let pg = match pages {
                PagePolicy::Small => 0u32,
                PagePolicy::Thp => 1,
                PagePolicy::HugeTlb => 2,
            };
            let (nk, node) = match numa {
                NumaPolicy::FirstTouch => (0u32, 0u32),
                NumaPolicy::Interleave => (1, 0),
                NumaPolicy::Bind(n) => (2, n as u32),
            };
            2 | (pg << 2) | (nk << 4) | (node << 8)
        }
    }
}

fn decode_policy(v: u32) -> AllocPolicy {
    if v == 1 {
        return AllocPolicy::Portable;
    }
    let pages = match (v >> 2) & 0x3 {
        0 => PagePolicy::Small,
        1 => PagePolicy::Thp,
        _ => PagePolicy::HugeTlb,
    };
    let numa = match (v >> 4) & 0x3 {
        0 => NumaPolicy::FirstTouch,
        1 => NumaPolicy::Interleave,
        _ => NumaPolicy::Bind(((v >> 8) & 0xffff) as u16),
    };
    AllocPolicy::Mapped { pages, numa }
}

/// Install `p` process-wide: every subsequent policy-eligible
/// allocation uses it. `JoinConfig::alloc_policy` calls this when a
/// join begins; tests and benches may call it directly.
pub fn set_policy(p: AllocPolicy) {
    POLICY.store(encode_policy(p), Ordering::Release);
}

/// The active policy: the last [`set_policy`] if any, else
/// `MMJOIN_ALLOC` (invalid values warn once and fall back), else
/// [`AllocPolicy::Portable`].
pub fn policy() -> AllocPolicy {
    let v = POLICY.load(Ordering::Acquire);
    if v != 0 {
        return decode_policy(v);
    }
    let p = policy_from_env();
    POLICY.store(encode_policy(p), Ordering::Release);
    p
}

/// `policy().name()` — the string stamped into bench metadata and
/// ledger entries.
pub fn policy_name() -> String {
    policy().name()
}

fn policy_from_env() -> AllocPolicy {
    match std::env::var("MMJOIN_ALLOC") {
        Err(_) => AllocPolicy::Portable,
        Ok(v) if v.trim().is_empty() => AllocPolicy::Portable,
        Ok(v) => AllocPolicy::parse(&v).unwrap_or_else(|e| {
            eprintln!("MMJOIN_ALLOC: {e}; using portable");
            AllocPolicy::Portable
        }),
    }
}

/// Run `f` under `p`, restoring the previous policy state afterwards —
/// the A/B hook for differential tests and the alloc bench.
pub fn with_policy<R>(p: AllocPolicy, f: impl FnOnce() -> R) -> R {
    let prev = POLICY.swap(encode_policy(p), Ordering::AcqRel);
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            POLICY.store(self.0, Ordering::Release);
        }
    }
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Allocation statistics (process-global, snapshot/delta like perf)
// ---------------------------------------------------------------------------

macro_rules! stat_counters {
    ($($name:ident),* $(,)?) => {
        #[allow(non_upper_case_globals)]
        mod counters {
            use super::AtomicU64;
            $(pub static $name: AtomicU64 = AtomicU64::new(0);)*
        }

        /// Point-in-time totals of the process-global allocation
        /// counters. Meaningful as deltas between two snapshots.
        #[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
        pub struct AllocSnapshot {
            $(pub $name: u64,)*
        }

        /// Current totals since process start.
        pub fn stats() -> AllocSnapshot {
            AllocSnapshot {
                $($name: counters::$name.load(Ordering::Relaxed),)*
            }
        }

        impl AllocSnapshot {
            /// Counter-wise `self - earlier` (saturating).
            pub fn delta(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
                AllocSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }
        }
    };
}

stat_counters!(
    // Fresh mmap acquisitions (pool miss → new mapping).
    mapped_blocks,
    mapped_bytes,
    // Pool reuse (block handed back without a fresh mapping).
    pool_hits,
    pool_hit_bytes,
    // Policy downgrades: hugetlb/THP unavailable, mbind refused.
    degraded_page,
    degraded_numa,
    // Mapped path entirely unavailable → portable heap served it.
    heap_fallback,
);

fn bump(c: &AtomicU64, by: u64) {
    c.fetch_add(by, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Fault injection for the fallback tests
// ---------------------------------------------------------------------------

/// Bit in the force-fail mask: pretend `MAP_HUGETLB` mappings fail.
pub const FAIL_HUGETLB: u32 = 1;
/// Bit: pretend `madvise(MADV_HUGEPAGE)` fails.
pub const FAIL_MADVISE: u32 = 2;
/// Bit: pretend `mbind` fails (the ENOSYS/EPERM container case).
pub const FAIL_MBIND: u32 = 4;
/// Bit: pretend every `mmap` fails (forces the heap fallback).
pub const FAIL_MMAP: u32 = 8;

static FORCE_FAIL: AtomicU32 = AtomicU32::new(0);

/// Make the named syscalls report failure, deterministically, so the
/// fallback ladder can be exercised on any host. Testing hook; 0
/// restores normal operation.
#[doc(hidden)]
pub fn set_force_fail(mask: u32) {
    FORCE_FAIL.store(mask, Ordering::Release);
}

fn forced(bit: u32) -> bool {
    FORCE_FAIL.load(Ordering::Acquire) & bit != 0
}

// ---------------------------------------------------------------------------
// Arena blocks and the reuse pool
// ---------------------------------------------------------------------------

/// Round `n` up to a multiple of `gran` (a power of two), or `None` on
/// overflow. The overflow check matters: an unchecked `(n + gran - 1) &
/// !(gran - 1)` wraps for `n` near `usize::MAX` and would produce a
/// tiny mapping for a huge request.
pub fn round_up(n: usize, gran: usize) -> Option<usize> {
    debug_assert!(gran.is_power_of_two());
    Some(n.checked_add(gran - 1)? & !(gran - 1))
}

/// One mapped arena block. Dropping it returns the pages to the pool
/// (or unmaps them when the pool is full), so `AlignedBuf` can own one
/// like a `Layout`.
pub struct Block {
    ptr: NonNull<u8>,
    len: usize,
    key: u32,
    fresh: bool,
}

// SAFETY: a Block uniquely owns its mapping.
unsafe impl Send for Block {}
unsafe impl Sync for Block {}

impl Block {
    pub(crate) fn ptr(&self) -> NonNull<u8> {
        self.ptr
    }

    #[allow(dead_code)] // used by the arena tests
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Fresh kernel pages are already zeroed; pool-reused blocks hold
    /// stale data and the consumer must clear (or fully overwrite)
    /// them.
    pub(crate) fn is_fresh(&self) -> bool {
        self.fresh
    }
}

impl Drop for Block {
    fn drop(&mut self) {
        pool_put(self.ptr, self.len, self.key);
    }
}

struct PoolInner {
    /// `(policy key, len, ptr)` of idle mapped blocks, LIFO per class.
    blocks: Vec<(u32, usize, usize)>,
    bytes: usize,
}

static POOL: Mutex<PoolInner> = Mutex::new(PoolInner {
    blocks: Vec::new(),
    bytes: 0,
});

fn pool_lock() -> std::sync::MutexGuard<'static, PoolInner> {
    POOL.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool_cap_bytes() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let mb = std::env::var("MMJOIN_ARENA_POOL_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(256);
        mb.saturating_mul(1024 * 1024)
    })
}

fn pool_take(key: u32, len: usize) -> Option<NonNull<u8>> {
    let mut pool = pool_lock();
    // LIFO within the (key, len) class: the most recently released
    // block has the warmest pages.
    let idx = pool
        .blocks
        .iter()
        .rposition(|&(k, l, _)| k == key && l == len)?;
    let (_, l, ptr) = pool.blocks.swap_remove(idx);
    pool.bytes -= l;
    NonNull::new(ptr as *mut u8)
}

fn pool_put(ptr: NonNull<u8>, len: usize, key: u32) {
    {
        let mut pool = pool_lock();
        if pool.bytes + len <= pool_cap_bytes() {
            pool.blocks.push((key, len, ptr.as_ptr() as usize));
            pool.bytes += len;
            return;
        }
    }
    imp::munmap(ptr, len);
}

/// Unmap every pooled block. Benches call this between policy cells so
/// one policy's warm pages cannot serve another's timing.
pub fn pool_clear() {
    let drained: Vec<(u32, usize, usize)> = {
        let mut pool = pool_lock();
        pool.bytes = 0;
        std::mem::take(&mut pool.blocks)
    };
    for (_, len, ptr) in drained {
        if let Some(p) = NonNull::new(ptr as *mut u8) {
            imp::munmap(p, len);
        }
    }
}

/// `(blocks, bytes)` currently idle in the pool.
pub fn pool_usage() -> (usize, usize) {
    let pool = pool_lock();
    (pool.blocks.len(), pool.bytes)
}

/// Try to serve `bytes` (alignment `align`) from a policy-aware mapped
/// arena. `None` when the active policy is portable, the request is
/// too small to map, the alignment exceeds a page, or no mmap backend
/// exists — callers fall back to the heap.
pub fn acquire(bytes: usize, align: usize) -> Option<Block> {
    let p = policy();
    let AllocPolicy::Mapped { pages, numa } = p else {
        return None;
    };
    if bytes < MAP_THRESHOLD || align > PAGE_4K {
        return None;
    }
    // Size to huge-page granularity whenever huge pages are in play so
    // the kernel can actually back the whole region with 2 MiB frames.
    let gran = match pages {
        PagePolicy::Small => PAGE_4K,
        PagePolicy::Thp | PagePolicy::HugeTlb => PAGE_2M,
    };
    let len = round_up(bytes, gran)?;
    let key = encode_policy(p);
    if let Some(ptr) = pool_take(key, len) {
        bump(&counters::pool_hits, 1);
        bump(&counters::pool_hit_bytes, len as u64);
        return Some(Block {
            ptr,
            len,
            key,
            fresh: false,
        });
    }
    let ptr = map_block(pages, numa, len).or_else(|| {
        bump(&counters::heap_fallback, 1);
        None
    })?;
    bump(&counters::mapped_blocks, 1);
    bump(&counters::mapped_bytes, len as u64);
    Some(Block {
        ptr,
        len,
        key,
        fresh: true,
    })
}

/// Map one block under the fallback ladder: hugetlb → THP → plain
/// pages; NUMA binding failure degrades to first-touch. Only a failure
/// of the *plain* anonymous mmap (no backend, forced failure) returns
/// `None`.
fn map_block(pages: PagePolicy, numa: NumaPolicy, len: usize) -> Option<NonNull<u8>> {
    let mut ptr: Option<NonNull<u8>> = None;
    if pages == PagePolicy::HugeTlb {
        if !forced(FAIL_HUGETLB) {
            ptr = imp::mmap_anon(len, imp::MAP_HUGETLB | imp::MAP_HUGE_2MB);
        }
        if ptr.is_none() {
            bump(&counters::degraded_page, 1);
        }
    }
    if ptr.is_none() {
        if forced(FAIL_MMAP) {
            return None;
        }
        ptr = imp::mmap_anon(len, 0);
        let got = ptr?;
        if pages == PagePolicy::Thp {
            let ok = !forced(FAIL_MADVISE) && imp::madvise_hugepage(got, len);
            if !ok {
                bump(&counters::degraded_page, 1);
            }
        }
    }
    let got = ptr?;
    match numa {
        NumaPolicy::FirstTouch => {}
        NumaPolicy::Interleave => {
            let nodes = host_topology().nodes.min(64);
            let mask: u64 = if nodes >= 64 {
                u64::MAX
            } else {
                (1u64 << nodes) - 1
            };
            let ok = !forced(FAIL_MBIND) && imp::mbind(got, len, imp::MPOL_INTERLEAVE, mask);
            if !ok {
                bump(&counters::degraded_numa, 1);
            }
        }
        NumaPolicy::Bind(node) => {
            let ok = node < 64
                && !forced(FAIL_MBIND)
                && imp::mbind(got, len, imp::MPOL_BIND, 1u64 << node);
            if !ok {
                bump(&counters::degraded_numa, 1);
            }
        }
    }
    Some(got)
}

/// Can this process change NUMA memory policies at all? Probes
/// `set_mempolicy(MPOL_DEFAULT)` once — the classic libnuma
/// availability check — and caches the answer. Bench metadata only;
/// allocation never consults it (failures degrade per region instead).
pub fn numa_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(imp::set_mempolicy_default)
}

// ---------------------------------------------------------------------------
// Host topology detection (/sys) and fault accounting (/proc)
// ---------------------------------------------------------------------------

/// What the running host actually provides, parsed from `/sys`. The
/// simulated [`mmjoin-numamodel`] topology describes the paper's
/// machine; this one describes the machine under your feet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostTopology {
    /// Online NUMA nodes (1 when undetectable — a safe minimum).
    pub nodes: usize,
    /// Transparent huge pages enabled (`[always]` or `[madvise]`).
    pub thp_enabled: bool,
    /// Free pre-reserved 2 MiB hugetlb pages.
    pub free_hugepages_2m: u64,
    /// False when `/sys` was absent and every field is a fallback.
    pub detected: bool,
}

impl HostTopology {
    fn fallback() -> HostTopology {
        HostTopology {
            nodes: 1,
            thp_enabled: false,
            free_hugepages_2m: 0,
            detected: false,
        }
    }
}

/// The detected topology of this host, parsed once from `/sys`.
pub fn host_topology() -> &'static HostTopology {
    static TOPO: OnceLock<HostTopology> = OnceLock::new();
    TOPO.get_or_init(|| detect_topology_from(Path::new("/")))
}

/// Count ids in a kernel range list like `0-3` or `0,2-5,7`.
fn count_range_list(s: &str) -> Option<usize> {
    let mut count = 0usize;
    for part in s.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            None => {
                part.parse::<u64>().ok()?;
                count += 1;
            }
            Some((lo, hi)) => {
                let lo: u64 = lo.parse().ok()?;
                let hi: u64 = hi.parse().ok()?;
                if hi < lo {
                    return None;
                }
                count += (hi - lo + 1) as usize;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(count)
    }
}

/// [`host_topology`] against an arbitrary filesystem root — the
/// testable core, so the "`/sys` absent" fallback can be exercised
/// with a temp dir.
pub fn detect_topology_from(root: &Path) -> HostTopology {
    let read = |rel: &str| std::fs::read_to_string(root.join(rel)).ok();
    let Some(online) = read("sys/devices/system/node/online") else {
        return HostTopology::fallback();
    };
    let nodes = count_range_list(&online).unwrap_or(1);
    let thp_enabled = read("sys/kernel/mm/transparent_hugepage/enabled")
        .map(|s| s.contains("[always]") || s.contains("[madvise]"))
        .unwrap_or(false);
    let free_hugepages_2m = read("sys/kernel/mm/hugepages/hugepages-2048kB/free_hugepages")
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    HostTopology {
        nodes,
        thp_enabled,
        free_hugepages_2m,
        detected: true,
    }
}

/// Minor (soft) page faults of this process so far, from
/// `/proc/self/stat` field 10. `None` off Linux. The alloc bench uses
/// the delta across back-to-back joins to show pool reuse skipping the
/// fault storm.
pub fn minor_faults() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm (field 2) may contain spaces and parens; fields resume
    // after the last ')'.
    let rest = &stat[stat.rfind(')')? + 1..];
    // rest starts at field 3 (state); min_flt is field 10.
    rest.split_ascii_whitespace().nth(7)?.parse().ok()
}

// ---------------------------------------------------------------------------
// Raw syscall backend (Linux x86-64 / aarch64), stubbed elsewhere
// ---------------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::ptr::NonNull;

    pub const MAP_HUGETLB: usize = 0x40000;
    pub const MAP_HUGE_2MB: usize = 21 << 26;
    pub const MPOL_BIND: usize = 2;
    pub const MPOL_INTERLEAVE: usize = 3;

    const PROT_READ: usize = 0x1;
    const PROT_WRITE: usize = 0x2;
    const MAP_PRIVATE: usize = 0x02;
    const MAP_ANONYMOUS: usize = 0x20;
    const MADV_HUGEPAGE: usize = 14;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const MADVISE: usize = 28;
        pub const MBIND: usize = 237;
        pub const SET_MEMPOLICY: usize = 238;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const MMAP: usize = 222;
        pub const MUNMAP: usize = 215;
        pub const MADVISE: usize = 233;
        pub const MBIND: usize = 235;
        pub const SET_MEMPOLICY: usize = 237;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    /// Anonymous private read/write mapping; `extra` adds hugetlb
    /// flags. `None` on any error (negative return = `-errno`).
    pub(super) fn mmap_anon(len: usize, extra: usize) -> Option<NonNull<u8>> {
        let ret = unsafe {
            syscall6(
                nr::MMAP,
                0,
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS | extra,
                usize::MAX, // fd = -1
                0,
            )
        };
        if ret < 0 {
            return None;
        }
        NonNull::new(ret as *mut u8)
    }

    pub(super) fn munmap(ptr: NonNull<u8>, len: usize) {
        unsafe {
            syscall6(nr::MUNMAP, ptr.as_ptr() as usize, len, 0, 0, 0, 0);
        }
    }

    pub(super) fn madvise_hugepage(ptr: NonNull<u8>, len: usize) -> bool {
        let ret = unsafe {
            syscall6(
                nr::MADVISE,
                ptr.as_ptr() as usize,
                len,
                MADV_HUGEPAGE,
                0,
                0,
                0,
            )
        };
        ret == 0
    }

    /// `mbind(addr, len, mode, &nodemask, maxnode=64, flags=0)`.
    pub(super) fn mbind(ptr: NonNull<u8>, len: usize, mode: usize, nodemask: u64) -> bool {
        let mask = [nodemask];
        let ret = unsafe {
            syscall6(
                nr::MBIND,
                ptr.as_ptr() as usize,
                len,
                mode,
                mask.as_ptr() as usize,
                65, // bits in the mask, +1 as libnuma does
                0,
            )
        };
        ret == 0
    }

    /// `set_mempolicy(MPOL_DEFAULT, NULL, 0)` — a harmless no-op that
    /// fails with ENOSYS/EPERM exactly when real policy calls would.
    pub(super) fn set_mempolicy_default() -> bool {
        let ret = unsafe { syscall6(nr::SET_MEMPOLICY, 0, 0, 0, 0, 0, 0) };
        ret == 0
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use std::ptr::NonNull;

    pub const MAP_HUGETLB: usize = 0;
    pub const MAP_HUGE_2MB: usize = 0;
    pub const MPOL_BIND: usize = 2;
    pub const MPOL_INTERLEAVE: usize = 3;

    /// Stub backend: no mapping is ever available, so every mapped
    /// policy silently degrades to the portable heap.
    pub(super) fn mmap_anon(_len: usize, _extra: usize) -> Option<NonNull<u8>> {
        None
    }

    pub(super) fn munmap(_ptr: NonNull<u8>, _len: usize) {}

    pub(super) fn madvise_hugepage(_ptr: NonNull<u8>, _len: usize) -> bool {
        false
    }

    pub(super) fn mbind(_ptr: NonNull<u8>, _len: usize, _mode: usize, _mask: u64) -> bool {
        false
    }

    pub(super) fn set_mempolicy_default() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module mutate the process-global policy cell;
    /// serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_round_trips() {
        for s in [
            "portable",
            "mapped",
            "thp",
            "hugetlb",
            "mapped+interleave",
            "thp+interleave",
            "thp+bind:3",
            "hugetlb+bind:0",
        ] {
            let p = AllocPolicy::parse(s).unwrap();
            assert_eq!(p.name(), s, "round trip of {s:?}");
            assert_eq!(AllocPolicy::parse(&p.name()).unwrap(), p);
        }
    }

    #[test]
    fn parse_aliases_and_errors() {
        assert_eq!(
            AllocPolicy::parse("interleave").unwrap(),
            AllocPolicy::Mapped {
                pages: PagePolicy::Small,
                numa: NumaPolicy::Interleave
            }
        );
        assert_eq!(
            AllocPolicy::parse("HUGE").unwrap(),
            AllocPolicy::Mapped {
                pages: PagePolicy::HugeTlb,
                numa: NumaPolicy::FirstTouch
            }
        );
        assert!(AllocPolicy::parse("").is_err());
        assert!(AllocPolicy::parse("bogus").is_err());
        assert!(AllocPolicy::parse("bind:x").is_err());
        assert!(AllocPolicy::parse("portable+thp").is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        for p in [
            AllocPolicy::Portable,
            AllocPolicy::THP,
            AllocPolicy::Mapped {
                pages: PagePolicy::HugeTlb,
                numa: NumaPolicy::Bind(17),
            },
            AllocPolicy::Mapped {
                pages: PagePolicy::Small,
                numa: NumaPolicy::Interleave,
            },
        ] {
            assert_eq!(decode_policy(encode_policy(p)), p);
            assert_ne!(encode_policy(p), 0, "0 is the unresolved marker");
        }
    }

    #[test]
    fn round_up_overflow_is_none() {
        assert_eq!(round_up(10, 4096), Some(4096));
        assert_eq!(round_up(4096, 4096), Some(4096));
        assert_eq!(round_up(usize::MAX - 10, 4096), None);
        assert_eq!(round_up(0, 4096), Some(0));
    }

    #[test]
    fn portable_policy_never_maps() {
        let _g = lock();
        with_policy(AllocPolicy::Portable, || {
            assert!(acquire(PAGE_2M, 64).is_none());
        });
    }

    #[test]
    fn small_requests_stay_on_heap() {
        let _g = lock();
        with_policy(AllocPolicy::THP, || {
            assert!(acquire(MAP_THRESHOLD - 1, 64).is_none());
        });
    }

    #[test]
    fn mapped_acquire_and_pool_reuse() {
        let _g = lock();
        with_policy(AllocPolicy::THP, || {
            pool_clear();
            let before = stats();
            let Some(b) = acquire(PAGE_2M, 64) else {
                // Stub backend (non-Linux): fallback must be counted.
                assert!(stats().delta(&before).heap_fallback >= 1);
                return;
            };
            assert!(b.is_fresh());
            assert_eq!(b.len() % PAGE_2M, 0);
            assert_eq!(b.ptr().as_ptr() as usize % PAGE_4K, 0);
            // Fresh kernel pages read zero.
            let s = unsafe { std::slice::from_raw_parts(b.ptr().as_ptr(), b.len()) };
            assert!(s.iter().all(|&x| x == 0));
            let addr = b.ptr().as_ptr() as usize;
            drop(b); // → pool
            let b2 = acquire(PAGE_2M, 64).expect("pool must serve the same class");
            assert!(!b2.is_fresh(), "second acquire must be a pool hit");
            assert_eq!(b2.ptr().as_ptr() as usize, addr, "LIFO reuse of the block");
            let d = stats().delta(&before);
            assert_eq!(d.pool_hits, 1);
            assert!(d.mapped_blocks >= 1);
            pool_clear();
        });
    }

    #[test]
    fn forced_mmap_failure_falls_back_to_heap() {
        let _g = lock();
        with_policy(AllocPolicy::THP, || {
            set_force_fail(FAIL_MMAP);
            let before = stats();
            assert!(acquire(PAGE_2M, 64).is_none());
            assert_eq!(stats().delta(&before).heap_fallback, 1);
            set_force_fail(0);
        });
    }

    #[test]
    fn forced_hugetlb_failure_degrades_not_fails() {
        let _g = lock();
        let p = AllocPolicy::Mapped {
            pages: PagePolicy::HugeTlb,
            numa: NumaPolicy::FirstTouch,
        };
        with_policy(p, || {
            pool_clear();
            set_force_fail(FAIL_HUGETLB);
            let before = stats();
            let got = acquire(PAGE_2M, 64);
            let d = stats().delta(&before);
            assert!(d.degraded_page >= 1, "hugetlb refusal must be recorded");
            if got.is_some() {
                // Linux: plain pages served it anyway.
                assert_eq!(d.heap_fallback, 0);
            }
            set_force_fail(0);
            drop(got);
            pool_clear();
        });
    }

    #[test]
    fn forced_mbind_failure_degrades_numa() {
        let _g = lock();
        let p = AllocPolicy::Mapped {
            pages: PagePolicy::Small,
            numa: NumaPolicy::Interleave,
        };
        with_policy(p, || {
            pool_clear();
            set_force_fail(FAIL_MBIND);
            let before = stats();
            let got = acquire(PAGE_2M, 64);
            let d = stats().delta(&before);
            if got.is_some() {
                assert!(d.degraded_numa >= 1, "mbind refusal must be recorded");
            }
            set_force_fail(0);
            drop(got);
            pool_clear();
        });
    }

    #[test]
    fn range_list_parsing() {
        assert_eq!(count_range_list("0-3"), Some(4));
        assert_eq!(count_range_list("0"), Some(1));
        assert_eq!(count_range_list("0,2-5,7"), Some(6));
        assert_eq!(count_range_list(""), None);
        assert_eq!(count_range_list("x"), None);
        assert_eq!(count_range_list("5-2"), None);
    }

    #[test]
    fn topology_absent_sys_falls_back() {
        let dir = std::env::temp_dir().join(format!("mmjoin-topo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t = detect_topology_from(&dir);
        assert_eq!(t, HostTopology::fallback());
        assert!(!t.detected);
        assert_eq!(t.nodes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topology_detects_from_fake_sys() {
        let dir = std::env::temp_dir().join(format!("mmjoin-topo2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sys/devices/system/node")).unwrap();
        std::fs::create_dir_all(dir.join("sys/kernel/mm/transparent_hugepage")).unwrap();
        std::fs::create_dir_all(dir.join("sys/kernel/mm/hugepages/hugepages-2048kB")).unwrap();
        std::fs::write(dir.join("sys/devices/system/node/online"), "0-3\n").unwrap();
        std::fs::write(
            dir.join("sys/kernel/mm/transparent_hugepage/enabled"),
            "always [madvise] never\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("sys/kernel/mm/hugepages/hugepages-2048kB/free_hugepages"),
            "128\n",
        )
        .unwrap();
        let t = detect_topology_from(&dir);
        assert!(t.detected);
        assert_eq!(t.nodes, 4);
        assert!(t.thp_enabled);
        assert_eq!(t.free_hugepages_2m, 128);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minor_faults_reads_on_linux() {
        let before = minor_faults();
        if cfg!(target_os = "linux") {
            // Touch some fresh pages; the counter must be readable and
            // monotonic.
            let v = vec![1u8; 1 << 20];
            std::hint::black_box(&v);
            let after = minor_faults();
            let (b, a) = (before.unwrap(), after.unwrap());
            assert!(a >= b);
        }
    }
}
