//! Small deterministic PRNGs.
//!
//! Data generation must be (a) fast enough to build multi-hundred-million
//! tuple relations and (b) exactly reproducible across runs so every join
//! algorithm sees the same input. We use SplitMix64 for seeding and
//! Xoshiro256** for the streams, both tiny, well-studied generators.

/// SplitMix64 — used to expand a single `u64` seed into generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** — the workhorse generator for shuffles and key draws.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` (Lemire's multiply-shift reduction —
    /// bias is negligible for our bounds and this is branch-free).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_hits_all_residues() {
        let mut r = Xoshiro256::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::new(9);
        let mut v: Vec<u32> = (0..1000).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(v, (0..1000).collect::<Vec<_>>(), "shuffle moved something");
    }
}
