//! The relational vocabulary of the study: 8-byte `<key, payload>` tuples
//! and placement-tagged relations.
//!
//! All join papers compared in the study (Balkesen, Lang, Blanas, Barber)
//! use the same narrow-tuple configuration: a 4-byte integer join key and a
//! 4-byte integer payload (usually the row id, enabling late
//! materialization). We keep exactly that layout so cache/TLB arithmetic
//! (8 tuples per cache line) matches the paper.

/// Join key type. The paper's build relations hold *dense, unique* keys
/// `1..=|R|`; key `0` is reserved as the EMPTY sentinel of the lock-free
/// linear-probing table (like the original NOP implementation).
pub type Key = u32;

/// Payload type; in the micro-benchmarks this is the row id.
pub type Payload = u32;

/// An 8-byte relational tuple, the unit of all join processing.
#[repr(C)]
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    pub key: Key,
    pub payload: Payload,
}

impl Tuple {
    #[inline]
    pub const fn new(key: Key, payload: Payload) -> Self {
        Tuple { key, payload }
    }

    /// Pack into a `u64` with the key in the high bits, so that `u64`
    /// comparison orders by key first. Used by the sort-merge substrate.
    #[inline]
    pub const fn pack(self) -> u64 {
        ((self.key as u64) << 32) | self.payload as u64
    }

    /// Inverse of [`Tuple::pack`].
    #[inline]
    pub const fn unpack(v: u64) -> Self {
        Tuple {
            key: (v >> 32) as u32,
            payload: v as u32,
        }
    }
}

/// Where a buffer lives in the (simulated) NUMA machine.
///
/// The real allocations on this host are ordinary heap memory; the
/// placement tag is interpreted by `mmjoin-numamodel` to attribute memory
/// traffic to NUMA nodes exactly the way the studied algorithms place their
/// buffers on the paper's 4-socket machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Pages are interleaved round-robin over all nodes (the
    /// `-basic-numa` option of the original radix-join code; also how NOP
    /// interleaves its global hash table).
    Interleaved,
    /// The whole buffer lives on one node.
    Node(usize),
    /// The buffer is divided into `parts` equal contiguous chunks,
    /// chunk `i` living on node `i % nodes` (how the input relations are
    /// distributed in Lang et al. and in this study).
    Chunked { parts: usize },
}

impl Placement {
    /// Node that byte offset `off` of a buffer of `len` bytes maps to, on a
    /// machine with `nodes` NUMA nodes and pages of `page_size` bytes.
    #[inline]
    pub fn node_of(self, off: usize, len: usize, nodes: usize, page_size: usize) -> usize {
        match self {
            Placement::Node(n) => n % nodes,
            Placement::Interleaved => (off / page_size) % nodes,
            Placement::Chunked { parts } => {
                let chunk = (off * parts / len.max(1)).min(parts - 1);
                chunk % nodes
            }
        }
    }
}

/// A relation: a flat tuple buffer plus its NUMA placement tag.
///
/// The buffer is cache-line aligned (required for the SWWCB flush path,
/// which copies whole cache lines).
pub struct Relation {
    data: crate::alloc::AlignedBuf<Tuple>,
    placement: Placement,
}

impl Relation {
    /// Allocate an uninitialized-then-zeroed relation of `n` tuples.
    pub fn zeroed(n: usize, placement: Placement) -> Self {
        Relation {
            data: crate::alloc::AlignedBuf::zeroed(n),
            placement,
        }
    }

    /// Build a relation from an existing tuple vector.
    pub fn from_tuples(tuples: &[Tuple], placement: Placement) -> Self {
        let mut buf = crate::alloc::AlignedBuf::zeroed(tuples.len());
        buf.as_mut_slice().copy_from_slice(tuples);
        Relation {
            data: buf,
            placement,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.len() == 0
    }

    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        self.data.as_slice()
    }

    #[inline]
    pub fn tuples_mut(&mut self) -> &mut [Tuple] {
        self.data.as_mut_slice()
    }

    #[inline]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    pub fn set_placement(&mut self, placement: Placement) {
        self.placement = placement;
    }

    /// Sum of all keys — a cheap sanity invariant preserved by partitioning.
    pub fn key_sum(&self) -> u64 {
        self.tuples().iter().map(|t| t.key as u64).sum()
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relation")
            .field("len", &self.len())
            .field("placement", &self.placement)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        let t = Tuple::new(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(Tuple::unpack(t.pack()), t);
    }

    #[test]
    fn pack_orders_by_key() {
        let a = Tuple::new(1, u32::MAX);
        let b = Tuple::new(2, 0);
        assert!(a.pack() < b.pack());
    }

    #[test]
    fn placement_node_of_interleaved() {
        let p = Placement::Interleaved;
        let page = 4096;
        assert_eq!(p.node_of(0, 1 << 20, 4, page), 0);
        assert_eq!(p.node_of(page, 1 << 20, 4, page), 1);
        assert_eq!(p.node_of(4 * page, 1 << 20, 4, page), 0);
    }

    #[test]
    fn placement_node_of_chunked() {
        let p = Placement::Chunked { parts: 4 };
        let len = 4000;
        assert_eq!(p.node_of(0, len, 4, 4096), 0);
        assert_eq!(p.node_of(1000, len, 4, 4096), 1);
        assert_eq!(p.node_of(3999, len, 4, 4096), 3);
    }

    #[test]
    fn relation_roundtrip() {
        let ts: Vec<Tuple> = (0..100).map(|i| Tuple::new(i, i * 2)).collect();
        let r = Relation::from_tuples(&ts, Placement::Interleaved);
        assert_eq!(r.len(), 100);
        assert_eq!(r.tuples(), &ts[..]);
        assert_eq!(r.key_sum(), (0..100u64).sum());
    }
}
