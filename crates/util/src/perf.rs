//! Native hardware performance counters via Linux `perf_event_open`.
//!
//! The paper's Table 4 and Figure 8 are built on PMU counters — cycles,
//! instructions, LLC misses, dTLB misses — measured per phase. This
//! module gives the executor the same numbers for the *host* run, so the
//! memsim predictions can be cross-checked against reality.
//!
//! Design constraints:
//!
//! * **No dependencies.** The workspace has no `libc`, so the three
//!   syscalls involved (`perf_event_open`, `read`, `close`) are issued
//!   with inline assembly, gated to Linux on x86-64/aarch64.
//! * **Graceful fallback, never an error.** On non-Linux hosts, under a
//!   restrictive `perf_event_paranoid`, inside containers without PMU
//!   access, or with `MMJOIN_PERF=off`, every counter simply reads as
//!   `None`. Profiling still records timing spans; only the hardware
//!   columns go missing.
//! * **Per-thread counter groups.** A [`CounterGroup`] is opened with
//!   `pid = 0, cpu = -1` — it counts the *opening thread* wherever it is
//!   scheduled — and is `!Send` so it cannot leave that thread. The
//!   hardware events share one perf group (one `read` syscall returns a
//!   consistent snapshot of all of them); the task clock is a standalone
//!   software event. Multiplexed counters are scaled by
//!   `time_enabled / time_running`, the standard perf estimate.
//!
//! The zero-cost disabled path is upstream of this module: when
//! profiling is off the executor never calls into it at all.

use std::sync::OnceLock;

/// Difference between two [`CounterSnapshot`]s: what one thread spent on
/// one span. A counter that could not be opened or read is `None`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterDelta {
    /// CPU cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    pub cycles: Option<u64>,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    pub instructions: Option<u64>,
    /// Last-level cache misses (`PERF_COUNT_HW_CACHE_MISSES`).
    pub llc_misses: Option<u64>,
    /// dTLB read misses (`PERF_COUNT_HW_CACHE` dTLB/read/miss).
    pub dtlb_misses: Option<u64>,
    /// Task clock in nanoseconds (`PERF_COUNT_SW_TASK_CLOCK`).
    pub task_clock_ns: Option<u64>,
}

impl CounterDelta {
    /// All counters absent — the fallback value.
    pub const fn none() -> CounterDelta {
        CounterDelta {
            cycles: None,
            instructions: None,
            llc_misses: None,
            dtlb_misses: None,
            task_clock_ns: None,
        }
    }

    /// True when at least one counter produced a value.
    pub fn any(&self) -> bool {
        self.cycles.is_some()
            || self.instructions.is_some()
            || self.llc_misses.is_some()
            || self.dtlb_misses.is_some()
            || self.task_clock_ns.is_some()
    }

    /// Accumulate `other` counter-wise. A value present on either side
    /// survives (`None` merges as zero), so aggregating workers where
    /// only some could open counters still reports partial totals.
    pub fn merge(&mut self, other: &CounterDelta) {
        fn add(a: &mut Option<u64>, b: Option<u64>) {
            if let Some(v) = b {
                *a = Some(a.unwrap_or(0).saturating_add(v));
            }
        }
        add(&mut self.cycles, other.cycles);
        add(&mut self.instructions, other.instructions);
        add(&mut self.llc_misses, other.llc_misses);
        add(&mut self.dtlb_misses, other.dtlb_misses);
        add(&mut self.task_clock_ns, other.task_clock_ns);
    }
}

/// Absolute counter values for the owning thread at one instant.
/// Meaningful only as the input to [`CounterGroup::delta_since`].
#[derive(Copy, Clone, Debug, Default)]
pub struct CounterSnapshot {
    /// cycles, instructions, llc, dtlb, task-clock — in that order.
    vals: [Option<u64>; 5],
}

impl CounterSnapshot {
    fn delta(&self, earlier: &CounterSnapshot) -> CounterDelta {
        fn sub(now: Option<u64>, then: Option<u64>) -> Option<u64> {
            match (now, then) {
                (Some(n), Some(t)) => Some(n.saturating_sub(t)),
                _ => None,
            }
        }
        CounterDelta {
            cycles: sub(self.vals[0], earlier.vals[0]),
            instructions: sub(self.vals[1], earlier.vals[1]),
            llc_misses: sub(self.vals[2], earlier.vals[2]),
            dtlb_misses: sub(self.vals[3], earlier.vals[3]),
            task_clock_ns: sub(self.vals[4], earlier.vals[4]),
        }
    }
}

/// A per-thread group of PMU counters, counting from the moment it is
/// opened. `!Send`: the underlying perf fds count the opening thread.
pub struct CounterGroup {
    inner: imp::Group,
    /// The perf fds are bound to the opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl CounterGroup {
    /// Open the counters for the calling thread. Returns `None` when no
    /// counter at all could be opened (non-Linux, `perf_event_paranoid`,
    /// missing PMU, `MMJOIN_PERF=off`) — callers fall back to
    /// [`CounterDelta::none`] values, never an error.
    pub fn open() -> Option<CounterGroup> {
        if env_disabled() {
            return None;
        }
        imp::Group::open().map(|inner| CounterGroup {
            inner,
            _not_send: std::marker::PhantomData,
        })
    }

    /// Current absolute values (multiplex-scaled).
    pub fn snapshot(&self) -> CounterSnapshot {
        self.inner.read()
    }

    /// Read now and subtract `earlier`.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterDelta {
        self.snapshot().delta(earlier)
    }
}

fn disabled_value(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "off" | "0" | "false" | "no" | "disabled"
    )
}

/// `MMJOIN_PERF=off` force-disables native counters (the CI fallback
/// path); cached for the process lifetime.
fn env_disabled() -> bool {
    static OFF: OnceLock<bool> = OnceLock::new();
    *OFF.get_or_init(|| {
        std::env::var("MMJOIN_PERF")
            .map(|v| disabled_value(&v))
            .unwrap_or(false)
    })
}

/// Cached capability probe: can this process read at least one native
/// counter? Opens (and drops) a probe group once; used for bench
/// metadata and operator-facing "counters unavailable" notes.
pub fn available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| match CounterGroup::open() {
        Some(g) => g.snapshot().vals.iter().any(|v| v.is_some()),
        None => false,
    })
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::CounterSnapshot;

    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_TYPE_SOFTWARE: u32 = 1;
    const PERF_TYPE_HW_CACHE: u32 = 3;
    const HW_CPU_CYCLES: u64 = 0;
    const HW_INSTRUCTIONS: u64 = 1;
    /// Documented by the kernel as last-level cache misses.
    const HW_CACHE_MISSES: u64 = 3;
    const SW_TASK_CLOCK: u64 = 1;
    /// `dTLB | (op_read << 8) | (result_miss << 16)`.
    const HW_CACHE_DTLB_READ_MISS: u64 = 3 | (1 << 16);

    const FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const FORMAT_GROUP: u64 = 1 << 3;

    /// `exclude_kernel | exclude_hv` — user-space counts only, which is
    /// also what lower `perf_event_paranoid` levels permit.
    const ATTR_FLAGS: u64 = (1 << 5) | (1 << 6);

    const PERF_FLAG_FD_CLOEXEC: usize = 8;

    /// First 64 bytes of `struct perf_event_attr`
    /// (`PERF_ATTR_SIZE_VER0`) — all this module needs.
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup: u32,
        bp_type: u32,
        config1: u64,
    }

    fn attr(type_: u32, config: u64, read_format: u64) -> PerfEventAttr {
        PerfEventAttr {
            type_,
            size: std::mem::size_of::<PerfEventAttr>() as u32,
            config,
            sample: 0,
            sample_type: 0,
            read_format,
            flags: ATTR_FLAGS,
            wakeup: 0,
            bp_type: 0,
            config1: 0,
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const CLOSE: usize = 3;
        pub const PERF_EVENT_OPEN: usize = 298;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const CLOSE: usize = 57;
        pub const PERF_EVENT_OPEN: usize = 241;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(n: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            options(nostack),
        );
        ret
    }

    /// `perf_event_open(&attr, pid=0 /* this thread */, cpu=-1, group_fd,
    /// FD_CLOEXEC)`; negative return is `-errno`.
    fn sys_perf_event_open(a: &PerfEventAttr, group_fd: i32) -> i32 {
        let ret = unsafe {
            syscall5(
                nr::PERF_EVENT_OPEN,
                a as *const PerfEventAttr as usize,
                0,
                -1isize as usize,
                group_fd as isize as usize,
                PERF_FLAG_FD_CLOEXEC,
            )
        };
        ret as i32
    }

    fn sys_read(fd: i32, buf: &mut [u64]) -> isize {
        unsafe {
            syscall5(
                nr::READ,
                fd as usize,
                buf.as_mut_ptr() as usize,
                std::mem::size_of_val(buf),
                0,
                0,
            )
        }
    }

    fn sys_close(fd: i32) {
        unsafe {
            syscall5(nr::CLOSE, fd as usize, 0, 0, 0, 0);
        }
    }

    /// Multiplex scaling: the kernel rotates over-committed PMU events;
    /// `value * enabled / running` is the standard extrapolation.
    fn scale(value: u64, enabled: u64, running: u64) -> u64 {
        if running == 0 || running >= enabled {
            value
        } else {
            ((value as u128) * (enabled as u128) / (running as u128)) as u64
        }
    }

    pub(super) struct Group {
        /// Group leader fd, or -1 when no hardware event opened.
        leader: i32,
        /// `(snapshot slot, fd)` of each opened hardware event, in the
        /// order they joined the group — the order group reads return
        /// their values in.
        members: Vec<(usize, i32)>,
        /// Standalone software task clock, or -1.
        task_clock: i32,
    }

    impl Group {
        pub(super) fn open() -> Option<Group> {
            // (event type, config, snapshot slot); first to open leads
            // the group, later failures just leave that slot `None`.
            const HW: [(u32, u64, usize); 4] = [
                (PERF_TYPE_HARDWARE, HW_CPU_CYCLES, 0),
                (PERF_TYPE_HARDWARE, HW_INSTRUCTIONS, 1),
                (PERF_TYPE_HARDWARE, HW_CACHE_MISSES, 2),
                (PERF_TYPE_HW_CACHE, HW_CACHE_DTLB_READ_MISS, 3),
            ];
            let group_format = FORMAT_GROUP | FORMAT_TOTAL_TIME_ENABLED | FORMAT_TOTAL_TIME_RUNNING;
            let mut leader = -1;
            let mut members = Vec::new();
            for (type_, config, slot) in HW {
                let fd = sys_perf_event_open(&attr(type_, config, group_format), leader);
                if fd >= 0 {
                    if leader < 0 {
                        leader = fd;
                    }
                    members.push((slot, fd));
                }
            }
            let task_clock = sys_perf_event_open(
                &attr(
                    PERF_TYPE_SOFTWARE,
                    SW_TASK_CLOCK,
                    FORMAT_TOTAL_TIME_ENABLED | FORMAT_TOTAL_TIME_RUNNING,
                ),
                -1,
            );
            if leader < 0 && task_clock < 0 {
                return None;
            }
            Some(Group {
                leader,
                members,
                task_clock,
            })
        }

        pub(super) fn read(&self) -> CounterSnapshot {
            let mut vals = [None; 5];
            if self.leader >= 0 {
                // Layout: nr, time_enabled, time_running, value[nr].
                let mut buf = [0u64; 3 + 4];
                let want = 3 + self.members.len();
                if sys_read(self.leader, &mut buf[..want]) == (want * 8) as isize {
                    let nr = (buf[0] as usize).min(self.members.len());
                    let (enabled, running) = (buf[1], buf[2]);
                    for (i, &(slot, _)) in self.members.iter().enumerate().take(nr) {
                        vals[slot] = Some(scale(buf[3 + i], enabled, running));
                    }
                }
            }
            if self.task_clock >= 0 {
                let mut buf = [0u64; 3];
                if sys_read(self.task_clock, &mut buf) == 24 {
                    vals[4] = Some(scale(buf[0], buf[1], buf[2]));
                }
            }
            CounterSnapshot { vals }
        }
    }

    impl Drop for Group {
        fn drop(&mut self) {
            for &(_, fd) in &self.members {
                sys_close(fd);
            }
            if self.task_clock >= 0 {
                sys_close(self.task_clock);
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::CounterSnapshot;

    /// Stub on platforms without a raw-syscall backend: opening always
    /// fails, so every counter reports `None`.
    pub(super) struct Group;

    impl Group {
        pub(super) fn open() -> Option<Group> {
            None
        }

        pub(super) fn read(&self) -> CounterSnapshot {
            CounterSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_delta_has_no_values() {
        let d = CounterDelta::none();
        assert!(!d.any());
        assert_eq!(d, CounterDelta::default());
    }

    #[test]
    fn merge_treats_none_as_zero() {
        let mut a = CounterDelta {
            cycles: Some(10),
            instructions: None,
            llc_misses: Some(1),
            dtlb_misses: None,
            task_clock_ns: None,
        };
        a.merge(&CounterDelta {
            cycles: Some(5),
            instructions: Some(7),
            llc_misses: None,
            dtlb_misses: None,
            task_clock_ns: Some(100),
        });
        assert_eq!(a.cycles, Some(15));
        assert_eq!(a.instructions, Some(7));
        assert_eq!(a.llc_misses, Some(1));
        assert_eq!(a.dtlb_misses, None);
        assert_eq!(a.task_clock_ns, Some(100));
        assert!(a.any());
    }

    #[test]
    fn snapshot_delta_mismatched_availability_is_none() {
        let now = CounterSnapshot {
            vals: [Some(100), None, Some(50), None, Some(9)],
        };
        let then = CounterSnapshot {
            vals: [Some(40), Some(1), None, None, Some(4)],
        };
        let d = now.delta(&then);
        assert_eq!(d.cycles, Some(60));
        assert_eq!(d.instructions, None);
        assert_eq!(d.llc_misses, None);
        assert_eq!(d.dtlb_misses, None);
        assert_eq!(d.task_clock_ns, Some(5));
    }

    #[test]
    fn env_off_values() {
        for v in ["off", "0", "false", "no", "disabled", " OFF "] {
            assert!(disabled_value(v), "{v:?}");
        }
        for v in ["on", "1", "", "yes"] {
            assert!(!disabled_value(v), "{v:?}");
        }
    }

    /// Opening must either succeed or cleanly return `None`; when it
    /// succeeds a busy loop must show forward progress on whichever
    /// counters are live. Never panics, regardless of host capability.
    #[test]
    fn open_and_read_smoke() {
        let Some(g) = CounterGroup::open() else {
            assert!(!available() || std::env::var("MMJOIN_PERF").is_ok());
            return;
        };
        let before = g.snapshot();
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let d = g.delta_since(&before);
        assert!(d.any(), "an open group must read at least one counter");
        if let Some(c) = d.cycles {
            assert!(c > 0, "cycles should advance over a busy loop");
        }
    }

    /// `available()` is consistent with what `open()` reports.
    #[test]
    fn availability_probe_is_cached_and_consistent() {
        let a = available();
        let b = available();
        assert_eq!(a, b);
        if a {
            assert!(CounterGroup::open().is_some());
        }
    }
}
