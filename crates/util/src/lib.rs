//! Shared low-level utilities for the `mmjoin` workspace.
//!
//! This crate deliberately has (almost) no dependencies. It provides the
//! vocabulary types used by every other crate:
//!
//! * [`Tuple`] / [`Relation`] — the `<key, payload>` pairs of the paper
//!   (4-byte key, 4-byte payload) and node-placement-tagged relations.
//! * [`alloc::AlignedBuf`] — cache-line / page aligned buffers.
//! * [`kernels`] — runtime-dispatched hardware kernels (non-temporal
//!   streaming stores, software prefetch) with portable fallbacks.
//! * [`rng`] — small deterministic PRNGs (SplitMix64 / Xoshiro256**).
//! * [`checksum`] — order-independent join-result checksums used to verify
//!   that all thirteen algorithms produce identical results.
//! * [`timer::PhaseTimer`] — named phase wall-clock measurements.
//! * [`pool::WorkerPool`] — the worker-pool trait every thread-parallel
//!   phase runs against (implemented by `mmjoin-core`'s persistent
//!   executor and by the scoped-thread fallback [`pool::ScopedPool`]).

pub mod alloc;
pub mod checksum;
pub mod jsonv;
pub mod kernels;
pub mod mem;
pub mod perf;
pub mod pool;
pub mod rng;
pub mod spill;
pub mod stats;
pub mod telemetry;
pub mod timer;
pub mod trace;
pub mod tuple;

pub use pool::{ExecCounters, ScopedPool, WorkerPool};
pub use tuple::{Key, Payload, Placement, Relation, Tuple};

/// Size of one cache line in bytes on every platform the paper targets.
pub const CACHE_LINE: usize = 64;

/// Number of 8-byte tuples that fit in one cache line (the SWWCB granule).
pub const TUPLES_PER_CACHELINE: usize = CACHE_LINE / core::mem::size_of::<Tuple>();

/// Small page size (default x86-64 page).
pub const PAGE_4K: usize = 4 * 1024;

/// Huge page size (x86-64 2 MB page).
pub const PAGE_2M: usize = 2 * 1024 * 1024;

/// Round `n` up to the next power of two, with a minimum of 1.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Integer log2 of a power of two.
#[inline]
pub fn log2_pow2(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

/// Divide `n` items into `parts` contiguous chunks as evenly as possible,
/// returning the `[start, end)` range of chunk `idx`.
///
/// The first `n % parts` chunks get one extra element, so chunk sizes never
/// differ by more than one. This is the chunk assignment used by every
/// thread-parallel phase in the paper's algorithms.
#[inline]
pub fn chunk_range(n: usize, parts: usize, idx: usize) -> core::ops::Range<usize> {
    debug_assert!(idx < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 64, 1000, 1023] {
            for parts in [1usize, 2, 3, 7, 32] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..parts {
                    let r = chunk_range(n, parts, i);
                    assert_eq!(r.start, prev_end, "n={n} parts={parts} i={i}");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..5).map(|i| chunk_range(13, 5, i).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(log2_pow2(1024), 10);
    }

    #[test]
    fn tuple_layout_matches_paper() {
        // The paper uses a 4-byte key and a 4-byte payload.
        assert_eq!(core::mem::size_of::<Tuple>(), 8);
        assert_eq!(TUPLES_PER_CACHELINE, 8);
    }
}
