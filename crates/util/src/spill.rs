//! Buffered spill files: page-aligned, append-only, checksummed runs of
//! tuples for the larger-than-memory join path (DESIGN.md §13).
//!
//! A [`SpillDir`] owns one temporary directory per join and removes it
//! recursively on `Drop`, so no error/cancel/panic path can leave orphan
//! temp files behind as long as the directory handle unwinds. Individual
//! runs ([`SpillRun`]) also delete their backing file when dropped, which
//! bounds disk usage during recursive repartitioning.
//!
//! Writes happen in whole 4 KiB pages ([`PAGE_4K`]): tuples are buffered
//! in memory until a page fills, then the page is appended with one
//! `write_all`. The final page is zero-padded so every run file is a
//! page multiple; the exact tuple count travels in the [`SpillRun`]
//! metadata, never in the file. Each run carries an order-dependent
//! digest of its tuples that the reader re-derives and verifies, so a
//! torn or corrupted spill file surfaces as a typed I/O error instead of
//! a wrong join result.
//!
//! Memory for the page buffers is the caller's to account: each writer
//! holds [`WRITER_BYTES`] and each reader [`READER_BYTES`] of heap;
//! `mmjoin-core` charges these against the join's `MemBudget`.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::tuple::Tuple;
use crate::PAGE_4K;

/// Tuples per 4 KiB spill page (512 for the paper's 8-byte tuples).
pub const TUPLES_PER_PAGE: usize = PAGE_4K / std::mem::size_of::<Tuple>();

/// Heap bytes held by one [`SpillWriter`] (tuple buffer + encode buffer).
pub const WRITER_BYTES: usize = 2 * PAGE_4K;

/// Heap bytes held by one [`SpillReader`] (decode buffer + tuple page).
pub const READER_BYTES: usize = 2 * PAGE_4K;

/// Injectable I/O failures for fault testing ("io failpoints").
///
/// Unlike the cfg-gated panic/sleep failpoints in `mmjoin-core`, these
/// are always compiled: the check is one mutex probe per *page* of I/O,
/// noise against an actual file write. Arming is scoped by a path
/// substring so concurrent tests (each join spills under its own unique
/// [`SpillDir`]) cannot trip each other's faults.
pub mod iofail {
    use std::io;
    use std::path::Path;
    use std::sync::Mutex;

    static ARMED: Mutex<Option<(String, u64)>> = Mutex::new(None);

    /// Disarms the failpoint when dropped (RAII for tests).
    pub struct Guard;

    impl Drop for Guard {
        fn drop(&mut self) {
            disarm();
        }
    }

    /// Arm: the `(skip + 1)`-th I/O operation on any spill file whose
    /// path contains `path_substring` fails with an injected
    /// `io::Error`, as do all later matching operations until the
    /// returned [`Guard`] drops (persistent failure models a dead disk,
    /// and keeps retry paths deterministic).
    pub fn arm(path_substring: &str, skip: u64) -> Guard {
        *ARMED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((path_substring.to_string(), skip));
        Guard
    }

    /// Remove any armed failpoint.
    pub fn disarm() {
        *ARMED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// Called by the spill layer before each file operation.
    pub(crate) fn check(path: &Path) -> io::Result<()> {
        let mut g = ARMED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((pat, left)) = g.as_mut() {
            if path.to_string_lossy().contains(pat.as_str()) {
                if *left == 0 {
                    return Err(io::Error::other(format!(
                        "injected spill I/O failure on {}",
                        path.display()
                    )));
                }
                *left -= 1;
            }
        }
        Ok(())
    }
}

/// Order-dependent digest over a run's tuples (SplitMix64 finalizer over
/// the packed tuple, chained so insert order matters — a run is read
/// back in exactly the order it was written).
#[inline]
fn mix_digest(digest: u64, t: Tuple) -> u64 {
    let mut z = digest ^ t.pack().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A join-scoped temporary directory holding spill runs. Removed
/// recursively (best-effort) on `Drop`.
#[derive(Debug)]
pub struct SpillDir {
    root: PathBuf,
}

impl SpillDir {
    /// Create a fresh, uniquely named spill directory under `parent`
    /// (or the system temp dir when `None`).
    pub fn create(parent: Option<&Path>) -> io::Result<SpillDir> {
        let base = match parent {
            Some(p) => p.to_path_buf(),
            None => std::env::temp_dir(),
        };
        let pid = std::process::id();
        loop {
            let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let root = base.join(format!("mmjoin-spill-{pid}-{seq}"));
            match fs::create_dir_all(&base).and_then(|()| fs::create_dir(&root)) {
                Ok(()) => return Ok(SpillDir { root }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory all runs live under.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Open a new append-only run named `name` (e.g. `"r-part-17"`).
    pub fn writer(&self, name: &str) -> io::Result<SpillWriter> {
        SpillWriter::create(self.root.join(format!("{name}.run")))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Buffered append-only writer for one run of tuples.
#[derive(Debug)]
pub struct SpillWriter {
    path: PathBuf,
    file: File,
    buf: Vec<Tuple>,
    encode: Vec<u8>,
    tuples: u64,
    bytes: u64,
    digest: u64,
    finished: bool,
}

impl SpillWriter {
    fn create(path: PathBuf) -> io::Result<SpillWriter> {
        iofail::check(&path)?;
        let file = File::create(&path)?;
        Ok(SpillWriter {
            path,
            file,
            buf: Vec::with_capacity(TUPLES_PER_PAGE),
            encode: vec![0u8; PAGE_4K],
            tuples: 0,
            bytes: 0,
            digest: 0,
            finished: false,
        })
    }

    /// Number of tuples appended so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Append one tuple, flushing a full page to disk when the buffer
    /// fills.
    #[inline]
    pub fn push(&mut self, t: Tuple) -> io::Result<()> {
        self.buf.push(t);
        if self.buf.len() == TUPLES_PER_PAGE {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Append a slice of tuples.
    pub fn push_slice(&mut self, ts: &[Tuple]) -> io::Result<()> {
        for &t in ts {
            self.push(t)?;
        }
        Ok(())
    }

    /// Write the buffered tuples as one zero-padded 4 KiB page.
    fn flush_page(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        iofail::check(&self.path)?;
        self.encode.fill(0);
        for (i, t) in self.buf.iter().enumerate() {
            self.encode[i * 8..i * 8 + 8].copy_from_slice(&t.pack().to_le_bytes());
            self.digest = mix_digest(self.digest, *t);
        }
        self.file.write_all(&self.encode)?;
        self.tuples += self.buf.len() as u64;
        self.bytes += PAGE_4K as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flush the final partial page and seal the run. The writer's file
    /// handle is dropped; the returned [`SpillRun`] owns the file.
    pub fn finish(mut self) -> io::Result<SpillRun> {
        self.flush_page()?;
        self.file.flush()?;
        self.finished = true;
        Ok(SpillRun {
            path: std::mem::take(&mut self.path),
            tuples: self.tuples,
            bytes: self.bytes,
            digest: self.digest,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        // An unfinished writer (error/cancel path) removes its file so
        // partial runs never linger beyond the writer itself.
        if !self.finished {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// A sealed on-disk run: path + exact tuple count + digest. Deletes its
/// backing file on `Drop`.
#[derive(Debug)]
pub struct SpillRun {
    path: PathBuf,
    tuples: u64,
    bytes: u64,
    digest: u64,
}

impl SpillRun {
    /// Exact number of tuples in the run.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Bytes occupied on disk (a page multiple).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True if the run holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Stream the run back one page at a time.
    pub fn reader(&self) -> io::Result<SpillReader<'_>> {
        iofail::check(&self.path)?;
        let file = File::open(&self.path)?;
        Ok(SpillReader {
            run: self,
            file,
            remaining: self.tuples,
            digest: 0,
            decode: vec![0u8; PAGE_4K],
            page: Vec::with_capacity(TUPLES_PER_PAGE),
        })
    }

    /// Read the whole run into memory, verifying the digest. The caller
    /// is responsible for having reserved `tuples * 8` bytes of budget.
    pub fn read_all(&self) -> io::Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.tuples as usize);
        let mut r = self.reader()?;
        while let Some(page) = r.next_page()? {
            out.extend_from_slice(page);
        }
        Ok(out)
    }
}

impl Drop for SpillRun {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Streaming page reader over a [`SpillRun`]; verifies the run digest
/// when the last page has been consumed.
#[derive(Debug)]
pub struct SpillReader<'a> {
    run: &'a SpillRun,
    file: File,
    remaining: u64,
    digest: u64,
    decode: Vec<u8>,
    page: Vec<Tuple>,
}

impl SpillReader<'_> {
    /// Next page of tuples, or `None` after the last. The final call
    /// that drains the run re-checks the digest and reports corruption
    /// as `io::ErrorKind::InvalidData`.
    pub fn next_page(&mut self) -> io::Result<Option<&[Tuple]>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        iofail::check(&self.run.path)?;
        self.file.read_exact(&mut self.decode)?;
        let n = (self.remaining as usize).min(TUPLES_PER_PAGE);
        self.page.clear();
        for i in 0..n {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&self.decode[i * 8..i * 8 + 8]);
            let t = Tuple::unpack(u64::from_le_bytes(raw));
            self.digest = mix_digest(self.digest, t);
            self.page.push(t);
        }
        self.remaining -= n as u64;
        if self.remaining == 0 && self.digest != self.run.digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill run checksum mismatch in {}", self.run.path.display()),
            ));
        }
        Ok(Some(&self.page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(n: usize, seed: u32) -> Vec<Tuple> {
        (0..n as u32)
            .map(|i| Tuple::new(i.wrapping_mul(2654435761) ^ seed, i))
            .collect()
    }

    #[test]
    fn round_trips_across_page_boundaries() {
        let dir = SpillDir::create(None).unwrap();
        for n in [
            0,
            1,
            TUPLES_PER_PAGE - 1,
            TUPLES_PER_PAGE,
            3 * TUPLES_PER_PAGE + 7,
        ] {
            let input = tuples(n, 42);
            let mut w = dir.writer(&format!("run-{n}")).unwrap();
            w.push_slice(&input).unwrap();
            let run = w.finish().unwrap();
            assert_eq!(run.tuples(), n as u64);
            assert_eq!(run.bytes() % PAGE_4K as u64, 0, "runs are page multiples");
            assert_eq!(run.read_all().unwrap(), input);
        }
    }

    #[test]
    fn streaming_reader_yields_exact_pages() {
        let dir = SpillDir::create(None).unwrap();
        let input = tuples(2 * TUPLES_PER_PAGE + 3, 7);
        let mut w = dir.writer("stream").unwrap();
        w.push_slice(&input).unwrap();
        let run = w.finish().unwrap();
        let mut r = run.reader().unwrap();
        let mut got = Vec::new();
        let mut pages = 0;
        while let Some(page) = r.next_page().unwrap() {
            got.extend_from_slice(page);
            pages += 1;
        }
        assert_eq!(pages, 3);
        assert_eq!(got, input);
    }

    #[test]
    fn drop_cleans_directory_and_runs() {
        let dir = SpillDir::create(None).unwrap();
        let root = dir.path().to_path_buf();
        let mut w = dir.writer("a").unwrap();
        w.push_slice(&tuples(1000, 1)).unwrap();
        let run = w.finish().unwrap();
        let unfinished = dir.writer("b").unwrap();
        assert!(root.exists());
        drop(unfinished); // unfinished writer removes its own file
        assert_eq!(fs::read_dir(&root).unwrap().count(), 1);
        drop(run);
        assert_eq!(fs::read_dir(&root).unwrap().count(), 0);
        drop(dir);
        assert!(!root.exists(), "SpillDir::drop removes the directory");
    }

    #[test]
    fn corrupted_run_fails_checksum() {
        let dir = SpillDir::create(None).unwrap();
        let mut w = dir.writer("c").unwrap();
        w.push_slice(&tuples(700, 3)).unwrap();
        let run = w.finish().unwrap();
        // Flip one byte in the middle of the file.
        let mut raw = fs::read(&run.path).unwrap();
        raw[100] ^= 0xFF;
        fs::write(&run.path, &raw).unwrap();
        let err = run.read_all().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn iofail_injects_scoped_errors() {
        let dir = SpillDir::create(None).unwrap();
        let other = SpillDir::create(None).unwrap();
        let marker = dir
            .path()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .to_string();
        let _g = iofail::arm(&marker, 1); // first matching op ok, second fails
        let mut w = dir.writer("f").unwrap(); // op 1: create
        let err = w.push_slice(&tuples(2 * TUPLES_PER_PAGE, 9)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // A different spill dir is untouched by the armed failpoint.
        let mut w2 = other.writer("g").unwrap();
        w2.push_slice(&tuples(2 * TUPLES_PER_PAGE, 9)).unwrap();
        w2.finish().unwrap();
    }
}
