//! Runtime-dispatched hardware kernels.
//!
//! The original C implementations of the studied joins lean on two
//! micro-architectural instructions that a portable reproduction cannot
//! express in safe Rust:
//!
//! * **non-temporal streaming stores** (`_mm_stream_si128` /
//!   `_mm256_stream_si256`) for SWWCB flushes — full cache lines of
//!   partitioned tuples bypass the cache hierarchy on their way to DRAM,
//!   so scattering does not evict the very buffers that make write
//!   combining work, and
//! * **software prefetches** (`_mm_prefetch`) issued a group of probes
//!   ahead, so a hash-table walk overlaps several DRAM misses instead of
//!   stalling on each one.
//!
//! This module provides both as *dispatched* kernels: on `x86_64` the
//! real instructions run when the CPU supports them
//! (`is_x86_feature_detected!`), everywhere else — and whenever the
//! portable mode is forced — a plain-copy / no-op fallback runs that is
//! **bit-identical in effect**. Differential tests in the partition and
//! hashtable crates compare the two paths on the same inputs.
//!
//! # Selecting a mode
//!
//! Resolution order, first match wins:
//!
//! 1. a programmatic override installed with [`set_mode`] (the
//!    `JoinConfig::kernel_mode` knob in `mmjoin-core` calls this),
//! 2. the `MMJOIN_KERNELS` environment variable
//!    (`portable` | `simd` | `auto`),
//! 3. auto-detection (`simd` on `x86_64` with SSE2, else `portable`).
//!
//! The resolved mode is a process-wide property, cached in one atomic:
//! reading it in a hot loop costs a single relaxed load. Forcing `simd`
//! on a CPU without the required features silently degrades to
//! `portable` rather than faulting.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::CACHE_LINE;

/// Kernel selection policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Resolve from `MMJOIN_KERNELS`, falling back to CPU detection.
    Auto,
    /// Force the portable fallbacks (plain copies, no prefetch).
    Portable,
    /// Force the SIMD/streaming/prefetch paths where the CPU has them.
    Simd,
}

impl KernelMode {
    /// Parse the `MMJOIN_KERNELS` spelling.
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelMode::Auto),
            "portable" | "scalar" | "off" => Some(KernelMode::Portable),
            "simd" | "on" => Some(KernelMode::Simd),
            _ => None,
        }
    }
}

/// Packed state of the process-wide mode cell: 0 = unresolved, else
/// 1 + discriminant of the *resolved* (Portable/Simd) mode.
const UNRESOLVED: u8 = 0;
const RESOLVED_PORTABLE: u8 = 1;
const RESOLVED_SIMD: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// True when this build/CPU can run the streaming + prefetch kernels.
#[inline]
fn cpu_has_simd() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is architecturally guaranteed on x86_64, but go through
        // the detection macro anyway so the kernels stay honest if the
        // baseline ever changes.
        std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn resolve_from_env() -> u8 {
    let requested = std::env::var("MMJOIN_KERNELS")
        .ok()
        .and_then(|v| KernelMode::parse(&v))
        .unwrap_or(KernelMode::Auto);
    resolve(requested)
}

fn resolve(mode: KernelMode) -> u8 {
    match mode {
        KernelMode::Portable => RESOLVED_PORTABLE,
        KernelMode::Simd | KernelMode::Auto => {
            if cpu_has_simd() {
                RESOLVED_SIMD
            } else {
                RESOLVED_PORTABLE
            }
        }
    }
}

/// Install a process-wide kernel mode, overriding the environment.
/// `Auto` re-resolves from `MMJOIN_KERNELS` / CPU detection.
pub fn set_mode(mode: KernelMode) {
    let state = match mode {
        KernelMode::Auto => resolve_from_env(),
        other => resolve(other),
    };
    MODE.store(state, Ordering::Relaxed);
}

/// True when the streaming/prefetch kernels are active; false means every
/// dispatched kernel takes its portable fallback.
#[inline]
pub fn simd_active() -> bool {
    match MODE.load(Ordering::Relaxed) {
        RESOLVED_SIMD => true,
        RESOLVED_PORTABLE => false,
        _ => {
            let state = resolve_from_env();
            MODE.store(state, Ordering::Relaxed);
            state == RESOLVED_SIMD
        }
    }
}

/// The currently effective mode, post-resolution.
pub fn effective_mode() -> KernelMode {
    if simd_active() {
        KernelMode::Simd
    } else {
        KernelMode::Portable
    }
}

/// Copy one 64-byte cache line with non-temporal (streaming) stores.
///
/// Portable-mode and non-x86 builds fall back to `copy_nonoverlapping`.
/// Streamed stores are weakly ordered; callers must execute [`sfence`]
/// before other threads read the destination (in the joins: once per
/// SWWCB bank at the end of the scatter, ahead of the phase barrier).
///
/// # Safety
/// `src` and `dst` must be valid for 64 bytes and 64-byte aligned
/// (alignment is debug-asserted; the SWWCB line buffers and
/// `AlignedBuf` destinations guarantee it).
#[inline]
pub unsafe fn stream_cacheline(dst: *mut u8, src: *const u8) {
    debug_assert_eq!(dst as usize % CACHE_LINE, 0, "unaligned stream dst");
    debug_assert_eq!(src as usize % CACHE_LINE, 0, "unaligned stream src");
    #[cfg(target_arch = "x86_64")]
    {
        if simd_active() {
            if std::arch::is_x86_feature_detected!("avx") {
                stream_cacheline_avx(dst, src);
            } else {
                stream_cacheline_sse2(dst, src);
            }
            return;
        }
    }
    std::ptr::copy_nonoverlapping(src, dst, CACHE_LINE);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stream_cacheline_avx(dst: *mut u8, src: *const u8) {
    use std::arch::x86_64::{__m256i, _mm256_load_si256, _mm256_stream_si256};
    let s = src as *const __m256i;
    let d = dst as *mut __m256i;
    _mm256_stream_si256(d, _mm256_load_si256(s));
    _mm256_stream_si256(d.add(1), _mm256_load_si256(s.add(1)));
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn stream_cacheline_sse2(dst: *mut u8, src: *const u8) {
    use std::arch::x86_64::{__m128i, _mm_load_si128, _mm_stream_si128};
    let s = src as *const __m128i;
    let d = dst as *mut __m128i;
    for i in 0..4 {
        _mm_stream_si128(d.add(i), _mm_load_si128(s.add(i)));
    }
}

/// Order all preceding streaming stores before subsequent memory
/// operations. No-op in portable mode and on non-x86 targets (where the
/// streaming kernel is an ordinary store anyway).
#[inline]
pub fn sfence() {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_active() {
            // SAFETY: `sfence` has no operands and no preconditions.
            unsafe { std::arch::x86_64::_mm_sfence() };
        }
    }
}

/// Hint the cache hierarchy to fetch the line holding `*ptr` for reading
/// (T0 locality). No-op in portable mode and on non-x86 targets; always
/// safe to call with any address — prefetches never fault.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_active() {
            // SAFETY: prefetch is a hint; invalid addresses are ignored
            // by the hardware.
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                    ptr as *const i8,
                )
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Hint the cache hierarchy to fetch the line holding `*ptr` with intent
/// to *write* (ET0 locality: exclusive ownership), skipping the
/// shared-then-upgrade round trip a read prefetch would pay before the
/// store. No-op in portable mode and on non-x86 targets; always safe to
/// call with any address — prefetches never fault.
#[inline(always)]
pub fn prefetch_write<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_active() {
            // SAFETY: prefetch is a hint; invalid addresses are ignored
            // by the hardware.
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_ET0 }>(
                    ptr as *const i8,
                )
            };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Run `f` under a forced kernel mode, restoring the previous mode after.
///
/// The mode is a *process-wide* property: concurrently running joins see
/// the forced mode too. That is benign for correctness (both paths are
/// bit-identical) but matters for benchmarking — A/B harnesses should
/// not overlap runs. Intended for tests and the kernel bench harness.
pub fn with_mode<R>(mode: KernelMode, f: impl FnOnce() -> R) -> R {
    let before = MODE.load(Ordering::Relaxed);
    set_mode(mode);
    let out = f();
    MODE.store(before, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spellings() {
        assert_eq!(KernelMode::parse("portable"), Some(KernelMode::Portable));
        assert_eq!(KernelMode::parse("SIMD"), Some(KernelMode::Simd));
        assert_eq!(KernelMode::parse(" auto "), Some(KernelMode::Auto));
        assert_eq!(KernelMode::parse("scalar"), Some(KernelMode::Portable));
        assert_eq!(KernelMode::parse("turbo"), None);
    }

    #[test]
    fn forced_modes_resolve() {
        with_mode(KernelMode::Portable, || {
            assert!(!simd_active());
            assert_eq!(effective_mode(), KernelMode::Portable);
        });
        #[cfg(target_arch = "x86_64")]
        with_mode(KernelMode::Simd, || {
            assert!(simd_active());
        });
    }

    #[test]
    fn stream_cacheline_copies_exactly_in_both_modes() {
        #[repr(align(64))]
        struct Line([u8; 64]);
        let src = Line(std::array::from_fn(|i| i as u8));
        for mode in [KernelMode::Portable, KernelMode::Simd] {
            let mut dst = Line([0u8; 64]);
            with_mode(mode, || {
                // SAFETY: both buffers are 64-byte aligned and 64 bytes.
                unsafe { stream_cacheline(dst.0.as_mut_ptr(), src.0.as_ptr()) };
                sfence();
            });
            assert_eq!(dst.0, src.0, "{mode:?}");
        }
    }

    #[test]
    fn prefetch_never_faults() {
        let v = [1u64, 2, 3];
        prefetch_read(v.as_ptr());
        prefetch_read(std::ptr::null::<u64>()); // hint only, must not fault
    }
}
