//! Streaming telemetry primitives for the live service (DESIGN.md §16).
//!
//! The offline harness measures latency by collecting every sample and
//! sorting a copy per percentile ([`crate::stats::percentile`]). A
//! service that runs for days cannot: memory is unbounded and the sort
//! is a stop-the-world pass. This module provides the fixed-memory
//! alternative:
//!
//! * [`LogHistogram`] — an HDR-style log-bucketed histogram over `u64`
//!   values with **atomic** buckets: `record` is lock-free and
//!   wait-free (two relaxed fetch-adds plus a min/max update), merge is
//!   bucket-wise addition, and quantile estimates carry a bounded
//!   relative error of at most `2^-SUB_BITS` = 1/32 ≈ 3.1%.
//! * [`HistSnapshot`] — a plain (non-atomic) copy for window rollups:
//!   mergeable, quantile-queryable, serializable by hand like every
//!   other JSON artifact in the workspace.
//! * [`Counter`] / [`Gauge`] — monotonic and bidirectional atomics.
//! * [`Registry`] — a labeled metric registry (name × label set →
//!   counter/gauge/histogram) with a Prometheus text exposition. A
//!   process-global instance is available via [`global`]; servers
//!   embed their own so tests hosting several servers in one process
//!   stay isolated.
//!
//! Values are unit-agnostic `u64`s; the service records latencies in
//! nanoseconds and byte volumes in bytes, and converts at exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sub-bucket precision: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile
/// error by `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 5;
const BASE: usize = 1 << SUB_BITS; // 32
/// Bucket count covering the full `u64` range: values below `BASE` get
/// exact unit buckets, every octave above contributes `BASE` buckets.
pub const N_BUCKETS: usize = (64 - SUB_BITS as usize) * BASE;

/// Bucket index of `v` (exact for `v < BASE`, log-linear above).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < BASE as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= SUB_BITS
    let shift = msb - SUB_BITS as usize;
    ((shift + 1) << SUB_BITS) | ((v >> shift) as usize & (BASE - 1))
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_lo(i: usize) -> u64 {
    if i < BASE {
        return i as u64;
    }
    let shift = (i >> SUB_BITS) - 1;
    let sub = (i & (BASE - 1)) as u64;
    (BASE as u64 | sub) << shift
}

/// Representative value of bucket `i`: its midpoint, which halves the
/// worst-case quantile error versus either bound.
#[inline]
fn bucket_mid(i: usize) -> u64 {
    if i < BASE {
        return i as u64;
    }
    let shift = (i >> SUB_BITS) - 1;
    let lo = bucket_lo(i);
    lo + ((1u64 << shift) >> 1)
}

/// Fixed-memory log-bucketed histogram with atomic buckets. `record`
/// never blocks; concurrent recorders and a concurrent snapshotter are
/// all safe (a snapshot taken mid-record may miss in-flight samples,
/// which is the usual monitoring contract).
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LogHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free: two fetch-adds, one bucket
    /// increment, and min/max updates, all relaxed.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket-wise accumulate `other` into `self` (associative and
    /// commutative, so per-thread histograms fold in any order).
    pub fn merge(&self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = o.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimate the `q`-quantile (0.0..=1.0). Exact at the extremes
    /// (tracked min/max); elsewhere the bucket midpoint, within
    /// `2^-SUB_BITS` relative error. Zero observations yield 0.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Plain copy of the current state for window rollups.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = vec![0u64; N_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket and counter (used when an epoch slot is
    /// recycled; concurrent records during the reset may land on
    /// either side of it).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain (non-atomic) histogram state: what window rollups store and
/// merge without touching the live atomics.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Same estimator as [`LogHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.counts.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            seen += n;
            if seen >= target {
                // Clamp to the tracked extremes: the lowest/highest
                // buckets' midpoints can under/overshoot them.
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Monotonic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Set-to-current-value gauge.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric's identity: family name plus its sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

/// Labeled metric registry. Lookup takes a short mutex (creation is
/// rare, the handle is meant to be cached by the caller); recording
/// through the returned `Arc` handles is lock-free.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter `name{labels}`, created on first use. Panics if the
    /// same name+labels was registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut g = self.metrics.lock().unwrap();
        match g
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut g = self.metrics.lock().unwrap();
        match g
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(v) => Arc::clone(v),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LogHistogram> {
        let mut g = self.metrics.lock().unwrap();
        match g
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(LogHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Sum of `name`'s counter values across every label set (0 when
    /// the family does not exist).
    pub fn counter_total(&self, name: &str) -> u64 {
        let g = self.metrics.lock().unwrap();
        g.iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                _ => 0,
            })
            .sum()
    }

    /// Merged snapshot of `name`'s histograms across every label set.
    pub fn histogram_total(&self, name: &str) -> HistSnapshot {
        let g = self.metrics.lock().unwrap();
        let mut out = HistSnapshot::empty();
        for ((n, _), m) in g.iter() {
            if n == name {
                if let Metric::Histogram(h) = m {
                    out.merge(&h.snapshot());
                }
            }
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4). Histograms are
    /// rendered as summaries (`{quantile="0.5"|"0.99"|"0.999"}` plus
    /// `_sum`/`_count`); `*_ns`-suffixed families are scaled to
    /// seconds and exposed as `*_seconds`, matching the convention.
    pub fn expose_prometheus(&self) -> String {
        let g = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(4096);
        let mut last_family = String::new();
        for ((name, labels), m) in g.iter() {
            let (family, kind, scale) = match m {
                Metric::Counter(_) => (name.clone(), "counter", 1.0),
                Metric::Gauge(_) => (name.clone(), "gauge", 1.0),
                Metric::Histogram(_) => match name.strip_suffix("_ns") {
                    Some(stem) => (format!("{stem}_seconds"), "summary", 1e-9),
                    None => (name.clone(), "summary", 1.0),
                },
            };
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.clone();
            }
            let label_str = render_labels(labels, None);
            match m {
                Metric::Counter(c) => {
                    out.push_str(&format!("{family}{label_str} {}\n", c.get()));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!("{family}{label_str} {}\n", v.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    for (q, qs) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                        let ql = render_labels(labels, Some(qs));
                        out.push_str(&format!(
                            "{family}{ql} {}\n",
                            fmt_float(s.quantile(q) as f64 * scale)
                        ));
                    }
                    out.push_str(&format!(
                        "{family}_sum{label_str} {}\n",
                        fmt_float(s.sum as f64 * scale)
                    ));
                    out.push_str(&format!("{family}_count{label_str} {}\n", s.count));
                }
            }
        }
        out
    }
}

fn fmt_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// `{a="x",b="y"}` with Prometheus label escaping; `quantile`, when
/// given, is appended as the last label.
fn render_labels(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The process-global registry (CLI tools and single-server
/// processes). Embedded servers hold their own [`Registry`] so tests
/// spawning several servers per process do not cross-count.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn bucket_round_trip_bounds() {
        for v in [0u64, 1, 31, 32, 33, 100, 1023, 1 << 20, u64::MAX / 2] {
            let i = bucket_of(v);
            let lo = bucket_lo(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(bucket_mid(i) >= lo);
            if i + 1 < N_BUCKETS {
                assert!(bucket_lo(i + 1) > v, "v {v} beyond bucket {i}");
            }
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_relative_error() {
        // Log-uniform samples spanning six decades: the shape that
        // breaks linear-bucket histograms.
        let mut rng = crate::rng::Xoshiro256::new(7);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| {
                let e = rng.below(6) as u32;
                10u64.pow(e) + rng.below(9 * 10u64.pow(e))
            })
            .collect();
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let exact: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q) as f64;
            let truth = stats::percentile(&exact, q);
            let rel = (est - truth).abs() / truth.max(1.0);
            // Bucket half-width is 2^-SUB_BITS/2 ≈ 1.6%; allow double
            // for the rank-vs-interpolation definitional gap.
            assert!(
                rel <= 2.0 * 0.5f64.powi(SUB_BITS as i32 - 1),
                "q={q}: est {est} vs exact {truth} (rel {rel:.4})"
            );
        }
        // Extremes are exact, not bucketed.
        assert_eq!(h.quantile(0.0), *samples.iter().min().unwrap());
        assert_eq!(h.quantile(1.0), *samples.iter().max().unwrap());
    }

    #[test]
    fn merge_is_associative_and_matches_pooled() {
        let mk = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (
            mk(&[1, 10, 100, 50_000]),
            mk(&[3, 7, 9_999_999]),
            mk(&[2, 2, 2, 1 << 40]),
        );
        // (a+b)+c
        let left = LogHistogram::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // a+(b+c)
        let bc = LogHistogram::new();
        bc.merge(&b);
        bc.merge(&c);
        let right = LogHistogram::new();
        right.merge(&a);
        right.merge(&bc);
        // Pooled directly.
        let pooled = mk(&[1, 10, 100, 50_000, 3, 7, 9_999_999, 2, 2, 2, 1 << 40]);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(left.quantile(q), right.quantile(q), "q={q}");
            assert_eq!(left.quantile(q), pooled.quantile(q), "q={q}");
        }
        assert_eq!(left.count(), 11);
        assert_eq!(left.sum(), pooled.sum());
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = Arc::new(LogHistogram::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(t as u64 * 1000 + i % 997);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), threads as u64 * per);
        let s = h.snapshot();
        assert_eq!(s.counts.iter().sum::<u64>(), threads as u64 * per);
    }

    #[test]
    fn zero_count_edge_cases() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        let s = h.snapshot();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        // Merging empty into empty stays empty.
        let other = LogHistogram::new();
        h.merge(&other);
        assert_eq!(h.quantile(0.99), 0);
        // A single zero-valued sample is representable.
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().min(), Some(0));
    }

    #[test]
    fn reset_clears_everything() {
        let h = LogHistogram::new();
        h.record(123);
        h.record(1 << 30);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn registry_handles_and_exposition() {
        let r = Registry::new();
        let c = r.counter("mmjoin_requests_total", &[("tenant", "t0"), ("op", "join")]);
        c.add(3);
        // Same key → same handle.
        r.counter("mmjoin_requests_total", &[("op", "join"), ("tenant", "t0")])
            .inc();
        assert_eq!(c.get(), 4);
        r.gauge("mmjoin_queue_depth", &[("tenant", "t0")]).set(7);
        let h = r.histogram("mmjoin_join_latency_ns", &[("tenant", "t0")]);
        h.record(1_000_000);
        h.record(2_000_000);
        assert_eq!(r.counter_total("mmjoin_requests_total"), 4);
        assert_eq!(r.histogram_total("mmjoin_join_latency_ns").count, 2);
        let text = r.expose_prometheus();
        assert!(text.contains("# TYPE mmjoin_requests_total counter"));
        assert!(text.contains("mmjoin_requests_total{op=\"join\",tenant=\"t0\"} 4"));
        assert!(text.contains("# TYPE mmjoin_queue_depth gauge"));
        assert!(text.contains("mmjoin_queue_depth{tenant=\"t0\"} 7"));
        // _ns histograms expose as _seconds summaries.
        assert!(text.contains("# TYPE mmjoin_join_latency_seconds summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("mmjoin_join_latency_seconds_count{tenant=\"t0\"} 2"));
        // Every line is `# ...` or `name{...} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, val) = line.rsplit_once(' ').expect("metric line has a value");
            val.parse::<f64>().expect("value parses as a float");
        }
    }

    #[test]
    fn label_escaping() {
        let r = Registry::new();
        r.counter("c", &[("tenant", "we\"ird\\t\nenant")]).inc();
        let text = r.expose_prometheus();
        assert!(text.contains("c{tenant=\"we\\\"ird\\\\t\\nenant\"} 1"));
    }
}
