//! Named-phase wall-clock timing.
//!
//! Every join in the study reports a partition/build/probe (or sort/merge)
//! breakdown; `PhaseTimer` collects those named spans and the experiment
//! harness turns them into the stacked bars of Figures 5, 7, 9 and 14.

use std::time::{Duration, Instant};

/// One completed, named phase.
#[derive(Clone, Debug)]
pub struct Phase {
    pub name: &'static str,
    pub wall: Duration,
}

/// Collects named phases; phases with the same name accumulate.
#[derive(Default, Debug)]
pub struct PhaseTimer {
    phases: Vec<Phase>,
}

impl PhaseTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f` and record its duration under `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record(name, start.elapsed());
        r
    }

    /// Record an externally measured duration.
    pub fn record(&mut self, name: &'static str, wall: Duration) {
        if let Some(p) = self.phases.iter_mut().find(|p| p.name == name) {
            p.wall += wall;
        } else {
            self.phases.push(Phase { name, wall });
        }
    }

    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.wall)
    }

    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_same_name() {
        let mut t = PhaseTimer::new();
        t.record("a", Duration::from_millis(5));
        t.record("a", Duration::from_millis(7));
        t.record("b", Duration::from_millis(1));
        assert_eq!(t.get("a"), Some(Duration::from_millis(12)));
        assert_eq!(t.total(), Duration::from_millis(13));
        assert_eq!(t.phases().len(), 2);
    }

    #[test]
    fn time_returns_value() {
        let mut t = PhaseTimer::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get("work").is_some());
    }
}
