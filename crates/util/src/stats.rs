//! Descriptive and comparative statistics for the experiment harness:
//! median-of-repeats reporting, throughput conversion, and the
//! distribution-aware tools the regression sentinel runs over raw
//! repeat vectors (bootstrap confidence intervals, Mann-Whitney U).

use std::time::Duration;

use crate::rng::Xoshiro256;

/// Throughput in the paper's metric: `(|R| + |S|) / runtime`, in million
/// input tuples per second. (The study deliberately uses the
/// selectivity-independent *input* definition from Lang et al., not the
/// output-tuple definition from Balkesen et al.)
#[inline]
pub fn throughput_mtps(r_len: usize, s_len: usize, runtime: Duration) -> f64 {
    let secs = runtime.as_secs_f64();
    if secs == 0.0 {
        return f64::INFINITY;
    }
    (r_len + s_len) as f64 / secs / 1e6
}

/// Average time per processed input tuple in nanoseconds (Figure 9/11 metric).
#[inline]
pub fn ns_per_tuple(tuples: usize, runtime: Duration) -> f64 {
    if tuples == 0 {
        return 0.0;
    }
    runtime.as_nanos() as f64 / tuples as f64
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (sorts a copy).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The `p`-th percentile (0.0..=1.0) by linear interpolation between
/// order statistics (the "exclusive-inclusive" definition most load
/// tools use: `percentile(xs, 0.5) == median(xs)`). Sorts a copy.
/// Latency tails of the serve harness (`p50/p99/p999`) come from here.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let p = p.clamp(0.0, 1.0);
    let rank = p * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Several percentiles of the same sample in one sort: `percentile`
/// sorts a copy per call, so `p50/p99/p999` over a large latency vector
/// paid three sorts. Returns estimates in the order of `ps`, using the
/// same interpolation as [`percentile`].
pub fn percentiles(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return vec![0.0; ps.len()];
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    ps.iter()
        .map(|p| {
            let p = p.clamp(0.0, 1.0);
            let rank = p * (v.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                let frac = rank - lo as f64;
                v[lo] * (1.0 - frac) + v[hi] * frac
            }
        })
        .collect()
}

/// Bootstrap confidence interval for the median of `xs`: resample with
/// replacement `iters` times, take the `(1-confidence)/2` percentiles of
/// the resampled medians. Deterministic for a given `seed`, so two runs
/// of the sentinel agree on every verdict.
///
/// Degenerate inputs collapse gracefully: an empty slice yields
/// `(0.0, 0.0)`, a single sample yields `(x, x)`.
pub fn bootstrap_median_ci(xs: &[f64], iters: usize, confidence: f64, seed: u64) -> (f64, f64) {
    if xs.is_empty() || iters == 0 {
        return (0.0, 0.0);
    }
    let mut rng = Xoshiro256::new(seed);
    let mut buf = vec![0.0f64; xs.len()];
    let mut medians = Vec::with_capacity(iters);
    for _ in 0..iters {
        for slot in buf.iter_mut() {
            *slot = xs[rng.below(xs.len() as u64) as usize];
        }
        medians.push(median(&buf));
    }
    medians.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let lo = ((iters as f64 * alpha).floor() as usize).min(iters - 1);
    let hi = (((iters as f64) * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .clamp(lo, iters - 1);
    (medians[lo], medians[hi])
}

/// Outcome of a two-sided Mann-Whitney U test over two raw sample
/// vectors.
#[derive(Clone, Copy, Debug)]
pub struct MannWhitney {
    /// The test statistic `min(U1, U2)`.
    pub u: f64,
    /// Tie-corrected, continuity-corrected normal approximation score.
    pub z: f64,
    /// Two-sided p-value under the normal approximation. Small sample
    /// counts bound it away from zero (n1 = n2 = 3 cannot reach 0.05),
    /// which is why the sentinel also consults bootstrap intervals.
    pub p: f64,
}

/// Two-sided Mann-Whitney U test: does one sample tend to produce larger
/// values than the other? Rank-based, so robust to the heavy right tail
/// benchmark timings have. Ties receive average ranks and the variance
/// uses the standard tie correction. Empty inputs and all-tied inputs
/// report `p = 1.0`.
pub fn mann_whitney(xs: &[f64], ys: &[f64]) -> MannWhitney {
    let (n1, n2) = (xs.len(), ys.len());
    if n1 == 0 || n2 == 0 {
        return MannWhitney {
            u: 0.0,
            z: 0.0,
            p: 1.0,
        };
    }
    // Pool, sort, assign average ranks to tie runs.
    let mut pooled: Vec<(f64, bool)> = xs
        .iter()
        .map(|&v| (v, true))
        .chain(ys.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n = n1 + n2;
    let mut rank_sum_x = 0.0f64;
    let mut tie_term = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let run = (j - i) as f64;
        // Ranks are 1-based: positions i..j share the average rank.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for item in &pooled[i..j] {
            if item.1 {
                rank_sum_x += avg_rank;
            }
        }
        tie_term += run * run * run - run;
        i = j;
    }
    let u1 = rank_sum_x - (n1 * (n1 + 1)) as f64 / 2.0;
    let u2 = (n1 * n2) as f64 - u1;
    let u = u1.min(u2);
    let mean_u = (n1 * n2) as f64 / 2.0;
    let nf = n as f64;
    let var = (n1 * n2) as f64 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0).max(1.0)));
    if var <= 0.0 {
        // Every observation tied: the distributions are indistinguishable.
        return MannWhitney { u, z: 0.0, p: 1.0 };
    }
    // Continuity correction pulls |z| toward zero by half a rank unit.
    let z = (u - mean_u + 0.5) / var.sqrt();
    let p = (2.0 * normal_cdf(-z.abs())).min(1.0);
    MannWhitney { u, z, p }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far below any decision threshold
/// the sentinel uses).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = sign * (1.0 - poly * (-x * x).exp());
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_basic() {
        // 100M + 900M tuples in 1 s => 1000 M tuples/s.
        let t = throughput_mtps(100_000_000, 900_000_000, Duration::from_secs(1));
        assert!((t - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ns_per_tuple_basic() {
        let v = ns_per_tuple(1_000_000, Duration::from_millis(1));
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn stddev_constant_is_zero() {
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(6.0) > 0.999999);
    }

    #[test]
    fn mann_whitney_fully_separated() {
        // R1 = 6, U1 = 0, U2 = 9; z = (0 - 4.5 + 0.5)/sqrt(5.25).
        let mw = mann_whitney(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(mw.u, 0.0);
        assert!((mw.z - (-4.0 / 5.25f64.sqrt())).abs() < 1e-9);
        assert!((mw.p - 0.0809).abs() < 5e-3, "p = {}", mw.p);
    }

    #[test]
    fn mann_whitney_tie_handling() {
        // Pooled [1, 2,2,2, 3,3,3, 4]: the 2-run gets avg rank 3, the
        // 3-run avg rank 6. R1 = 1 + 3 + 3 + 6 = 13, U = min(3, 13) = 3.
        // Tie correction: sum(t^3 - t) = 24 + 24 = 48 over n = 8, so
        // var = (16/12) * (9 - 48/56) and p ≈ 0.172.
        let mw = mann_whitney(&[1.0, 2.0, 2.0, 3.0], &[2.0, 3.0, 3.0, 4.0]);
        assert_eq!(mw.u, 3.0);
        assert!((mw.p - 0.172).abs() < 5e-3, "p = {}", mw.p);
    }

    #[test]
    fn mann_whitney_degenerate_inputs() {
        // Identical samples: no evidence of a shift.
        let mw = mann_whitney(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert!(mw.p > 0.5, "p = {}", mw.p);
        // Every observation tied: variance collapses, p pegs at 1.
        let mw = mann_whitney(&[5.0, 5.0], &[5.0, 5.0]);
        assert_eq!(mw.p, 1.0);
        // Empty side: no test possible.
        assert_eq!(mann_whitney(&[], &[1.0]).p, 1.0);
    }

    #[test]
    fn bootstrap_ci_deterministic_and_ordered() {
        let xs = [1.0, 1.2, 0.9, 1.1, 1.05, 0.95, 1.15];
        let a = bootstrap_median_ci(&xs, 2000, 0.95, 42);
        let b = bootstrap_median_ci(&xs, 2000, 0.95, 42);
        assert_eq!(a, b, "same seed, same interval");
        assert!(a.0 <= a.1);
        // The sample median lies inside its own bootstrap interval.
        let m = median(&xs);
        assert!(a.0 <= m && m <= a.1, "{a:?} should contain {m}");
    }

    #[test]
    fn bootstrap_ci_degenerate_inputs() {
        assert_eq!(bootstrap_median_ci(&[], 100, 0.95, 1), (0.0, 0.0));
        assert_eq!(bootstrap_median_ci(&[7.0], 100, 0.95, 1), (7.0, 7.0));
        assert_eq!(
            bootstrap_median_ci(&[3.0, 3.0, 3.0, 3.0], 100, 0.95, 1),
            (3.0, 3.0)
        );
    }

    #[test]
    fn percentile_interpolates_and_agrees_with_median() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), median(&xs));
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
        let odd = [10.0, 30.0, 20.0];
        assert_eq!(percentile(&odd, 0.5), 20.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[5.0], 0.999), 5.0);
    }

    #[test]
    fn percentiles_agree_with_percentile() {
        let xs = [4.0, 1.0, 3.0, 2.0, 9.5, 0.25, 7.0];
        let ps = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let batch = percentiles(&xs, &ps);
        for (p, got) in ps.iter().zip(batch.iter()) {
            assert_eq!(*got, percentile(&xs, *p), "p={p}");
        }
        assert_eq!(percentiles(&[], &ps), vec![0.0; ps.len()]);
        assert_eq!(percentiles(&xs, &[]), Vec::<f64>::new());
    }

    #[test]
    fn bootstrap_ci_separates_a_2x_shift() {
        let fast = [1.0, 1.1, 1.05];
        let slow: Vec<f64> = fast.iter().map(|x| x * 2.0).collect();
        let ci_fast = bootstrap_median_ci(&fast, 2000, 0.95, 7);
        let ci_slow = bootstrap_median_ci(&slow, 2000, 0.95, 7);
        assert!(
            ci_slow.0 > ci_fast.1,
            "2x-shifted intervals must be disjoint: {ci_fast:?} vs {ci_slow:?}"
        );
    }
}
