//! Tiny descriptive-statistics helpers for the experiment harness
//! (median-of-repeats reporting, throughput conversion).

use std::time::Duration;

/// Throughput in the paper's metric: `(|R| + |S|) / runtime`, in million
/// input tuples per second. (The study deliberately uses the
/// selectivity-independent *input* definition from Lang et al., not the
/// output-tuple definition from Balkesen et al.)
#[inline]
pub fn throughput_mtps(r_len: usize, s_len: usize, runtime: Duration) -> f64 {
    let secs = runtime.as_secs_f64();
    if secs == 0.0 {
        return f64::INFINITY;
    }
    (r_len + s_len) as f64 / secs / 1e6
}

/// Average time per processed input tuple in nanoseconds (Figure 9/11 metric).
#[inline]
pub fn ns_per_tuple(tuples: usize, runtime: Duration) -> f64 {
    if tuples == 0 {
        return 0.0;
    }
    runtime.as_nanos() as f64 / tuples as f64
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (sorts a copy).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_basic() {
        // 100M + 900M tuples in 1 s => 1000 M tuples/s.
        let t = throughput_mtps(100_000_000, 900_000_000, Duration::from_secs(1));
        assert!((t - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ns_per_tuple_basic() {
        let v = ns_per_tuple(1_000_000, Duration::from_millis(1));
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn stddev_constant_is_zero() {
        assert_eq!(stddev(&[5.0, 5.0, 5.0]), 0.0);
    }
}
