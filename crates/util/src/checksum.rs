//! Order-independent join-result checksums.
//!
//! Thirteen algorithms must produce the *same multiset* of join matches.
//! Materializing and sorting gigabytes of output to compare would dominate
//! runtime, so — like the original join codes, which validate via a
//! result-count + checksum — we fold each match into an order-independent
//! accumulator that is (practically) collision-resistant for our workloads:
//! a commutative sum of a strong per-match mix.

use crate::tuple::{Key, Payload};

/// Accumulator for join matches. Combine per-thread accumulators with
/// [`JoinChecksum::merge`]; equality of `(count, digest)` is the
/// verification criterion used by all tests.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinChecksum {
    pub count: u64,
    pub digest: u64,
}

#[inline]
fn mix(x: u64) -> u64 {
    // SplitMix64 finalizer: full-avalanche 64-bit mix.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JoinChecksum {
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one join match: key plus both payloads (row ids).
    #[inline]
    pub fn add(&mut self, key: Key, build_payload: Payload, probe_payload: Payload) {
        self.count += 1;
        let token = (key as u64) ^ ((build_payload as u64) << 20) ^ ((probe_payload as u64) << 40);
        self.digest = self.digest.wrapping_add(mix(token));
    }

    /// Merge another (e.g. per-thread) accumulator into this one.
    #[inline]
    pub fn merge(&mut self, other: JoinChecksum) {
        self.count += other.count;
        self.digest = self.digest.wrapping_add(other.digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_independent() {
        let mut a = JoinChecksum::new();
        a.add(1, 2, 3);
        a.add(4, 5, 6);
        let mut b = JoinChecksum::new();
        b.add(4, 5, 6);
        b.add(1, 2, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_to_payloads() {
        let mut a = JoinChecksum::new();
        a.add(1, 2, 3);
        let mut b = JoinChecksum::new();
        b.add(1, 3, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut whole = JoinChecksum::new();
        for i in 0..100 {
            whole.add(i, i + 1, i + 2);
        }
        let mut left = JoinChecksum::new();
        let mut right = JoinChecksum::new();
        for i in 0..50 {
            left.add(i, i + 1, i + 2);
        }
        for i in 50..100 {
            right.add(i, i + 1, i + 2);
        }
        left.merge(right);
        assert_eq!(whole, left);
    }

    #[test]
    fn multiset_sensitivity() {
        // {x, x} must differ from {x}: counts differ even though a XOR
        // digest would cancel; additive digest also differs.
        let mut a = JoinChecksum::new();
        a.add(7, 7, 7);
        a.add(7, 7, 7);
        let mut b = JoinChecksum::new();
        b.add(7, 7, 7);
        assert_ne!(a, b);
    }
}
