//! Loser-tree k-way merge.
//!
//! Merging k sorted runs in one pass reads and writes each tuple once —
//! the "multi-way merging to save memory bandwidth" of MWAY — instead of
//! `ceil(log2 k)` binary passes. The tournament (loser) tree does one
//! comparison per level per emitted element.

/// A k-way merging iterator over sorted `u64` runs.
pub struct LoserTree<'a> {
    runs: Vec<&'a [u64]>,
    /// Cursor into each run.
    pos: Vec<usize>,
    /// Internal nodes hold the *loser* run index; `tree[0]` the winner.
    tree: Vec<usize>,
    /// Number of leaves (power of two ≥ runs).
    k: usize,
    remaining: usize,
}

const EXHAUSTED: u64 = u64::MAX;

impl<'a> LoserTree<'a> {
    pub fn new(runs: Vec<&'a [u64]>) -> Self {
        let remaining = runs.iter().map(|r| r.len()).sum();
        let k = runs.len().max(1).next_power_of_two();
        let mut lt = LoserTree {
            pos: vec![0; runs.len()],
            runs,
            tree: vec![usize::MAX; k],
            k,
            remaining,
        };
        lt.build();
        lt
    }

    #[inline]
    fn key_of(&self, run: usize) -> u64 {
        if run >= self.runs.len() {
            return EXHAUSTED;
        }
        match self.runs[run].get(self.pos[run]) {
            Some(&v) => v,
            // Exhausted runs sort last; ties with a real u64::MAX value
            // are fine because `remaining` bounds the number of pops.
            None => EXHAUSTED,
        }
    }

    /// Initial tournament.
    fn build(&mut self) {
        // Play every leaf pair up the tree.
        let mut winners: Vec<usize> = (0..self.k).collect();
        let mut level = self.k;
        while level > 1 {
            level /= 2;
            for i in 0..level {
                let a = winners[2 * i];
                let b = winners[2 * i + 1];
                let (win, lose) = if self.key_of(a) <= self.key_of(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                self.tree[level + i] = lose;
                winners[i] = win;
            }
        }
        self.tree[0] = winners[0];
    }

    /// Replay the path from the winner's leaf to the root after advancing.
    fn replay(&mut self) {
        let mut winner = self.tree[0];
        let mut node = (self.k + winner) / 2;
        while node != 0 {
            let challenger = self.tree[node];
            if self.key_of(challenger) < self.key_of(winner) {
                self.tree[node] = winner;
                winner = challenger;
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }
}

impl Iterator for LoserTree<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let winner = self.tree[0];
        let v = self.key_of(winner);
        self.pos[winner] += 1;
        self.remaining -= 1;
        self.replay();
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for LoserTree<'_> {}

/// Merge `runs` into a fresh vector.
pub fn merge_runs(runs: Vec<&[u64]>) -> Vec<u64> {
    let lt = LoserTree::new(runs);
    let mut out = Vec::with_capacity(lt.len());
    out.extend(lt);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::rng::Xoshiro256;

    #[test]
    fn merges_simple_runs() {
        let a = [1u64, 4, 7];
        let b = [2u64, 5, 8];
        let c = [3u64, 6, 9];
        assert_eq!(merge_runs(vec![&a, &b, &c]), (1..=9u64).collect::<Vec<_>>());
    }

    #[test]
    fn handles_non_power_of_two_run_counts() {
        for k in 1usize..=9 {
            let mut rng = Xoshiro256::new(k as u64);
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let n = (rng.next_u64() % 50) as usize;
                    let mut r: Vec<u64> = (0..n).map(|_| rng.next_u64() % 1000).collect();
                    r.sort_unstable();
                    r
                })
                .collect();
            let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
            expect.sort_unstable();
            let got = merge_runs(runs.iter().map(|r| r.as_slice()).collect());
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn empty_runs_and_empty_input() {
        assert_eq!(merge_runs(vec![]), Vec::<u64>::new());
        let empty: &[u64] = &[];
        let a = [1u64, 2];
        assert_eq!(merge_runs(vec![empty, &a, empty]), vec![1, 2]);
    }

    #[test]
    fn duplicates_preserved() {
        let a = [5u64, 5, 5];
        let b = [5u64, 5];
        assert_eq!(merge_runs(vec![&a, &b]), vec![5; 5]);
    }

    #[test]
    fn max_values_survive() {
        // Real u64::MAX data must not be confused with the exhausted
        // sentinel thanks to the `remaining` counter.
        let a = [1u64, u64::MAX];
        let b = [u64::MAX];
        assert_eq!(merge_runs(vec![&a, &b]), vec![1, u64::MAX, u64::MAX]);
    }

    #[test]
    fn size_hint_exact() {
        let a = [1u64, 3];
        let b = [2u64];
        let lt = LoserTree::new(vec![&a, &b]);
        assert_eq!(lt.len(), 3);
    }

    #[test]
    fn large_randomized_merge() {
        let mut rng = Xoshiro256::new(77);
        let runs: Vec<Vec<u64>> = (0..16)
            .map(|_| {
                let n = 1000 + (rng.next_u64() % 1000) as usize;
                let mut r: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
                r.sort_unstable();
                r
            })
            .collect();
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        let got = merge_runs(runs.iter().map(|r| r.as_slice()).collect());
        assert_eq!(got, expect);
    }
}
