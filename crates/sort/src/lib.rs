//! Sorting substrate for the multi-way sort-merge join (MWAY).
//!
//! Balkesen et al.'s m-way join sorts with AVX bitonic sort/merge
//! networks and combines runs with a bandwidth-saving multiway merge.
//! This crate reproduces that structure portably:
//!
//! * [`network`] — Batcher odd-even sorting networks over packed
//!   `u64` tuples (key in the high 32 bits, so integer comparison orders
//!   by key). Branch-free min/max compare-exchange pairs are exactly what
//!   the SIMD versions vectorize; LLVM auto-vectorizes these.
//! * [`mergesort`] — run formation with the networks + bottom-up merging.
//! * [`multiway`] — a loser-tree k-way merge that replaces `log k` binary
//!   merge passes over DRAM with a single pass.
//!
//! Tuples are packed with [`mmjoin_util::Tuple::pack`].

pub mod mergesort;
pub mod multiway;
pub mod network;

pub use mergesort::sort_packed;
pub use multiway::LoserTree;
