//! Run-formation + bottom-up mergesort over packed tuples.
//!
//! MWAY sorts each partition independently: form sorted runs of
//! [`RUN`] elements with the sorting network, then merge pairs of runs
//! bottom-up (the portable equivalent of the AVX merge kernels). The
//! scratch buffer is caller-provided so repeated sorts reuse one
//! allocation.

use mmjoin_util::alloc::AlignedVec;

use crate::network::sort8;
pub use crate::network::sort_network as sort_block_network;

/// Network run length for run formation.
const RUN: usize = 8;

/// Sort `data` ascending. `scratch` is resized as needed and clobbered.
pub fn sort_packed(data: &mut [u64], scratch: &mut AlignedVec<u64>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Run formation with the 8-element network; the tail run (< 8) uses a
    // tiny insertion sort.
    let mut i = 0;
    while i + RUN <= n {
        sort8(&mut data[i..i + RUN]);
        i += RUN;
    }
    insertion_sort(&mut data[i..]);

    // Bottom-up merge passes, ping-ponging between data and scratch.
    scratch.clear();
    scratch.resize(n, 0);
    let mut width = RUN;
    let mut src_is_data = true;
    while width < n {
        {
            let (src, dst): (&[u64], &mut [u64]) = if src_is_data {
                (&*data, scratch.as_mut_slice())
            } else {
                (scratch.as_slice(), data)
            };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                merge_into(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi]);
                lo = hi;
            }
        }
        src_is_data = !src_is_data;
        width *= 2;
    }
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

/// Two-pointer merge of sorted `a` and `b` into `out`.
#[inline]
fn merge_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out[k] = a[i];
            i += 1;
        } else {
            out[k] = b[j];
            j += 1;
        }
        k += 1;
    }
    out[k..k + a.len() - i].copy_from_slice(&a[i..]);
    k += a.len() - i;
    out[k..].copy_from_slice(&b[j..]);
}

#[inline]
fn insertion_sort(d: &mut [u64]) {
    for i in 1..d.len() {
        let v = d[i];
        let mut j = i;
        while j > 0 && d[j - 1] > v {
            d[j] = d[j - 1];
            j -= 1;
        }
        d[j] = v;
    }
}

/// Convenience: sort a fresh scratch.
pub fn sort_packed_alloc(data: &mut [u64]) {
    let mut scratch = AlignedVec::new();
    sort_packed(data, &mut scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::rng::Xoshiro256;

    fn check(n: usize, seed: u64) {
        let mut rng = Xoshiro256::new(seed);
        let mut d: Vec<u64> = (0..n).map(|_| rng.next_u64() % 10_000).collect();
        let mut expect = d.clone();
        expect.sort_unstable();
        sort_packed_alloc(&mut d);
        assert_eq!(d, expect, "n={n}");
    }

    #[test]
    fn sorts_many_sizes() {
        for n in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1000, 4097] {
            check(n, n as u64 + 1);
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        for n in [100usize, 1000] {
            // Descending.
            let mut d: Vec<u64> = (0..n as u64).rev().collect();
            sort_packed_alloc(&mut d);
            assert_eq!(d, (0..n as u64).collect::<Vec<_>>());
            // All equal.
            let mut d = vec![7u64; n];
            sort_packed_alloc(&mut d);
            assert!(d.iter().all(|&x| x == 7));
            // Sawtooth.
            let mut d: Vec<u64> = (0..n as u64).map(|i| i % 10).collect();
            let mut e = d.clone();
            e.sort_unstable();
            sort_packed_alloc(&mut d);
            assert_eq!(d, e);
        }
    }

    #[test]
    fn scratch_reuse_is_safe() {
        let mut scratch = AlignedVec::new();
        for seed in 0..20u64 {
            let mut rng = Xoshiro256::new(seed);
            let n = (rng.next_u64() % 500) as usize;
            let mut d: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut e = d.clone();
            e.sort_unstable();
            sort_packed(&mut d, &mut scratch);
            assert_eq!(d, e);
        }
    }

    #[test]
    fn merge_into_edges() {
        let mut out = vec![0u64; 3];
        merge_into(&[], &[1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        merge_into(&[1, 2, 3], &[], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
