//! Batcher odd-even merge-exchange sorting networks.
//!
//! Sorting networks execute a fixed, data-independent sequence of
//! compare-exchange operations — the property that makes them
//! vectorizable (the original MWAY uses AVX bitonic networks; the
//! network *structure* is what matters for the algorithm, and LLVM turns
//! these branch-free min/max pairs into SIMD on its own).
//!
//! The 0-1 principle guarantees correctness: a comparator network that
//! sorts all 0-1 sequences sorts all sequences; the tests exhaustively
//! verify all 2^n 0-1 inputs for n ≤ 16.

/// Branch-free compare-exchange: after the call `data[i] <= data[j]`.
#[inline(always)]
fn cmpx(data: &mut [u64], i: usize, j: usize) {
    let a = data[i];
    let b = data[j];
    let lo = a.min(b);
    let hi = a.max(b);
    data[i] = lo;
    data[j] = hi;
}

/// Comparator pairs of Batcher's odd-even merge-exchange network for a
/// power-of-two size `n`.
pub fn batcher_pairs(n: usize) -> Vec<(usize, usize)> {
    assert!(n.is_power_of_two(), "network size must be a power of two");
    let mut pairs = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j <= n - 1 - k {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (p * 2) == (i + j + k) / (p * 2) {
                        pairs.push((i + j, i + j + k));
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
    pairs
}

/// Sort a power-of-two-sized slice with Batcher's network.
#[inline]
pub fn sort_network(data: &mut [u64]) {
    match data.len() {
        0 | 1 => {}
        4 => sort4(data),
        8 => sort8(data),
        n => {
            for (i, j) in batcher_pairs(n) {
                cmpx(data, i, j);
            }
        }
    }
}

/// Hand-unrolled optimal 4-element network (5 comparators).
#[inline(always)]
pub fn sort4(d: &mut [u64]) {
    debug_assert_eq!(d.len(), 4);
    cmpx(d, 0, 1);
    cmpx(d, 2, 3);
    cmpx(d, 0, 2);
    cmpx(d, 1, 3);
    cmpx(d, 1, 2);
}

/// Hand-unrolled optimal 8-element network (19 comparators).
#[inline(always)]
pub fn sort8(d: &mut [u64]) {
    debug_assert_eq!(d.len(), 8);
    cmpx(d, 0, 1);
    cmpx(d, 2, 3);
    cmpx(d, 4, 5);
    cmpx(d, 6, 7);
    cmpx(d, 0, 2);
    cmpx(d, 1, 3);
    cmpx(d, 4, 6);
    cmpx(d, 5, 7);
    cmpx(d, 1, 2);
    cmpx(d, 5, 6);
    cmpx(d, 0, 4);
    cmpx(d, 3, 7);
    cmpx(d, 1, 5);
    cmpx(d, 2, 6);
    cmpx(d, 1, 4);
    cmpx(d, 3, 6);
    cmpx(d, 2, 4);
    cmpx(d, 3, 5);
    cmpx(d, 3, 4);
}

/// Bitonic merge network: merges two sorted halves of `data` in place.
/// `data.len()` must be a power of two.
pub fn bitonic_merge(data: &mut [u64]) {
    let n = data.len();
    assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Reverse the second half to form a bitonic sequence, then run the
    // bitonic merger.
    data[n / 2..].reverse();
    let mut k = n / 2;
    while k >= 1 {
        for i in 0..n {
            if i & k == 0 {
                cmpx(data, i, i | k);
            }
        }
        k /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(d: &[u64]) -> bool {
        d.windows(2).all(|w| w[0] <= w[1])
    }

    /// 0-1 principle: exhaustively verify all binary inputs.
    fn zero_one_check(n: usize, sorter: impl Fn(&mut [u64])) {
        for bits in 0u32..(1 << n) {
            let mut d: Vec<u64> = (0..n).map(|i| ((bits >> i) & 1) as u64).collect();
            sorter(&mut d);
            assert!(is_sorted(&d), "n={n} bits={bits:b} -> {d:?}");
        }
    }

    #[test]
    fn sort4_zero_one_principle() {
        zero_one_check(4, sort4);
    }

    #[test]
    fn sort8_zero_one_principle() {
        zero_one_check(8, sort8);
    }

    #[test]
    fn batcher16_zero_one_principle() {
        zero_one_check(16, sort_network);
    }

    #[test]
    fn batcher32_random() {
        let mut rng = mmjoin_util::rng::Xoshiro256::new(9);
        for _ in 0..200 {
            let mut d: Vec<u64> = (0..32).map(|_| rng.next_u64() % 100).collect();
            let mut expect = d.clone();
            expect.sort_unstable();
            sort_network(&mut d);
            assert_eq!(d, expect);
        }
    }

    #[test]
    fn bitonic_merge_two_sorted_halves() {
        let mut rng = mmjoin_util::rng::Xoshiro256::new(10);
        for n in [2usize, 4, 8, 16, 64] {
            for _ in 0..50 {
                let mut d: Vec<u64> = (0..n).map(|_| rng.next_u64() % 50).collect();
                d[..n / 2].sort_unstable();
                d[n / 2..].sort_unstable();
                let mut expect = d.clone();
                expect.sort_unstable();
                bitonic_merge(&mut d);
                assert_eq!(d, expect, "n={n}");
            }
        }
    }

    #[test]
    fn networks_are_stable_on_equal_keys_by_value() {
        // Packed tuples with equal keys but different payloads still sort
        // deterministically (payload is in the low bits of the u64).
        let mut d = vec![
            (5u64 << 32) | 3,
            (5u64 << 32) | 1,
            (2u64 << 32) | 9,
            (5u64 << 32) | 2,
        ];
        sort4(&mut d);
        assert_eq!(
            d,
            vec![
                (2u64 << 32) | 9,
                (5u64 << 32) | 1,
                (5u64 << 32) | 2,
                (5u64 << 32) | 3
            ]
        );
    }
}
