//! Co-partition task queues and scheduling orders (Section 6.2).
//!
//! After partitioning, the co-partition joins are independent tasks pulled
//! from a shared queue. The original PR* code inserts partitions in
//! ascending index order — but partition indices correlate with virtual
//! addresses, and the interleaved/chunked allocation puts consecutive
//! blocks of partitions on the *same* NUMA node. With 60 threads and
//! 16384 partitions, the first ~274 tasks all read from node 0: one
//! memory controller serves everyone while three idle (Figure 6, PRO).
//!
//! The *iS variants fix this by inserting tasks **round-robin over
//! nodes**, which is [`ScheduleOrder::NumaRoundRobin`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Order in which co-partition tasks enter the queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScheduleOrder {
    /// Ascending partition index (the original PR* behaviour).
    Sequential,
    /// One partition from each NUMA node's block in turn (the improved
    /// scheduling of PROiS/PRLiS/PRAiS).
    NumaRoundRobin { nodes: usize },
}

/// NUMA node that partition `p` of `parts` total lives on under the
/// study's block allocation (partitions are address-ordered and memory is
/// distributed over nodes in equal contiguous shares).
#[inline]
pub fn node_of_partition(p: usize, parts: usize, nodes: usize) -> usize {
    debug_assert!(p < parts);
    (p * nodes / parts.max(1)).min(nodes - 1)
}

/// Materialize the queue insertion order for `parts` partitions.
pub fn task_order(parts: usize, order: ScheduleOrder) -> Vec<usize> {
    match order {
        ScheduleOrder::Sequential => (0..parts).collect(),
        ScheduleOrder::NumaRoundRobin { nodes } => {
            let nodes = nodes.max(1);
            // Bucket partitions by home node (preserving index order),
            // then emit one per node in turn.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for p in 0..parts {
                buckets[node_of_partition(p, parts, nodes)].push(p);
            }
            let mut out = Vec::with_capacity(parts);
            let longest = buckets.iter().map(Vec::len).max().unwrap_or(0);
            for i in 0..longest {
                for b in &buckets {
                    if let Some(&p) = b.get(i) {
                        out.push(p);
                    }
                }
            }
            out
        }
    }
}

/// A multi-consumer task queue over a prebuilt order. Threads `pop` until
/// empty; an atomic cursor makes this wait-free.
pub struct ConcurrentTaskQueue {
    order: Vec<usize>,
    next: AtomicUsize,
}

impl ConcurrentTaskQueue {
    pub fn new(order: Vec<usize>) -> Self {
        ConcurrentTaskQueue {
            order,
            next: AtomicUsize::new(0),
        }
    }

    /// Take the next task, or `None` when drained.
    #[inline]
    pub fn pop(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.order.get(i).copied()
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_order() {
        assert_eq!(
            task_order(5, ScheduleOrder::Sequential),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn round_robin_alternates_nodes() {
        // 8 partitions, 4 nodes: blocks [0,1][2,3][4,5][6,7].
        let order = task_order(8, ScheduleOrder::NumaRoundRobin { nodes: 4 });
        assert_eq!(order, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn round_robin_is_a_permutation() {
        for parts in [1usize, 7, 64, 1000] {
            for nodes in [1usize, 2, 4, 8] {
                let mut order = task_order(parts, ScheduleOrder::NumaRoundRobin { nodes });
                order.sort_unstable();
                assert_eq!(order, (0..parts).collect::<Vec<_>>(), "{parts}/{nodes}");
            }
        }
    }

    #[test]
    fn node_blocks_are_contiguous() {
        let parts = 100;
        let nodes = 4;
        let mut prev = 0;
        for p in 0..parts {
            let n = node_of_partition(p, parts, nodes);
            assert!(n >= prev, "node ids nondecreasing in address order");
            prev = n;
        }
        assert_eq!(node_of_partition(0, parts, nodes), 0);
        assert_eq!(node_of_partition(parts - 1, parts, nodes), nodes - 1);
    }

    #[test]
    fn queue_hands_out_each_task_once() {
        let q = ConcurrentTaskQueue::new(task_order(1000, ScheduleOrder::Sequential));
        let seen: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(t) = q.pop() {
                            mine.push(t);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = seen.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn first_tasks_of_round_robin_cover_all_nodes() {
        let order = task_order(16384, ScheduleOrder::NumaRoundRobin { nodes: 4 });
        let nodes: std::collections::HashSet<usize> = order[..4]
            .iter()
            .map(|&p| node_of_partition(p, 16384, 4))
            .collect();
        assert_eq!(nodes.len(), 4, "first 4 tasks hit 4 distinct nodes");
        // While sequential's first 4 tasks all hit node 0.
        let seq = task_order(16384, ScheduleOrder::Sequential);
        assert!(seq[..4]
            .iter()
            .all(|&p| node_of_partition(p, 16384, 4) == 0));
    }
}
