//! Histograms and prefix sums — phase (1) and (2) of Figure 4(a).

use mmjoin_util::tuple::Tuple;

use crate::radix::RadixFn;

/// Count tuples per partition.
pub fn histogram(tuples: &[Tuple], f: RadixFn) -> Vec<usize> {
    let mut h = vec![0usize; f.fanout()];
    for t in tuples {
        h[f.part(t.key)] += 1;
    }
    h
}

/// Exclusive prefix sum; returns offsets of length `h.len() + 1`, with the
/// total in the last slot.
pub fn prefix_sum(h: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(h.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in h {
        acc += c;
        out.push(acc);
    }
    out
}

/// Phase (2) of PRO: merge per-thread local histograms into per-thread,
/// per-partition *output cursors* into one contiguous buffer.
///
/// Output layout (identical to the original code): partitions are laid
/// out in index order; within a partition, thread 0's tuples precede
/// thread 1's, etc. Returns `(dst[thread][part], part_offsets)` where
/// `part_offsets` has length `parts + 1`.
pub fn global_offsets(locals: &[Vec<usize>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    assert!(!locals.is_empty());
    let parts = locals[0].len();
    let mut part_totals = vec![0usize; parts];
    for l in locals {
        debug_assert_eq!(l.len(), parts);
        for (p, &c) in l.iter().enumerate() {
            part_totals[p] += c;
        }
    }
    let part_offsets = prefix_sum(&part_totals);
    let mut dst = vec![vec![0usize; parts]; locals.len()];
    for p in 0..parts {
        let mut cursor = part_offsets[p];
        for (t, l) in locals.iter().enumerate() {
            dst[t][p] = cursor;
            cursor += l[p];
        }
        debug_assert_eq!(cursor, part_offsets[p + 1]);
    }
    (dst, part_offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(k: u32) -> Tuple {
        Tuple::new(k, 0)
    }

    #[test]
    fn histogram_counts() {
        let ts: Vec<Tuple> = [0u32, 1, 2, 3, 4, 5, 6, 7, 8]
            .iter()
            .map(|&k| tup(k))
            .collect();
        let h = histogram(&ts, RadixFn::new(2));
        assert_eq!(h, vec![3, 2, 2, 2]); // keys 0,4,8 | 1,5 | 2,6 | 3,7
    }

    #[test]
    fn prefix_sum_shape() {
        assert_eq!(prefix_sum(&[3, 0, 2]), vec![0, 3, 3, 5]);
        assert_eq!(prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn global_offsets_interleave_threads_within_partition() {
        // Two threads, two partitions.
        let locals = vec![vec![2usize, 1], vec![3, 4]];
        let (dst, offs) = global_offsets(&locals);
        assert_eq!(offs, vec![0, 5, 10]);
        // Partition 0: thread0 at 0 (2 tuples), thread1 at 2 (3 tuples).
        assert_eq!(dst[0][0], 0);
        assert_eq!(dst[1][0], 2);
        // Partition 1 starts at 5: thread0 at 5 (1), thread1 at 6 (4).
        assert_eq!(dst[0][1], 5);
        assert_eq!(dst[1][1], 6);
    }

    #[test]
    fn global_offsets_single_thread_is_prefix_sum() {
        let locals = vec![vec![1usize, 2, 3]];
        let (dst, offs) = global_offsets(&locals);
        assert_eq!(dst[0], vec![0, 1, 3]);
        assert_eq!(offs, vec![0, 1, 3, 6]);
    }
}
