//! Parallel radix partitioning into one contiguous buffer (Figure 4(a)).
//!
//! Phases: (1) every thread builds a local histogram over its input
//! chunk; (2) local histograms are merged into per-thread output cursors
//! (after this, no further synchronization is needed); (3) every thread
//! scatters its chunk to the precomputed destinations — either directly
//! (PRB) or through software write-combine buffers (PRO and friends).
//!
//! `two_pass_partition` composes two passes with the fanout split evenly,
//! the original PRB configuration (2 × 7 bits by default), where pass 2
//! processes whole pass-1 partitions pulled from a task queue.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mmjoin_util::alloc::AlignedBuf;
use mmjoin_util::pool::{broadcast_map, ScopedPool, WorkerPool};
use mmjoin_util::tuple::Tuple;
use mmjoin_util::{chunk_range, CACHE_LINE};

use crate::histogram::{global_offsets, histogram};
use crate::radix::RadixFn;
use crate::swwcb::SwwcBank;

/// How phase (3) writes tuples to their destination.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScatterMode {
    /// One write per tuple straight to the destination (PRB).
    Direct,
    /// Software write-combine buffers + cache-line flushes (PRO...).
    Swwcb,
}

/// A relation partitioned into a contiguous buffer.
pub struct PartitionedRelation {
    data: AlignedBuf<Tuple>,
    /// `parts + 1` offsets into `data`.
    offsets: Vec<usize>,
}

impl PartitionedRelation {
    #[inline]
    pub fn parts(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn partition(&self, p: usize) -> &[Tuple] {
        &self.data.as_slice()[self.offsets[p]..self.offsets[p + 1]]
    }

    #[inline]
    pub fn part_len(&self, p: usize) -> usize {
        self.offsets[p + 1] - self.offsets[p]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Starting byte offset of partition `p` — partitions are laid out in
    /// ascending virtual addresses, the property the task-scheduling
    /// analysis of Section 6.2 builds on.
    pub fn byte_offset(&self, p: usize) -> usize {
        self.offsets[p] * std::mem::size_of::<Tuple>()
    }

    pub fn all_tuples(&self) -> &[Tuple] {
        self.data.as_slice()
    }
}

/// Shared mutable output pointer for the disjoint-region scatter.
#[derive(Copy, Clone)]
struct SyncPtr(*mut Tuple);
// SAFETY: every thread writes a disjoint index range, established by the
// global-histogram phase; see scatter_chunk.
unsafe impl Sync for SyncPtr {}
unsafe impl Send for SyncPtr {}

/// Single-pass parallel radix partitioning on a caller-provided pool.
///
/// Chunk assignment is identical to the legacy scoped-thread version
/// (`active = workers.clamp(1, len)` chunks via [`chunk_range`]), so the
/// output layout is byte-for-byte the same for the same worker count.
pub fn partition_parallel_on(
    input: &[Tuple],
    f: RadixFn,
    pool: &dyn WorkerPool,
    mode: ScatterMode,
) -> PartitionedRelation {
    let active = pool.workers().clamp(1, input.len().max(1));
    // Phase 1: local histograms.
    let locals: Vec<Vec<usize>> = broadcast_map(pool, active, |t| {
        histogram(&input[chunk_range(input.len(), active, t)], f)
    });
    // Phase 2: merge into per-thread cursors.
    let (dst, offsets) = global_offsets(&locals);
    // Phase 3: scatter.
    let mut out = AlignedBuf::<Tuple>::zeroed(input.len());
    let out_ptr = SyncPtr(out.as_mut_ptr());
    let dst = &dst;
    pool.broadcast(&|t| {
        if t < active {
            let chunk = &input[chunk_range(input.len(), active, t)];
            // Copy the whole SyncPtr so the closure capture stays Sync
            // (a field capture of the raw pointer would not be).
            let out = out_ptr;
            // SAFETY: this worker's cursor ranges are disjoint from
            // every other worker's by construction of global_offsets,
            // and in-bounds because the histogram counted this chunk.
            unsafe { scatter_chunk(chunk, f, &dst[t], out.0, mode) }
        }
    });
    PartitionedRelation { data: out, offsets }
}

/// Single-pass parallel radix partitioning (legacy entry point: spawns
/// `threads` scoped threads per phase; prefer [`partition_parallel_on`]
/// with a persistent pool).
pub fn partition_parallel(
    input: &[Tuple],
    f: RadixFn,
    threads: usize,
    mode: ScatterMode,
) -> PartitionedRelation {
    partition_parallel_on(input, f, &ScopedPool::new(threads), mode)
}

/// Scatter one chunk to precomputed destinations.
///
/// # Safety
/// `cursors[p] .. cursors[p] + count(chunk, p)` must be in-bounds of `out`
/// and disjoint from every concurrent scatter.
unsafe fn scatter_chunk(
    chunk: &[Tuple],
    f: RadixFn,
    cursors: &[usize],
    out: *mut Tuple,
    mode: ScatterMode,
) {
    match mode {
        ScatterMode::Direct => {
            let mut cur = cursors.to_vec();
            for &t in chunk {
                let p = f.part(t.key);
                out.add(cur[p]).write(t);
                cur[p] += 1;
            }
        }
        ScatterMode::Swwcb => {
            let mut bank = SwwcBank::new(cursors);
            for &t in chunk {
                bank.push(f.part(t.key), t, out);
            }
            bank.flush_all(out);
        }
    }
}

/// Two-pass radix partitioning (PRB): pass 1 over the low `bits1` bits in
/// parallel over chunks; pass 2 over the next `bits2` bits, with whole
/// pass-1 partitions processed as tasks pulled from a shared queue.
///
/// The global partition id of a tuple is `p1 * 2^bits2 + p2` (region-major
/// so offsets stay address-ordered).
pub fn two_pass_partition_on(
    input: &[Tuple],
    bits1: u32,
    bits2: u32,
    pool: &dyn WorkerPool,
    mode: ScatterMode,
) -> PartitionedRelation {
    let pass1 = partition_parallel_on(input, RadixFn::new(bits1), pool, mode);
    let f2 = RadixFn::pass(bits2, bits1);
    let fan1 = 1usize << bits1;
    let fan2 = 1usize << bits2;

    // Per-pass-1-partition second-pass histograms, computed inside the
    // tasks below; offsets are derived afterwards. To keep phase (3) free
    // of synchronization we compute the histograms first (task-parallel),
    // then derive global offsets, then scatter (task-parallel again).
    let mut hists: Vec<Vec<usize>> = vec![Vec::new(); fan1];
    {
        let next = AtomicUsize::new(0);
        type HistSlot = Mutex<Vec<(usize, Vec<usize>)>>;
        let slots: Vec<HistSlot> = (0..pool.workers())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let pass1 = &pass1;
        pool.broadcast(&|w| {
            let mut mine = Vec::new();
            loop {
                let p1 = next.fetch_add(1, Ordering::Relaxed);
                if p1 >= fan1 {
                    break;
                }
                mine.push((p1, histogram(pass1.partition(p1), f2)));
            }
            *slots[w].lock().unwrap() = mine;
        });
        for slot in slots {
            for (p1, h) in slot.into_inner().unwrap() {
                hists[p1] = h;
            }
        }
    }

    // Global offsets: region-major layout.
    let mut offsets = Vec::with_capacity(fan1 * fan2 + 1);
    offsets.push(0usize);
    for h in &hists {
        debug_assert_eq!(h.len(), fan2);
        for &c in h {
            offsets.push(offsets.last().unwrap() + c);
        }
    }
    debug_assert_eq!(*offsets.last().unwrap(), input.len());

    // Pass-2 scatter, one task per pass-1 partition.
    let mut out = AlignedBuf::<Tuple>::zeroed(input.len());
    let out_ptr = SyncPtr(out.as_mut_ptr());
    {
        let next = AtomicUsize::new(0);
        let offsets = &offsets;
        let pass1 = &pass1;
        pool.broadcast(&|_| {
            // Copy the whole SyncPtr so the closure capture stays Sync.
            let out = out_ptr;
            loop {
                let p1 = next.fetch_add(1, Ordering::Relaxed);
                if p1 >= fan1 {
                    break;
                }
                let base = p1 * fan2;
                let cursors: Vec<usize> = (0..fan2).map(|p2| offsets[base + p2]).collect();
                // SAFETY: cursor ranges of distinct p1 tasks are
                // disjoint (offsets are exact counts); only one
                // task processes each p1.
                unsafe { scatter_chunk(pass1.partition(p1), f2, &cursors, out.0, mode) }
            }
        });
    }
    PartitionedRelation { data: out, offsets }
}

/// Two-pass radix partitioning (legacy entry point: scoped threads per
/// phase; prefer [`two_pass_partition_on`] with a persistent pool).
pub fn two_pass_partition(
    input: &[Tuple],
    bits1: u32,
    bits2: u32,
    threads: usize,
    mode: ScatterMode,
) -> PartitionedRelation {
    two_pass_partition_on(input, bits1, bits2, &ScopedPool::new(threads), mode)
}

/// Sanity helper shared by tests and the harness: every tuple must land
/// in the partition its radix digit names, and the output must be a
/// permutation of the input.
pub fn validate_partitioning(input: &[Tuple], pr: &PartitionedRelation, digit_bits: u32) -> bool {
    if pr.len() != input.len() {
        return false;
    }
    let full = RadixFn::new(digit_bits);
    for p in 0..pr.parts() {
        for t in pr.partition(p) {
            if full.part(t.key) != p {
                return false;
            }
        }
    }
    let mut a: Vec<u64> = input.iter().map(|t| t.pack()).collect();
    let mut b: Vec<u64> = pr.all_tuples().iter().map(|t| t.pack()).collect();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// Number of SWWCB state bytes for a given fanout — used by Figure 11's
/// analysis (all banks of all threads must fit in the shared LLC).
pub fn swwcb_state_bytes(fanout: usize, threads: usize) -> usize {
    fanout * threads * (CACHE_LINE + 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::rng::Xoshiro256;

    fn random_input(n: usize, seed: u64) -> Vec<Tuple> {
        let mut rng = Xoshiro256::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() | 1, i as u32))
            .collect()
    }

    #[test]
    fn single_pass_direct_correct() {
        let input = random_input(10_000, 1);
        for threads in [1, 2, 4, 7] {
            let pr = partition_parallel(&input, RadixFn::new(6), threads, ScatterMode::Direct);
            assert!(validate_partitioning(&input, &pr, 6), "threads={threads}");
            assert_eq!(pr.parts(), 64);
        }
    }

    #[test]
    fn single_pass_swwcb_correct() {
        let input = random_input(10_000, 2);
        for threads in [1, 3, 8] {
            let pr = partition_parallel(&input, RadixFn::new(5), threads, ScatterMode::Swwcb);
            assert!(validate_partitioning(&input, &pr, 5), "threads={threads}");
        }
    }

    #[test]
    fn swwcb_equals_direct() {
        let input = random_input(5_000, 3);
        let a = partition_parallel(&input, RadixFn::new(4), 4, ScatterMode::Direct);
        let b = partition_parallel(&input, RadixFn::new(4), 4, ScatterMode::Swwcb);
        assert_eq!(a.offsets(), b.offsets());
        // Within-partition order may differ only if thread chunking
        // differed — it doesn't, so outputs are identical.
        assert_eq!(a.all_tuples(), b.all_tuples());
    }

    #[test]
    fn two_pass_correct() {
        let input = random_input(20_000, 4);
        for threads in [1, 4] {
            let pr = two_pass_partition(&input, 4, 3, threads, ScatterMode::Direct);
            assert_eq!(pr.parts(), 128);
            assert_eq!(pr.len(), input.len());
            // Keys within a global partition share their low 7 bits...
            for p in 0..pr.parts() {
                let slice = pr.partition(p);
                if let Some(first) = slice.first() {
                    assert!(slice.iter().all(|t| t.key & 0x7F == first.key & 0x7F));
                }
            }
            // ...and the output is a permutation of the input.
            let mut a: Vec<u64> = input.iter().map(|t| t.pack()).collect();
            let mut b: Vec<u64> = pr.all_tuples().iter().map(|t| t.pack()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn two_pass_co_partitions_align_across_relations() {
        // Same global partition id must capture the same key digits in
        // both relations (the co-partition join requirement).
        let r = random_input(3_000, 5);
        let s = random_input(9_000, 6);
        let pr = two_pass_partition(&r, 3, 3, 2, ScatterMode::Swwcb);
        let ps = two_pass_partition(&s, 3, 3, 2, ScatterMode::Swwcb);
        for p in 0..64 {
            let digit_of = |t: &Tuple| (t.key & 0x3F) as usize;
            let rd: Vec<usize> = pr.partition(p).iter().map(digit_of).collect();
            let sd: Vec<usize> = ps.partition(p).iter().map(digit_of).collect();
            if let (Some(&a), Some(&b)) = (rd.first(), sd.first()) {
                assert_eq!(a, b, "partition {p}");
            }
            assert!(rd.iter().all(|&d| rd[0] == d));
            assert!(sd.iter().all(|&d| sd[0] == d));
        }
    }

    /// Differential kernel test: forced-portable vs dispatched streaming
    /// partitioning must be byte-identical (random, skewed, and
    /// duplicate-key inputs).
    #[test]
    fn forced_portable_equals_dispatched_simd() {
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let random = random_input(8_000, 11);
        let skewed: Vec<Tuple> = (0..4_000).map(|i| Tuple::new(42, i)).collect();
        let dups: Vec<Tuple> = (0..6_000).map(|i| Tuple::new((i % 97) + 1, i)).collect();
        for input in [&random, &skewed, &dups] {
            let a = with_mode(KernelMode::Portable, || {
                partition_parallel(input, RadixFn::new(5), 3, ScatterMode::Swwcb)
            });
            let b = with_mode(KernelMode::Simd, || {
                partition_parallel(input, RadixFn::new(5), 3, ScatterMode::Swwcb)
            });
            assert_eq!(a.offsets(), b.offsets());
            assert_eq!(a.all_tuples(), b.all_tuples());
        }
    }

    #[test]
    fn empty_input() {
        let pr = partition_parallel(&[], RadixFn::new(4), 4, ScatterMode::Swwcb);
        assert_eq!(pr.parts(), 16);
        assert_eq!(pr.len(), 0);
        let pr2 = two_pass_partition(&[], 2, 2, 4, ScatterMode::Direct);
        assert_eq!(pr2.parts(), 16);
    }

    #[test]
    fn skewed_single_partition() {
        // All keys identical: one partition gets everything.
        let input: Vec<Tuple> = (0..1000).map(|i| Tuple::new(42, i)).collect();
        let pr = partition_parallel(&input, RadixFn::new(4), 4, ScatterMode::Swwcb);
        assert_eq!(pr.part_len(42 & 0xF), 1000);
        assert_eq!(pr.len(), 1000);
    }

    #[test]
    fn offsets_are_monotone_addresses() {
        let input = random_input(8_000, 7);
        let pr = two_pass_partition(&input, 3, 3, 4, ScatterMode::Direct);
        assert!(pr.offsets().windows(2).all(|w| w[0] <= w[1]));
        assert!(pr.byte_offset(10) >= pr.byte_offset(9));
    }
}
