//! The radix partitioning function.
//!
//! All radix joins in the study partition on the *low bits of the key*
//! (the identity hash of Section 7.1): pass 1 uses bits `[0, b1)`, pass 2
//! bits `[b1, b1+b2)`. For dense primary keys this spreads tuples
//! perfectly evenly.

use mmjoin_util::tuple::Key;

/// A radix digit extractor: `bits` bits starting at `shift`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RadixFn {
    pub bits: u32,
    pub shift: u32,
}

impl RadixFn {
    /// Pass-1 function over the low `bits` bits.
    #[inline]
    pub fn new(bits: u32) -> Self {
        RadixFn { bits, shift: 0 }
    }

    /// Function for a subsequent pass, starting above `prev` consumed bits.
    #[inline]
    pub fn pass(bits: u32, prev_bits: u32) -> Self {
        RadixFn {
            bits,
            shift: prev_bits,
        }
    }

    /// Number of partitions this function produces.
    #[inline]
    pub fn fanout(self) -> usize {
        1usize << self.bits
    }

    /// Partition index of `key`.
    #[inline(always)]
    pub fn part(self, key: Key) -> usize {
        ((key >> self.shift) & ((1u32 << self.bits) - 1)) as usize
    }

    /// Combined fanout of a two-pass split (`self` then `second`).
    #[inline]
    pub fn combined(self, second: RadixFn) -> usize {
        self.fanout() * second.fanout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits() {
        let f = RadixFn::new(4);
        assert_eq!(f.fanout(), 16);
        assert_eq!(f.part(0b1011_0101), 0b0101);
        assert_eq!(f.part(16), 0);
    }

    #[test]
    fn second_pass_bits() {
        let f = RadixFn::pass(3, 4);
        assert_eq!(f.fanout(), 8);
        assert_eq!(f.part(0b101_0110_1111), 0b110);
    }

    #[test]
    fn dense_keys_spread_evenly() {
        let f = RadixFn::new(4);
        let mut counts = [0usize; 16];
        for k in 1..=1600u32 {
            counts[f.part(k)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn two_pass_composition_is_a_bijection_of_digits() {
        // part1 + part2<<b1 recovers the low b1+b2 bits.
        let p1 = RadixFn::new(4);
        let p2 = RadixFn::pass(3, 4);
        for k in [0u32, 1, 0x7F, 0xFF, 12345] {
            let combined = p1.part(k) | (p2.part(k) << 4);
            assert_eq!(combined, (k & 0x7F) as usize);
        }
        assert_eq!(p1.combined(p2), 128);
    }
}
