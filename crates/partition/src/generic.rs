//! Chunked radix partitioning over arbitrary (wide) tuple types.
//!
//! The study's joins move narrow `<key, rowid>` pairs and reconstruct
//! other attributes through the row id afterwards (*late*
//! materialization). Its Section 8/10 discussion points at the
//! alternative — carrying payload attributes through the partitions
//! (*early* materialization) so the join phase never follows row ids.
//! That requires partitioning records wider than 8 bytes, which this
//! module provides: the same chunk-local histogram+scatter as
//! [`crate::chunked`], generic over the record type and key extractor.
//!
//! Wide records use a plain scatter (no SWWCB): the cache-line buffer
//! trick is specific to the 8-byte tuple layout; for records of 16+
//! bytes the write-combining win shrinks proportionally anyway.

use mmjoin_util::chunk_range;
use mmjoin_util::pool::{broadcast_map, ScopedPool, WorkerPool};

use crate::histogram::prefix_sum;
use crate::radix::RadixFn;

/// One thread's locally partitioned chunk of `T`s.
pub struct GenericChunkPart<T> {
    data: Vec<T>,
    offsets: Vec<usize>,
}

impl<T> GenericChunkPart<T> {
    #[inline]
    pub fn partition(&self, p: usize) -> &[T] {
        &self.data[self.offsets[p]..self.offsets[p + 1]]
    }
}

/// Chunk-locally partitioned wide records.
pub struct GenericChunkedPartitions<T> {
    chunks: Vec<GenericChunkPart<T>>,
    parts: usize,
}

impl<T> GenericChunkedPartitions<T> {
    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    #[inline]
    pub fn chunks(&self) -> &[GenericChunkPart<T>] {
        &self.chunks
    }

    pub fn part_len(&self, p: usize) -> usize {
        self.chunks.iter().map(|c| c.partition(p).len()).sum()
    }

    /// Visit every chunk's slice of partition `p`.
    #[inline]
    pub fn for_each_slice<F: FnMut(&[T])>(&self, p: usize, mut f: F) {
        for c in &self.chunks {
            let s = c.partition(p);
            if !s.is_empty() {
                f(s);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.data.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partition `input` chunk-locally by `key(t) & mask` on a worker pool.
pub fn chunked_partition_by_on<T, K>(
    input: &[T],
    f: RadixFn,
    pool: &dyn WorkerPool,
    key: K,
) -> GenericChunkedPartitions<T>
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u32 + Send + Sync + Copy,
{
    let active = pool.workers().clamp(1, input.len().max(1));
    let chunks = broadcast_map(pool, active, |t| {
        let chunk = &input[chunk_range(input.len(), active, t)];
        partition_chunk_by(chunk, f, key)
    });
    GenericChunkedPartitions {
        chunks,
        parts: f.fanout(),
    }
}

/// Partition `input` chunk-locally by `key(t) & mask` with `threads`
/// scoped threads (legacy entry point; prefer [`chunked_partition_by_on`]).
pub fn chunked_partition_by<T, K>(
    input: &[T],
    f: RadixFn,
    threads: usize,
    key: K,
) -> GenericChunkedPartitions<T>
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u32 + Send + Sync + Copy,
{
    chunked_partition_by_on(input, f, &ScopedPool::new(threads), key)
}

fn partition_chunk_by<T: Copy, K: Fn(&T) -> u32>(
    chunk: &[T],
    f: RadixFn,
    key: K,
) -> GenericChunkPart<T> {
    let mut hist = vec![0usize; f.fanout()];
    for t in chunk {
        hist[f.part(key(t))] += 1;
    }
    let offsets = prefix_sum(&hist);
    let mut cursor = offsets[..f.fanout()].to_vec();
    // Scatter into a fresh buffer; positions are written exactly once
    // (the histogram counted them), so a plain Vec of MaybeUninit-free
    // copies via an initialized template is avoided by collecting through
    // indices on a Vec pre-sized with the first element.
    let mut data: Vec<T> = Vec::with_capacity(chunk.len());
    // SAFETY-free approach: fill with copies of chunk[0] (T: Copy), then
    // overwrite every slot. Costs one extra pass but stays entirely safe.
    if let Some(&first) = chunk.first() {
        data.resize(chunk.len(), first);
        for t in chunk {
            let p = f.part(key(t));
            data[cursor[p]] = *t;
            cursor[p] += 1;
        }
    }
    GenericChunkPart { data, offsets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Copy, Clone, Debug, PartialEq)]
    struct Wide {
        key: u32,
        a: f32,
        b: u64,
    }

    fn input(n: usize) -> Vec<Wide> {
        (0..n as u32)
            .map(|i| Wide {
                key: i * 7 + 1,
                a: i as f32,
                b: i as u64 * 3,
            })
            .collect()
    }

    #[test]
    fn wide_partitions_respect_digits() {
        let data = input(5_000);
        let f = RadixFn::new(4);
        let cp = chunked_partition_by(&data, f, 4, |w| w.key);
        assert_eq!(cp.len(), data.len());
        for p in 0..cp.parts() {
            cp.for_each_slice(p, |s| {
                assert!(s.iter().all(|w| f.part(w.key) == p));
            });
        }
    }

    #[test]
    fn wide_partitioning_is_a_permutation() {
        let data = input(3_333);
        let cp = chunked_partition_by(&data, RadixFn::new(3), 3, |w| w.key);
        let mut seen: Vec<u32> = Vec::new();
        for p in 0..cp.parts() {
            cp.for_each_slice(p, |s| seen.extend(s.iter().map(|w| w.key)));
        }
        seen.sort_unstable();
        let mut expect: Vec<u32> = data.iter().map(|w| w.key).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn payloads_travel_with_keys() {
        let data = input(1_000);
        let cp = chunked_partition_by(&data, RadixFn::new(5), 2, |w| w.key);
        for p in 0..cp.parts() {
            cp.for_each_slice(p, |s| {
                for w in s {
                    assert_eq!(w.b, ((w.key - 1) / 7) as u64 * 3);
                }
            });
        }
    }

    #[test]
    fn empty_input() {
        let cp = chunked_partition_by::<Wide, _>(&[], RadixFn::new(4), 4, |w| w.key);
        assert!(cp.is_empty());
        assert_eq!(cp.parts(), 16);
    }
}
