//! Radix partitioning — the substrate of every PR*/CPR* join.
//!
//! The crate provides the two partitioning families the paper studies:
//!
//! * [`contiguous`] — the classic parallel radix partitioning of Kim et
//!   al. / Balkesen et al.: local histograms → global histogram → every
//!   thread scatters into *one contiguous output buffer* (Figure 4(a)).
//!   Optional software write-combine buffers + streaming flushes
//!   ([`swwcb`], Algorithm 1 of the paper), one- or two-pass.
//! * [`chunked`] — this paper's CPR* partitioning (Figure 4(c)): no
//!   global histogram; every thread radix-partitions its chunk *locally*,
//!   eliminating remote writes at the price of non-contiguous partitions.
//!
//! Plus the surrounding machinery:
//!
//! * [`radix::RadixFn`] — the partitioning function (low key bits).
//! * [`histogram`] — per-chunk histograms and exclusive prefix sums.
//! * [`task`] — co-partition task queues with the sequential order used
//!   by the original code and the NUMA-round-robin order of the *iS
//!   variants (Section 6.2).
//! * [`bits`] — Equation (1): the radix-bit predictor.

pub mod bits;
pub mod chunked;
pub mod contiguous;
pub mod generic;
pub mod histogram;
pub mod radix;
pub mod swwcb;
pub mod task;

pub use bits::{predict_radix_bits, BitsInput};
pub use chunked::{chunked_partition, chunked_partition_on, ChunkedPartitions};
pub use contiguous::{
    partition_parallel, partition_parallel_on, two_pass_partition, two_pass_partition_on,
    PartitionedRelation, ScatterMode,
};
pub use generic::{chunked_partition_by, chunked_partition_by_on, GenericChunkedPartitions};
pub use radix::RadixFn;
pub use task::{task_order, ConcurrentTaskQueue, ScheduleOrder};
