//! Equation (1): predicting the optimal number of radix bits.
//!
//! Section 7.3 derives the sweet spot for the partitioning fanout: use
//! the smallest partitions whose per-partition hash table fits in L2 — as
//! long as all software write-combine buffers still fit in this thread's
//! share of the LLC; beyond that, stop at LLC-sized partitions, because
//! ballooning SWWCB state makes partitioning costs explode faster than
//! join costs shrink (Figures 9 and 11).
//!
//! ```text
//!          ⎧ log2(|R|·st / (l·L2)),    if |R|·sb·st/(L2·l) < LLCt
//! np(|R|) =⎨
//!          ⎩ log2(|R|·st / (l·LLCt)),  otherwise
//! ```

/// Inputs to the radix-bit predictor.
#[derive(Copy, Clone, Debug)]
pub struct BitsInput {
    /// |R|: build-relation cardinality in tuples.
    pub r_tuples: usize,
    /// st: bytes per tuple as stored in the per-partition hash table.
    pub tuple_bytes: usize,
    /// l: intended hash-table load factor (tables are st·|part|/l bytes).
    pub load_factor: f64,
    /// sb: SWWCB state bytes per partition (one cache line + bookkeeping).
    pub buffer_bytes: usize,
    /// L2 data cache per core, bytes.
    pub l2_bytes: usize,
    /// This thread's share of the LLC, bytes (LLC / threads-per-socket).
    pub llc_per_thread_bytes: usize,
}

impl BitsInput {
    /// The study's defaults: 8-byte tuples, 50% load factor, one cache
    /// line of buffer state, 256 KB L2.
    pub fn paper_defaults(r_tuples: usize, llc_per_thread_bytes: usize) -> Self {
        BitsInput {
            r_tuples,
            tuple_bytes: 8,
            load_factor: 0.5,
            buffer_bytes: 64 + 16,
            l2_bytes: 256 * 1024,
            llc_per_thread_bytes,
        }
    }
}

/// Equation (1). Returns the number of radix bits, clamped to `[1, 18]`
/// (the range explored by the paper's sweeps).
pub fn predict_radix_bits(input: &BitsInput) -> u32 {
    let r = input.r_tuples.max(1) as f64;
    let st = input.tuple_bytes as f64;
    let l = input.load_factor;
    let sb = input.buffer_bytes as f64;
    let l2 = input.l2_bytes as f64;
    let llct = input.llc_per_thread_bytes.max(1) as f64;

    let buffers_fit = r * sb * st / (l2 * l) < llct;
    let target = if buffers_fit {
        r * st / (l * l2)
    } else {
        r * st / (l * llct)
    };
    let np = target.log2().ceil();
    (np.max(1.0) as u32).clamp(1, 18)
}

/// Adjusted predictor for array tables over a sparse key domain
/// (Appendix C, dashed lines of Figure 17): the array over a partition has
/// `domain >> bits` slots of 4 bytes each, and must fit in L2/LLCt like a
/// hash table would. Solves for the bits that shrink the per-partition
/// array to the cache budget.
pub fn predict_radix_bits_for_domain(domain: usize, input: &BitsInput) -> u32 {
    let slot_bytes = 4.0;
    let l2 = input.l2_bytes as f64;
    let llct = input.llc_per_thread_bytes.max(1) as f64;
    let d = domain.max(1) as f64;
    // Bits so the per-partition array fits L2.
    let bits_l2 = (d * slot_bytes / l2).log2().ceil();
    let sb = input.buffer_bytes as f64;
    let buffers = 2.0f64.powf(bits_l2) * sb;
    let np = if buffers < llct {
        bits_l2
    } else {
        (d * slot_bytes / llct).log2().ceil()
    };
    (np.max(1.0) as u32).clamp(1, 18)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LLCT: usize = 30 * 1024 * 1024 / 8; // 32 threads over 4 sockets

    #[test]
    fn small_relation_uses_l2_branch() {
        // |R| = 16M tuples, 8 B: tables 128MB/0.5 => fanout over L2:
        // 16M·8/(0.5·256K) = 1024 partitions = 10 bits.
        let i = BitsInput::paper_defaults(16 << 20, LLCT);
        assert_eq!(predict_radix_bits(&i), 10);
    }

    #[test]
    fn bits_grow_one_per_doubling_until_llc_bound() {
        let mut prev = 0;
        for shift in 20..25 {
            let i = BitsInput::paper_defaults(16usize << shift, LLCT);
            let b = predict_radix_bits(&i);
            if prev != 0 {
                assert!(b == prev || b == prev + 1, "{prev} -> {b}");
            }
            prev = b;
        }
    }

    #[test]
    fn large_relation_switches_to_llc_branch() {
        // Very large |R|: the L2 branch would demand buffers far beyond
        // LLCt, so the LLC branch must cap the fanout below the L2
        // branch's answer.
        let big = BitsInput::paper_defaults(2048 << 20, LLCT);
        let l2_answer = ((big.r_tuples as f64 * 8.0) / (0.5 * 256.0 * 1024.0))
            .log2()
            .ceil() as u32;
        let predicted = predict_radix_bits(&big);
        assert!(predicted < l2_answer, "{predicted} !< {l2_answer}");
    }

    #[test]
    fn crossover_drops_bits_not_raises_them() {
        // Equation (1) is non-monotone by design: at the point where
        // SWWCB state outgrows the per-thread LLC share, it switches from
        // L2-sized to LLC-sized partitions, i.e. *fewer* bits than the L2
        // branch would pick (Figure 9(b) vs 9(d)).
        for m in [1usize, 4, 16, 64, 256, 1024, 2048] {
            let input = BitsInput::paper_defaults(m << 20, LLCT);
            let b = predict_radix_bits(&input);
            let l2_branch = ((input.r_tuples as f64 * 8.0) / (0.5 * 256.0 * 1024.0))
                .log2()
                .ceil()
                .max(1.0) as u32;
            assert!(b <= l2_branch.clamp(1, 18), "size {m}M: {b} > {l2_branch}");
        }
        // Within each branch, bits are monotone in |R|.
        let small: Vec<u32> = [1usize, 2, 4, 8]
            .iter()
            .map(|&m| predict_radix_bits(&BitsInput::paper_defaults(m << 20, LLCT)))
            .collect();
        assert!(small.windows(2).all(|w| w[0] <= w[1]), "{small:?}");
    }

    #[test]
    fn clamped_range() {
        assert_eq!(predict_radix_bits(&BitsInput::paper_defaults(1, LLCT)), 1);
        let b = predict_radix_bits(&BitsInput::paper_defaults(usize::MAX >> 8, LLCT));
        assert_eq!(b, 18);
    }

    #[test]
    fn domain_adaptive_bits_grow_with_domain() {
        let i = BitsInput::paper_defaults(16 << 20, LLCT);
        let b1 = predict_radix_bits_for_domain(16 << 20, &i);
        let b8 = predict_radix_bits_for_domain(8 * (16 << 20), &i);
        assert!(b8 > b1);
    }
}
