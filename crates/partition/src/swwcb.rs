//! Software write-combine buffers (Algorithm 1 of the paper).
//!
//! Scattering tuples to hundreds of partitions touches hundreds of pages;
//! without buffering every write risks a TLB miss. A SWWCB keeps one
//! cache line of pending tuples per partition *in cache* and flushes full
//! lines to the destination with (in the original) non-temporal stores.
//! With a buffer of `N` tuples, TLB pressure drops by a factor of `N`.
//!
//! This implementation keeps the per-partition line + output cursor and
//! flushes whole lines with `copy_nonoverlapping` (the portable stand-in
//! for `_mm_stream_si128`; the algorithmic effect the paper studies —
//! write combining — is in the buffering, which is identical).

use mmjoin_util::tuple::Tuple;
use mmjoin_util::{CACHE_LINE, TUPLES_PER_CACHELINE};

/// One cache line of buffered tuples for one target partition.
#[repr(C, align(64))]
#[derive(Copy, Clone)]
struct Line {
    tuples: [Tuple; TUPLES_PER_CACHELINE],
}

const _: () = assert!(std::mem::size_of::<Line>() == CACHE_LINE);

/// A bank of software write-combine buffers, one line per partition.
pub struct SwwcBank {
    lines: Vec<Line>,
    /// Tuples currently buffered per partition.
    fill: Vec<u8>,
    /// Output cursor (tuple index in the destination buffer) per partition.
    cursor: Vec<usize>,
}

impl SwwcBank {
    /// Create a bank for `parts` partitions with the given initial output
    /// cursors (one per partition).
    pub fn new(cursors: &[usize]) -> Self {
        SwwcBank {
            lines: vec![
                Line {
                    tuples: [Tuple::new(0, 0); TUPLES_PER_CACHELINE]
                };
                cursors.len()
            ],
            fill: vec![0u8; cursors.len()],
            cursor: cursors.to_vec(),
        }
    }

    /// Buffer one tuple for `part`, flushing a full line to `out`.
    ///
    /// # Safety
    /// `out` must be valid for writes at every cursor position this bank
    /// was initialized with, for the number of tuples that will be pushed
    /// (the caller's histogram guarantees this).
    #[inline(always)]
    pub unsafe fn push(&mut self, part: usize, t: Tuple, out: *mut Tuple) {
        let fill = self.fill[part] as usize;
        self.lines[part].tuples[fill] = t;
        if fill + 1 == TUPLES_PER_CACHELINE {
            let dst = out.add(self.cursor[part]);
            std::ptr::copy_nonoverlapping(
                self.lines[part].tuples.as_ptr(),
                dst,
                TUPLES_PER_CACHELINE,
            );
            self.cursor[part] += TUPLES_PER_CACHELINE;
            self.fill[part] = 0;
        } else {
            self.fill[part] = fill as u8 + 1;
        }
    }

    /// Flush all partially filled lines.
    ///
    /// # Safety
    /// Same contract as [`SwwcBank::push`].
    pub unsafe fn flush_all(&mut self, out: *mut Tuple) {
        for part in 0..self.lines.len() {
            let fill = self.fill[part] as usize;
            if fill > 0 {
                let dst = out.add(self.cursor[part]);
                std::ptr::copy_nonoverlapping(self.lines[part].tuples.as_ptr(), dst, fill);
                self.cursor[part] += fill;
                self.fill[part] = 0;
            }
        }
    }

    /// Current cursor of `part` (after flushes).
    pub fn cursor(&self, part: usize) -> usize {
        self.cursor[part]
    }

    /// Bytes of buffer state per partition — the quantity that must fit
    /// in the LLC for partitioning to stay fast (Section 7.3's analysis of
    /// Figure 11).
    pub const fn bytes_per_partition() -> usize {
        CACHE_LINE + std::mem::size_of::<u8>() + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_flush_exact_lines() {
        let mut out = vec![Tuple::new(0, 0); 16];
        let mut bank = SwwcBank::new(&[0, 8]);
        unsafe {
            for i in 0..8u32 {
                bank.push(0, Tuple::new(i + 1, i), out.as_mut_ptr());
            }
            for i in 0..8u32 {
                bank.push(1, Tuple::new(100 + i, i), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        for i in 0..8usize {
            assert_eq!(out[i].key, i as u32 + 1);
            assert_eq!(out[8 + i].key, 100 + i as u32);
        }
    }

    #[test]
    fn partial_lines_flush_remainder() {
        let mut out = vec![Tuple::new(0, 0); 16];
        let mut bank = SwwcBank::new(&[0, 11]);
        unsafe {
            for i in 0..11u32 {
                bank.push(0, Tuple::new(i + 1, 0), out.as_mut_ptr());
            }
            for i in 0..3u32 {
                bank.push(1, Tuple::new(200 + i, 0), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        let keys: Vec<u32> = out.iter().map(|t| t.key).collect();
        assert_eq!(&keys[..11], &(1..=11).collect::<Vec<u32>>()[..]);
        assert_eq!(&keys[11..14], &[200, 201, 202]);
        assert_eq!(bank.cursor(0), 11);
        assert_eq!(bank.cursor(1), 14);
    }

    #[test]
    fn unaligned_start_cursor() {
        // Destination region starting mid-line must still be written
        // correctly (flushes are plain copies, not aligned stores).
        let mut out = vec![Tuple::new(0, 0); 32];
        let mut bank = SwwcBank::new(&[5]);
        unsafe {
            for i in 0..20u32 {
                bank.push(0, Tuple::new(i + 1, 0), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        for i in 0..20usize {
            assert_eq!(out[5 + i].key, i as u32 + 1);
        }
        assert_eq!(out[4].key, 0);
        assert_eq!(out[25].key, 0);
    }
}
