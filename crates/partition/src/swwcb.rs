//! Software write-combine buffers (Algorithm 1 of the paper).
//!
//! Scattering tuples to hundreds of partitions touches hundreds of pages;
//! without buffering every write risks a TLB miss. A SWWCB keeps one
//! cache line of pending tuples per partition *in cache* and flushes full
//! lines to the destination with non-temporal stores. With a buffer of
//! `N` tuples, TLB pressure drops by a factor of `N`.
//!
//! Full-line flushes go through [`mmjoin_util::kernels::stream_cacheline`]
//! — real `_mm_stream_si128`/`_mm256_stream_si256` non-temporal stores on
//! x86_64 (so flushed lines bypass the cache instead of evicting the live
//! bank), a plain `copy_nonoverlapping` in portable mode and on other
//! architectures. Both paths produce bit-identical output.
//!
//! Streaming stores require a 64-byte-aligned destination. Output buffers
//! come from [`mmjoin_util::alloc::AlignedBuf`] (always line-aligned), but
//! a partition's *initial cursor* can sit mid-line. The bank therefore
//! bootstraps alignment: the first flush of such a partition is a short
//! plain copy up to the next line boundary, after which every full-line
//! flush is aligned and streams. Because streamed stores are weakly
//! ordered, [`SwwcBank::flush_all`] ends with an `sfence`, ahead of the
//! phase barrier that publishes the partitions to other threads.

use mmjoin_util::kernels;
use mmjoin_util::tuple::Tuple;
use mmjoin_util::{CACHE_LINE, TUPLES_PER_CACHELINE};

/// One cache line of buffered tuples for one target partition.
#[repr(C, align(64))]
#[derive(Copy, Clone)]
struct Line {
    tuples: [Tuple; TUPLES_PER_CACHELINE],
}

const _: () = assert!(std::mem::size_of::<Line>() == CACHE_LINE);

/// A bank of software write-combine buffers, one line per partition.
pub struct SwwcBank {
    lines: Vec<Line>,
    /// Tuples currently buffered per partition.
    fill: Vec<u8>,
    /// Tuples to buffer before the next flush: `TUPLES_PER_CACHELINE`
    /// once the cursor is line-aligned, fewer for the bootstrap flush of
    /// a partition whose initial cursor starts mid-line.
    target: Vec<u8>,
    /// Output cursor (tuple index in the destination buffer) per partition.
    cursor: Vec<usize>,
    /// Whether full-line flushes use non-temporal stores (resolved from
    /// [`mmjoin_util::kernels`] at construction).
    streaming: bool,
}

impl SwwcBank {
    /// Create a bank for `parts` partitions with the given initial output
    /// cursors (one per partition), using the process-wide kernel mode.
    pub fn new(cursors: &[usize]) -> Self {
        Self::with_streaming(cursors, kernels::simd_active())
    }

    /// Create a bank with an explicit flush kernel choice (tests and the
    /// A/B bench harness; [`SwwcBank::new`] resolves it automatically).
    pub fn with_streaming(cursors: &[usize], streaming: bool) -> Self {
        SwwcBank {
            lines: vec![
                Line {
                    tuples: [Tuple::new(0, 0); TUPLES_PER_CACHELINE]
                };
                cursors.len()
            ],
            fill: vec![0u8; cursors.len()],
            target: cursors
                .iter()
                .map(|&c| (TUPLES_PER_CACHELINE - c % TUPLES_PER_CACHELINE) as u8)
                .collect(),
            cursor: cursors.to_vec(),
            streaming,
        }
    }

    /// Buffer one tuple for `part`, flushing a full line to `out`.
    ///
    /// # Safety
    /// `out` must be valid for writes at every cursor position this bank
    /// was initialized with, for the number of tuples that will be pushed
    /// (the caller's histogram guarantees this).
    #[inline(always)]
    pub unsafe fn push(&mut self, part: usize, t: Tuple, out: *mut Tuple) {
        let fill = self.fill[part] as usize;
        self.lines[part].tuples[fill] = t;
        if fill + 1 == self.target[part] as usize {
            let n = fill + 1;
            let dst = out.add(self.cursor[part]);
            if self.streaming
                && n == TUPLES_PER_CACHELINE
                && (dst as usize).is_multiple_of(CACHE_LINE)
            {
                // Full line to an aligned destination: bypass the cache.
                kernels::stream_cacheline(
                    dst.cast::<u8>(),
                    self.lines[part].tuples.as_ptr().cast::<u8>(),
                );
            } else {
                std::ptr::copy_nonoverlapping(self.lines[part].tuples.as_ptr(), dst, n);
            }
            self.cursor[part] += n;
            self.fill[part] = 0;
            self.target[part] = TUPLES_PER_CACHELINE as u8;
        } else {
            self.fill[part] = fill as u8 + 1;
        }
    }

    /// Flush all partially filled lines, then fence the streamed stores
    /// (phase end: everything written is visible to the next phase's
    /// readers once the caller crosses its barrier).
    ///
    /// # Safety
    /// Same contract as [`SwwcBank::push`].
    pub unsafe fn flush_all(&mut self, out: *mut Tuple) {
        for part in 0..self.lines.len() {
            let fill = self.fill[part] as usize;
            if fill > 0 {
                let dst = out.add(self.cursor[part]);
                std::ptr::copy_nonoverlapping(self.lines[part].tuples.as_ptr(), dst, fill);
                self.cursor[part] += fill;
                self.fill[part] = 0;
                self.target[part] =
                    (TUPLES_PER_CACHELINE - self.cursor[part] % TUPLES_PER_CACHELINE) as u8;
            }
        }
        if self.streaming {
            kernels::sfence();
        }
    }

    /// Current cursor of `part` (after flushes).
    pub fn cursor(&self, part: usize) -> usize {
        self.cursor[part]
    }

    /// Bytes of buffer state per partition — the quantity that must fit
    /// in the LLC for partitioning to stay fast (Section 7.3's analysis of
    /// Figure 11).
    pub const fn bytes_per_partition() -> usize {
        CACHE_LINE + 2 * std::mem::size_of::<u8>() + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::alloc::AlignedBuf;
    use mmjoin_util::kernels::KernelMode;
    use mmjoin_util::rng::Xoshiro256;

    #[test]
    fn push_and_flush_exact_lines() {
        let mut out = vec![Tuple::new(0, 0); 16];
        let mut bank = SwwcBank::new(&[0, 8]);
        unsafe {
            for i in 0..8u32 {
                bank.push(0, Tuple::new(i + 1, i), out.as_mut_ptr());
            }
            for i in 0..8u32 {
                bank.push(1, Tuple::new(100 + i, i), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        for i in 0..8usize {
            assert_eq!(out[i].key, i as u32 + 1);
            assert_eq!(out[8 + i].key, 100 + i as u32);
        }
    }

    #[test]
    fn partial_lines_flush_remainder() {
        let mut out = vec![Tuple::new(0, 0); 16];
        let mut bank = SwwcBank::new(&[0, 11]);
        unsafe {
            for i in 0..11u32 {
                bank.push(0, Tuple::new(i + 1, 0), out.as_mut_ptr());
            }
            for i in 0..3u32 {
                bank.push(1, Tuple::new(200 + i, 0), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        let keys: Vec<u32> = out.iter().map(|t| t.key).collect();
        assert_eq!(&keys[..11], &(1..=11).collect::<Vec<u32>>()[..]);
        assert_eq!(&keys[11..14], &[200, 201, 202]);
        assert_eq!(bank.cursor(0), 11);
        assert_eq!(bank.cursor(1), 14);
    }

    #[test]
    fn unaligned_start_cursor() {
        // Destination region starting mid-line must still be written
        // correctly: the bootstrap flush is a short plain copy up to the
        // line boundary, after which full lines stream.
        let mut out = vec![Tuple::new(0, 0); 32];
        let mut bank = SwwcBank::new(&[5]);
        unsafe {
            for i in 0..20u32 {
                bank.push(0, Tuple::new(i + 1, 0), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        for i in 0..20usize {
            assert_eq!(out[5 + i].key, i as u32 + 1);
        }
        assert_eq!(out[4].key, 0);
        assert_eq!(out[25].key, 0);
    }

    /// Differential kernel test: the forced-portable and the dispatched
    /// streaming flush paths must produce bit-identical output for
    /// random interleavings of partitions and start cursors.
    #[test]
    fn streaming_flushes_match_portable() {
        let parts = 4usize;
        let cursors = [3usize, 20, 40, 77];
        let mut rng = Xoshiro256::new(99);
        let pushes: Vec<(usize, Tuple)> = (0..200)
            .map(|i| {
                (
                    rng.below(parts as u64) as usize,
                    Tuple::new(i + 1, rng.next_u32()),
                )
            })
            .collect();
        // Count per-partition pushes so the fixed cursors stay in bounds.
        let run = |mode: KernelMode| {
            mmjoin_util::kernels::with_mode(mode, || {
                let mut out = AlignedBuf::<Tuple>::zeroed(512);
                let mut bank = SwwcBank::new(&cursors);
                unsafe {
                    for &(p, t) in &pushes {
                        bank.push(p, t, out.as_mut_ptr());
                    }
                    bank.flush_all(out.as_mut_ptr());
                }
                out.as_slice().to_vec()
            })
        };
        let portable = run(KernelMode::Portable);
        let simd = run(KernelMode::Simd);
        assert_eq!(portable, simd);
    }

    #[test]
    fn aligned_buf_streaming_round_trip() {
        // Aligned destination + aligned cursor: every flush takes the
        // streaming path; the content must still round-trip exactly.
        let mut out = AlignedBuf::<Tuple>::zeroed(64);
        let mut bank = SwwcBank::with_streaming(&[0, 32], true);
        unsafe {
            for i in 0..24u32 {
                bank.push(0, Tuple::new(i + 1, i), out.as_mut_ptr());
            }
            for i in 0..16u32 {
                bank.push(1, Tuple::new(500 + i, i), out.as_mut_ptr());
            }
            bank.flush_all(out.as_mut_ptr());
        }
        for i in 0..24usize {
            assert_eq!(out.as_slice()[i].key, i as u32 + 1);
        }
        for i in 0..16usize {
            assert_eq!(out.as_slice()[32 + i].key, 500 + i as u32);
        }
    }
}
