//! Chunked parallel radix partitioning — the CPR* partitioning this paper
//! proposes (Section 6.1, Figure 4(c)).
//!
//! There is no global histogram and no phase (2): every thread runs a
//! single-threaded histogram-based radix partitioning *inside its own
//! chunk*, writing only to thread-local (hence NUMA-local) memory. The
//! price: partition `p` is no longer contiguous — it is the concatenation
//! of every chunk's `p`-th sub-partition, which the join phase gathers
//! with large *sequential* (possibly remote) reads instead of the random
//! remote writes of PRO.

use mmjoin_util::alloc::AlignedBuf;
use mmjoin_util::chunk_range;
use mmjoin_util::pool::{broadcast_map, ScopedPool, WorkerPool};
use mmjoin_util::tuple::Tuple;

use crate::contiguous::ScatterMode;
use crate::histogram::{histogram, prefix_sum};
use crate::radix::RadixFn;
use crate::swwcb::SwwcBank;

/// One thread's locally partitioned chunk.
pub struct ChunkPart {
    data: AlignedBuf<Tuple>,
    /// `parts + 1` offsets into `data`.
    offsets: Vec<usize>,
}

impl ChunkPart {
    #[inline]
    pub fn partition(&self, p: usize) -> &[Tuple] {
        &self.data.as_slice()[self.offsets[p]..self.offsets[p + 1]]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A relation partitioned chunk-locally: `chunks[t].partition(p)` holds
/// thread `t`'s share of partition `p`.
pub struct ChunkedPartitions {
    chunks: Vec<ChunkPart>,
    parts: usize,
}

impl ChunkedPartitions {
    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    #[inline]
    pub fn chunks(&self) -> &[ChunkPart] {
        &self.chunks
    }

    /// Total tuples in partition `p` across all chunks.
    pub fn part_len(&self, p: usize) -> usize {
        self.chunks.iter().map(|c| c.partition(p).len()).sum()
    }

    /// Visit every chunk's slice of partition `p` in chunk order.
    #[inline]
    pub fn for_each_slice<F: FnMut(&[Tuple])>(&self, p: usize, mut f: F) {
        for c in &self.chunks {
            let s = c.partition(p);
            if !s.is_empty() {
                f(s);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.chunks.iter().map(ChunkPart::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Partition `input` chunk-locally on a worker pool (one chunk per
/// active worker).
pub fn chunked_partition_on(
    input: &[Tuple],
    f: RadixFn,
    pool: &dyn WorkerPool,
    mode: ScatterMode,
) -> ChunkedPartitions {
    let active = pool.workers().clamp(1, input.len().max(1));
    let chunks = broadcast_map(pool, active, |t| {
        let chunk = &input[chunk_range(input.len(), active, t)];
        partition_chunk_local(chunk, f, mode)
    });
    ChunkedPartitions {
        chunks,
        parts: f.fanout(),
    }
}

/// Partition `input` chunk-locally with `threads` threads (legacy entry
/// point: scoped threads; prefer [`chunked_partition_on`]).
pub fn chunked_partition(
    input: &[Tuple],
    f: RadixFn,
    threads: usize,
    mode: ScatterMode,
) -> ChunkedPartitions {
    chunked_partition_on(input, f, &ScopedPool::new(threads), mode)
}

/// Single-threaded histogram-based radix partitioning of one chunk into a
/// fresh local buffer.
fn partition_chunk_local(chunk: &[Tuple], f: RadixFn, mode: ScatterMode) -> ChunkPart {
    let hist = histogram(chunk, f);
    let offsets = prefix_sum(&hist);
    let mut data = AlignedBuf::<Tuple>::zeroed(chunk.len());
    let out = data.as_mut_ptr();
    // SAFETY: cursor ranges come straight from this chunk's histogram;
    // single-threaded, in-bounds by construction.
    unsafe {
        match mode {
            ScatterMode::Direct => {
                let mut cur = offsets[..f.fanout()].to_vec();
                for &t in chunk {
                    let p = f.part(t.key);
                    out.add(cur[p]).write(t);
                    cur[p] += 1;
                }
            }
            ScatterMode::Swwcb => {
                let mut bank = SwwcBank::new(&offsets[..f.fanout()]);
                for &t in chunk {
                    bank.push(f.part(t.key), t, out);
                }
                bank.flush_all(out);
            }
        }
    }
    ChunkPart { data, offsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::rng::Xoshiro256;

    fn random_input(n: usize, seed: u64) -> Vec<Tuple> {
        let mut rng = Xoshiro256::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() | 1, i as u32))
            .collect()
    }

    #[test]
    fn partitions_hold_matching_digits() {
        let input = random_input(10_000, 1);
        let f = RadixFn::new(5);
        for threads in [1, 2, 4, 7] {
            let cp = chunked_partition(&input, f, threads, ScatterMode::Swwcb);
            assert_eq!(cp.parts(), 32);
            assert_eq!(cp.len(), input.len());
            for p in 0..cp.parts() {
                cp.for_each_slice(p, |s| {
                    assert!(s.iter().all(|t| f.part(t.key) == p));
                });
            }
        }
    }

    #[test]
    fn union_is_a_permutation_of_input() {
        let input = random_input(7_777, 2);
        let cp = chunked_partition(&input, RadixFn::new(4), 5, ScatterMode::Direct);
        let mut collected: Vec<u64> = Vec::with_capacity(input.len());
        for p in 0..cp.parts() {
            cp.for_each_slice(p, |s| collected.extend(s.iter().map(|t| t.pack())));
        }
        let mut a: Vec<u64> = input.iter().map(|t| t.pack()).collect();
        collected.sort_unstable();
        a.sort_unstable();
        assert_eq!(a, collected);
    }

    #[test]
    fn part_len_sums_chunks() {
        let input = random_input(4_000, 3);
        let f = RadixFn::new(3);
        let cp = chunked_partition(&input, f, 4, ScatterMode::Swwcb);
        let total: usize = (0..cp.parts()).map(|p| cp.part_len(p)).sum();
        assert_eq!(total, input.len());
        // Cross-check one partition against a direct count.
        let expect = input.iter().filter(|t| f.part(t.key) == 3).count();
        assert_eq!(cp.part_len(3), expect);
    }

    #[test]
    fn swwcb_equals_direct_chunked() {
        let input = random_input(3_000, 4);
        let a = chunked_partition(&input, RadixFn::new(4), 3, ScatterMode::Direct);
        let b = chunked_partition(&input, RadixFn::new(4), 3, ScatterMode::Swwcb);
        for (ca, cb) in a.chunks().iter().zip(b.chunks()) {
            assert_eq!(ca.offsets, cb.offsets);
            assert_eq!(ca.data.as_slice(), cb.data.as_slice());
        }
    }

    /// Differential kernel test for the chunked partitioner.
    #[test]
    fn forced_portable_equals_dispatched_simd() {
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let input = random_input(9_000, 12);
        let a = with_mode(KernelMode::Portable, || {
            chunked_partition(&input, RadixFn::new(5), 4, ScatterMode::Swwcb)
        });
        let b = with_mode(KernelMode::Simd, || {
            chunked_partition(&input, RadixFn::new(5), 4, ScatterMode::Swwcb)
        });
        for (ca, cb) in a.chunks().iter().zip(b.chunks()) {
            assert_eq!(ca.offsets, cb.offsets);
            assert_eq!(ca.data.as_slice(), cb.data.as_slice());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let cp = chunked_partition(&[], RadixFn::new(4), 8, ScatterMode::Swwcb);
        assert_eq!(cp.len(), 0);
        let one = [Tuple::new(5, 0)];
        let cp = chunked_partition(&one, RadixFn::new(4), 8, ScatterMode::Swwcb);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.part_len(5), 1);
    }
}
