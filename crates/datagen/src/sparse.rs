//! Sparse ("holes in the key range") build relations, Appendix C.
//!
//! The build relation holds `n` *distinct* keys drawn from the domain
//! `1..=k·n`. At `k == 1` this degenerates to the dense workload; larger
//! `k` punches holes into the domain, growing the arrays of the
//! array-join variants by `k×`.

use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::{Placement, Relation, Tuple};

/// Generate a sparse build relation: `n` distinct keys uniformly sampled
/// (without replacement) from `1..=domain`, shuffled, payload = row id.
/// Returns the relation and the sorted key set (for FK generation).
///
/// Sampling uses the sequential selection method (Fan et al. / Knuth
/// Algorithm S): one pass over the domain, selecting each element with
/// probability `needed / remaining` — O(domain) time, O(n) space, exact.
pub fn gen_build_sparse(
    n: usize,
    domain: usize,
    seed: u64,
    placement: Placement,
) -> (Relation, Vec<u32>) {
    assert!(domain >= n, "domain must hold n distinct keys");
    let mut rng = Xoshiro256::new(seed ^ 0xACE1_ACE1_ACE1_ACE1);
    let mut keys = Vec::with_capacity(n);
    let mut needed = n as u64;
    let mut remaining = domain as u64;
    for candidate in 1..=domain as u64 {
        if needed == 0 {
            break;
        }
        // Select with probability needed/remaining.
        if rng.below(remaining) < needed {
            keys.push(candidate as u32);
            needed -= 1;
        }
        remaining -= 1;
    }
    debug_assert_eq!(keys.len(), n);
    let sorted_keys = keys.clone();
    let mut tuples: Vec<Tuple> = keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| Tuple::new(k, i as u32))
        .collect();
    rng.shuffle(&mut tuples);
    (Relation::from_tuples(&tuples, placement), sorted_keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_distinct_in_domain() {
        let (r, keys) = gen_build_sparse(1000, 10_000, 5, Placement::Interleaved);
        assert_eq!(r.len(), 1000);
        assert_eq!(keys.len(), 1000);
        let mut set = std::collections::HashSet::new();
        for t in r.tuples() {
            assert!(t.key >= 1 && t.key <= 10_000);
            assert!(set.insert(t.key), "duplicate {}", t.key);
        }
    }

    #[test]
    fn keys_list_matches_relation() {
        let (r, keys) = gen_build_sparse(500, 5_000, 9, Placement::Interleaved);
        let mut from_rel: Vec<u32> = r.tuples().iter().map(|t| t.key).collect();
        from_rel.sort_unstable();
        assert_eq!(from_rel, keys);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys sorted/distinct");
    }

    #[test]
    fn k_equals_one_is_dense() {
        let (r, keys) = gen_build_sparse(100, 100, 1, Placement::Interleaved);
        assert_eq!(keys, (1..=100u32).collect::<Vec<_>>());
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let (_, keys) = gen_build_sparse(10_000, 100_000, 13, Placement::Interleaved);
        // Count keys in each decile of the domain.
        let mut deciles = [0usize; 10];
        for &k in &keys {
            deciles[((k - 1) / 10_000) as usize] += 1;
        }
        for &d in &deciles {
            assert!((800..1200).contains(&d), "decile count {d}");
        }
    }

    #[test]
    fn deterministic() {
        let (a, ka) = gen_build_sparse(100, 1000, 3, Placement::Interleaved);
        let (b, kb) = gen_build_sparse(100, 1000, 3, Placement::Interleaved);
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(ka, kb);
    }
}
