//! Foreign-key probe relations.

use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::{Placement, Relation, Tuple};

/// Generate a probe relation of `n` tuples whose keys are drawn uniformly
/// from the dense build domain `1..=build_n`; payload = row id.
pub fn gen_probe_fk(n: usize, build_n: usize, seed: u64, placement: Placement) -> Relation {
    assert!(build_n > 0 || n == 0, "probe into empty build domain");
    let mut rng = Xoshiro256::new(seed ^ 0xF0E1_D2C3_B4A5_9687);
    let tuples: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new(rng.below(build_n as u64) as u32 + 1, i as u32))
        .collect();
    Relation::from_tuples(&tuples, placement)
}

/// Generate a probe relation drawing keys uniformly from an explicit key
/// set (used for sparse-domain workloads, where the FK must reference
/// existing keys only).
pub fn gen_probe_of_keys(n: usize, keys: &[u32], seed: u64, placement: Placement) -> Relation {
    assert!(!keys.is_empty() || n == 0);
    let mut rng = Xoshiro256::new(seed ^ 0x1234_5678_9ABC_DEF0);
    let tuples: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new(keys[rng.below(keys.len() as u64) as usize], i as u32))
        .collect();
    Relation::from_tuples(&tuples, placement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fk_keys_in_domain() {
        let s = gen_probe_fk(10_000, 100, 3, Placement::Interleaved);
        assert!(s.tuples().iter().all(|t| t.key >= 1 && t.key <= 100));
    }

    #[test]
    fn fk_covers_domain() {
        // With 10k draws over 100 keys, every key should appear.
        let s = gen_probe_fk(10_000, 100, 3, Placement::Interleaved);
        let mut seen = [false; 101];
        for t in s.tuples() {
            seen[t.key as usize] = true;
        }
        assert!(seen[1..].iter().all(|&b| b));
    }

    #[test]
    fn fk_roughly_uniform() {
        let s = gen_probe_fk(100_000, 10, 11, Placement::Interleaved);
        let mut counts = [0usize; 11];
        for t in s.tuples() {
            counts[t.key as usize] += 1;
        }
        for &c in &counts[1..] {
            // Each key expects 10_000 hits; allow 15% deviation.
            assert!((8_500..11_500).contains(&c), "count {c}");
        }
    }

    #[test]
    fn of_keys_only_draws_given_keys() {
        let keys = [5u32, 500, 50_000];
        let s = gen_probe_of_keys(1000, &keys, 9, Placement::Interleaved);
        assert!(s.tuples().iter().all(|t| keys.contains(&t.key)));
    }

    #[test]
    fn payloads_are_row_ids() {
        let s = gen_probe_fk(100, 10, 1, Placement::Interleaved);
        for (i, t) in s.tuples().iter().enumerate() {
            assert_eq!(t.payload as usize, i);
        }
    }
}
