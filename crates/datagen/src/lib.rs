//! Workload generators for the join study.
//!
//! All previous join papers (and this study, Section 7.1) share one
//! workload convention, which we reproduce exactly:
//!
//! * The **build relation R** has *dense, unique* keys `1..=|R|` in random
//!   order (an auto-increment primary key), payload = row id.
//! * The **probe relation S** has keys drawn from R's key domain (a foreign
//!   key), uniformly by default.
//! * Skewed probes draw keys from a Zipf distribution generated with the
//!   algorithm of Gray et al. (SIGMOD'94), with the 10 hottest keys
//!   remapped to random positions in the domain (Appendix A).
//! * "Holes" workloads (Appendix C) draw |R| distinct keys from a domain
//!   `k·|R|` to study array joins on non-dense domains.
//!
//! Everything is deterministic in the seed.

pub mod fk;
pub mod sparse;
pub mod zipf;

pub use fk::{gen_probe_fk, gen_probe_of_keys};
pub use sparse::gen_build_sparse;
pub use zipf::{gen_probe_zipf, Zipf};

use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::{Placement, Relation, Tuple};

/// Generate the canonical build relation: keys `1..=n` shuffled, payload =
/// 0-based row id of the tuple *before* shuffling (i.e. `key - 1`), which
/// is what late-materialization joins use to fetch other attributes.
pub fn gen_build_dense(n: usize, seed: u64, placement: Placement) -> Relation {
    let mut tuples: Vec<Tuple> = (0..n).map(|i| Tuple::new(i as u32 + 1, i as u32)).collect();
    let mut rng = Xoshiro256::new(seed);
    rng.shuffle(&mut tuples);
    Relation::from_tuples(&tuples, placement)
}

/// Generate a build relation whose payloads are themselves foreign keys
/// into a second build relation's domain: keys `1..=n` shuffled, payload
/// uniform in `1..=link_domain`. This is the middle table of a two-join
/// chain `(R1 ⋈ S) ⋈ R2 ON R1.payload = R2.key` — the shape the fused
/// pipeline (`mmjoin_core::pipeline`) executes without materializing the
/// intermediate. Payloads start at 1 (never 0, the hash tables' EMPTY
/// sentinel) so every stage-one match produces a probeable stage-two key.
pub fn gen_build_linked(n: usize, link_domain: usize, seed: u64, placement: Placement) -> Relation {
    let domain = link_domain.max(1) as u64;
    let mut rng = Xoshiro256::new(seed);
    let mut tuples: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new(i as u32 + 1, rng.below(domain) as u32 + 1))
        .collect();
    rng.shuffle(&mut tuples);
    Relation::from_tuples(&tuples, placement)
}

/// Generate a build relation *in key order* (not shuffled): models
/// TPC-H's `Part` table, which is generated sorted by its primary key
/// (Section 8 notes this gives NOPA an ideal sequential build pattern).
pub fn gen_build_sorted(n: usize, placement: Placement) -> Relation {
    let tuples: Vec<Tuple> = (0..n).map(|i| Tuple::new(i as u32 + 1, i as u32)).collect();
    Relation::from_tuples(&tuples, placement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_build_has_all_keys_once() {
        let r = gen_build_dense(1000, 42, Placement::Interleaved);
        let mut seen = vec![false; 1001];
        for t in r.tuples() {
            assert!(t.key >= 1 && t.key <= 1000);
            assert!(!seen[t.key as usize], "duplicate key {}", t.key);
            seen[t.key as usize] = true;
            assert_eq!(t.payload, t.key - 1);
        }
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn dense_build_is_shuffled() {
        let r = gen_build_dense(1000, 42, Placement::Interleaved);
        let in_order = r.tuples().windows(2).all(|w| w[0].key < w[1].key);
        assert!(!in_order);
    }

    #[test]
    fn dense_build_deterministic() {
        let a = gen_build_dense(100, 7, Placement::Interleaved);
        let b = gen_build_dense(100, 7, Placement::Interleaved);
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn sorted_build_is_sorted() {
        let r = gen_build_sorted(100, Placement::Interleaved);
        assert!(r.tuples().windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn linked_build_payloads_stay_in_domain() {
        let r = gen_build_linked(1000, 250, 9, Placement::Interleaved);
        let mut seen = vec![false; 1001];
        for t in r.tuples() {
            assert!(t.key >= 1 && t.key <= 1000);
            assert!(!seen[t.key as usize], "duplicate key {}", t.key);
            seen[t.key as usize] = true;
            assert!(t.payload >= 1 && t.payload <= 250, "payload {}", t.payload);
        }
        let a = gen_build_linked(100, 50, 3, Placement::Interleaved);
        let b = gen_build_linked(100, 50, 3, Placement::Interleaved);
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn empty_relations() {
        assert_eq!(gen_build_dense(0, 1, Placement::Interleaved).len(), 0);
        assert_eq!(gen_build_sorted(0, Placement::Interleaved).len(), 0);
    }
}
