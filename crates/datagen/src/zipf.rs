//! Zipf-distributed key generator after Gray et al.,
//! "Quickly Generating Billion-Record Synthetic Databases" (SIGMOD'94).
//!
//! The paper's skew experiments (Appendix A) use exactly this algorithm,
//! plus one twist: "to achieve a more realistic distribution and to avoid
//! that the keys occurring most often are all in a single partition, we
//! map the 10 smallest keys to random keys in the full domain."

use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::{Placement, Relation, Tuple};

/// Number of hottest ranks remapped to random domain positions.
const HOT_REMAP: usize = 10;

/// Incrementally computable generalized harmonic number Σ 1/i^theta.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// A Zipf(θ) generator over ranks `1..=n` using Gray et al.'s constant-time
/// inverse-CDF approximation.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Create a generator over `n` ranks with skew `theta ∈ [0, 1)`.
    /// `theta == 0` degenerates to uniform.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        // Note: exact zeta is O(n) once per generator; for the domains in
        // this study (≤ 2^31) that is a small, one-off setup cost compared
        // to generating the billions of samples drawn from it.
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draw one rank in `1..=n`; rank 1 is the most frequent.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        if self.theta == 0.0 {
            return rng.below(self.n) + 1;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let rank = 1.0 + self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (rank as u64).clamp(1, self.n)
    }

    #[inline]
    pub fn domain(&self) -> u64 {
        self.n
    }
}

/// Generate a skewed probe relation: `n` tuples with Zipf(θ)-distributed
/// keys over `1..=domain`, with the `HOT_REMAP` hottest ranks scattered to
/// random keys in the full domain (Appendix A), payload = row id.
pub fn gen_probe_zipf(
    n: usize,
    domain: usize,
    theta: f64,
    seed: u64,
    placement: Placement,
) -> Relation {
    let zipf = Zipf::new(domain as u64, theta);
    let mut rng = Xoshiro256::new(seed ^ 0x5151_5151_5151_5151);
    // Remap table for the hottest ranks.
    let hot: Vec<u32> = (0..HOT_REMAP)
        .map(|_| rng.below(domain as u64) as u32 + 1)
        .collect();
    let tuples: Vec<Tuple> = (0..n)
        .map(|i| {
            let rank = zipf.sample(&mut rng);
            let key = if rank as usize <= HOT_REMAP && domain > HOT_REMAP {
                hot[rank as usize - 1]
            } else {
                rank as u32
            };
            Tuple::new(key, i as u32)
        })
        .collect();
    Relation::from_tuples(&tuples, placement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = Xoshiro256::new(1);
        let mut counts = vec![0usize; 101];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Every rank around 1000 hits.
        for &c in &counts[1..] {
            assert!((600..1400).contains(&c), "count {c}");
        }
    }

    #[test]
    fn skew_concentrates_mass() {
        let z = Zipf::new(1_000_000, 0.99);
        let mut rng = Xoshiro256::new(2);
        let samples = 100_000;
        let mut top100 = 0usize;
        for _ in 0..samples {
            if z.sample(&mut rng) <= 100 {
                top100 += 1;
            }
        }
        // At theta=0.99 the top 100 of 1M ranks carry a large share
        // (analytically ~37%); uniform would give 0.01%.
        assert!(
            top100 as f64 / samples as f64 > 0.25,
            "top100 share {}",
            top100 as f64 / samples as f64
        );
    }

    #[test]
    fn moderate_skew_between_uniform_and_high() {
        let mut shares = Vec::new();
        for theta in [0.0, 0.5, 0.9] {
            let z = Zipf::new(100_000, theta);
            let mut rng = Xoshiro256::new(3);
            let mut top10 = 0usize;
            for _ in 0..50_000 {
                if z.sample(&mut rng) <= 10 {
                    top10 += 1;
                }
            }
            shares.push(top10 as f64 / 50_000.0);
        }
        assert!(shares[0] < shares[1] && shares[1] < shares[2], "{shares:?}");
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = Xoshiro256::new(4);
        let mut counts = vec![0usize; 1001];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(max, 1);
        assert!(counts[1] > counts[10] && counts[10] > counts[100]);
    }

    #[test]
    fn samples_stay_in_domain() {
        for theta in [0.0, 0.51, 0.99] {
            let z = Zipf::new(50, theta);
            let mut rng = Xoshiro256::new(5);
            for _ in 0..10_000 {
                let s = z.sample(&mut rng);
                assert!((1..=50).contains(&s), "theta={theta} s={s}");
            }
        }
    }

    #[test]
    fn probe_zipf_keys_in_domain_and_deterministic() {
        let a = gen_probe_zipf(5_000, 1_000, 0.9, 7, Placement::Interleaved);
        let b = gen_probe_zipf(5_000, 1_000, 0.9, 7, Placement::Interleaved);
        assert_eq!(a.tuples(), b.tuples());
        assert!(a.tuples().iter().all(|t| t.key >= 1 && t.key <= 1000));
    }

    #[test]
    fn hot_keys_are_scattered() {
        // After remapping, the most frequent key should NOT be key 1
        // with overwhelming probability (it is a random domain position).
        let r = gen_probe_zipf(50_000, 100_000, 0.99, 11, Placement::Interleaved);
        let mut counts = std::collections::HashMap::new();
        for t in r.tuples() {
            *counts.entry(t.key).or_insert(0usize) += 1;
        }
        let (&hottest, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(hottest > 10, "hottest key {hottest} was not remapped");
    }
}
