//! Admission control: bounded fair queues per tenant, per-tenant memory
//! budgets carved from a global budget (DESIGN.md §15).
//!
//! Every tenant gets a FIFO of bounded depth; runners drain tenants
//! round-robin, so one tenant flooding its queue delays only itself —
//! a queue-full submission is rejected *synchronously* with a typed
//! `queue_full` error rather than absorbed (bufferbloat would just move
//! the latency into the server).
//!
//! Memory admission is two-level: a job must reserve its footprint
//! estimate against its tenant's [`MemBudget`] *and* against the global
//! budget. Either refusing does **not** reject the job — execution
//! degrades to the spilling hybrid hash join (`Algorithm::Shhj`) under
//! whatever grant is still available (see `engine.rs`). Running out of
//! memory is a performance cliff here, never an error.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use mmjoin_core::prelude::{CancelToken, MemBudget};

use crate::protocol::{JoinSpec, ProtoError};

/// A join admitted to a tenant queue, waiting for a runner.
pub struct Job {
    /// Connection the response must be routed back to.
    pub conn: u64,
    /// Per-connection sequence, for in-flight cancel bookkeeping.
    pub seq: u64,
    pub id: Option<f64>,
    pub tenant: String,
    pub spec: JoinSpec,
    /// Frame receipt time — queue wait is part of the deadline.
    pub received: Instant,
    /// Absolute expiry derived from `spec.deadline_ms` at receipt.
    pub expires: Option<Instant>,
    pub cancel: CancelToken,
    /// Tenant queue length when this job was enqueued (set by
    /// [`Admission::submit`]; telemetry's queue-depth-at-entry).
    pub queue_depth: usize,
}

/// Monotonic per-tenant counters (atomics: bumped by runners without
/// the admission lock).
#[derive(Default)]
pub struct TenantCounters {
    pub admitted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub errored: AtomicU64,
    pub degraded: AtomicU64,
}

struct TenantQ {
    queue: VecDeque<Job>,
    budget: Arc<MemBudget>,
    counters: Arc<TenantCounters>,
}

struct Inner {
    tenants: HashMap<String, TenantQ>,
    /// Round-robin order (first-seen); `cursor` indexes into it.
    order: Vec<String>,
    cursor: usize,
    queued: usize,
    stopped: bool,
}

/// A job handed to a runner, with the budget handles it executes under.
pub struct Admitted {
    pub job: Job,
    pub budget: Arc<MemBudget>,
    pub counters: Arc<TenantCounters>,
    pub global: Arc<MemBudget>,
}

/// Tenant view for `op:"stat"`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct TenantSnapshot {
    pub name: String,
    pub queued: usize,
    pub budget_used: usize,
    pub budget_limit: usize,
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub errored: u64,
    pub degraded: u64,
}

/// The admission controller shared by the front-end and the runners.
pub struct Admission {
    inner: Mutex<Inner>,
    cv: Condvar,
    global: Arc<MemBudget>,
    default_tenant_bytes: usize,
    /// Budgets fixed at configuration time (`ServeConfig::with_tenant_budget`).
    pinned: HashMap<String, usize>,
    queue_depth: usize,
}

impl Admission {
    pub fn new(
        global_bytes: usize,
        default_tenant_bytes: usize,
        pinned: HashMap<String, usize>,
        queue_depth: usize,
    ) -> Admission {
        Admission {
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                order: Vec::new(),
                cursor: 0,
                queued: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
            global: Arc::new(MemBudget::limited(global_bytes)),
            default_tenant_bytes,
            pinned,
            queue_depth: queue_depth.max(1),
        }
    }

    /// The global budget every job also reserves against.
    pub fn global_budget(&self) -> &Arc<MemBudget> {
        &self.global
    }

    /// The tenant's own budget handle (creating the tenant if new) —
    /// used by `stat` and by tests; runners get it via [`Admitted`].
    pub fn tenant_budget(&self, tenant: &str) -> Arc<MemBudget> {
        let mut g = self.inner.lock().unwrap();
        self.ensure_tenant(&mut g, tenant);
        Arc::clone(&g.tenants[tenant].budget)
    }

    fn ensure_tenant(&self, g: &mut Inner, tenant: &str) {
        if !g.tenants.contains_key(tenant) {
            // Carve: a pinned size if configured, else the default
            // slice, never more than the whole global budget.
            let bytes = self
                .pinned
                .get(tenant)
                .copied()
                .unwrap_or(self.default_tenant_bytes)
                .min(self.global.limit());
            g.tenants.insert(
                tenant.to_string(),
                TenantQ {
                    queue: VecDeque::new(),
                    budget: Arc::new(MemBudget::limited(bytes)),
                    counters: Arc::new(TenantCounters::default()),
                },
            );
            g.order.push(tenant.to_string());
        }
    }

    /// Enqueue a job on its tenant's queue. Bounded: a full queue
    /// rejects synchronously with `queue_full`.
    pub fn submit(&self, mut job: Job) -> Result<(), ProtoError> {
        let mut g = self.inner.lock().unwrap();
        if g.stopped {
            return Err(ProtoError::new("shutting_down", "server is shutting down"));
        }
        self.ensure_tenant(&mut g, &job.tenant);
        let depth = self.queue_depth;
        let t = g.tenants.get_mut(&job.tenant).expect("just ensured");
        if t.queue.len() >= depth {
            t.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ProtoError::new(
                "queue_full",
                format!("tenant '{}' already has {depth} queued joins", job.tenant),
            ));
        }
        t.counters.admitted.fetch_add(1, Ordering::Relaxed);
        job.queue_depth = t.queue.len();
        t.queue.push_back(job);
        g.queued += 1;
        drop(g);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until a job is available (round-robin across tenants) or
    /// the controller is stopped (`None`).
    pub fn next(&self) -> Option<Admitted> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.queued > 0 {
                let n = g.order.len();
                for step in 0..n {
                    let idx = (g.cursor + step) % n;
                    let name = g.order[idx].clone();
                    let t = g.tenants.get_mut(&name).expect("order entry has a queue");
                    if let Some(job) = t.queue.pop_front() {
                        let budget = Arc::clone(&t.budget);
                        let counters = Arc::clone(&t.counters);
                        g.queued -= 1;
                        g.cursor = (idx + 1) % n;
                        return Some(Admitted {
                            job,
                            budget,
                            counters,
                            global: Arc::clone(&self.global),
                        });
                    }
                }
                unreachable!("queued > 0 but no tenant had a job");
            }
            if g.stopped {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Stop the controller: wakes every runner; queued jobs are dropped
    /// (their connections are being torn down with the server).
    pub fn stop(&self) {
        let mut g = self.inner.lock().unwrap();
        g.stopped = true;
        g.queued = 0;
        for t in g.tenants.values_mut() {
            t.queue.clear();
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Per-tenant view for `op:"stat"`, first-seen order.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        let g = self.inner.lock().unwrap();
        g.order
            .iter()
            .map(|name| {
                let t = &g.tenants[name];
                TenantSnapshot {
                    name: name.clone(),
                    queued: t.queue.len(),
                    budget_used: t.budget.used(),
                    budget_limit: t.budget.limit(),
                    admitted: t.counters.admitted.load(Ordering::Relaxed),
                    rejected: t.counters.rejected.load(Ordering::Relaxed),
                    completed: t.counters.completed.load(Ordering::Relaxed),
                    errored: t.counters.errored.load(Ordering::Relaxed),
                    degraded: t.counters.degraded.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_core::prelude::Algorithm;

    fn job(tenant: &str, n: u64) -> Job {
        Job {
            conn: 1,
            seq: n,
            id: Some(n as f64),
            tenant: tenant.to_string(),
            spec: JoinSpec {
                algorithm: Algorithm::Pro,
                build: "r".into(),
                probe: "s".into(),
                deadline_ms: None,
                radix_bits: None,
                cache: true,
            },
            received: Instant::now(),
            expires: None,
            cancel: CancelToken::new(),
            queue_depth: 0,
        }
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let adm = Admission::new(1 << 30, 1 << 20, HashMap::new(), 16);
        // Tenant a floods; tenant b submits one.
        for i in 0..4 {
            adm.submit(job("a", i)).unwrap();
        }
        adm.submit(job("b", 100)).unwrap();
        let order: Vec<String> = (0..5).map(|_| adm.next().unwrap().job.tenant).collect();
        // b must be served second, not fifth.
        assert_eq!(order[1], "b");
        assert_eq!(order.iter().filter(|t| *t == "a").count(), 4);
    }

    #[test]
    fn bounded_queue_rejects_synchronously() {
        let adm = Admission::new(1 << 30, 1 << 20, HashMap::new(), 2);
        adm.submit(job("a", 0)).unwrap();
        adm.submit(job("a", 1)).unwrap();
        let err = adm.submit(job("a", 2)).unwrap_err();
        assert_eq!(err.code, "queue_full");
        let snap = adm.snapshot();
        assert_eq!(snap[0].rejected, 1);
        assert_eq!(snap[0].admitted, 2);
    }

    #[test]
    fn submit_stamps_queue_depth_at_entry() {
        let adm = Admission::new(1 << 30, 1 << 20, HashMap::new(), 16);
        for i in 0..3 {
            adm.submit(job("a", i)).unwrap();
        }
        let depths: Vec<usize> = (0..3)
            .map(|_| adm.next().unwrap().job.queue_depth)
            .collect();
        // Each job saw exactly the jobs ahead of it.
        assert_eq!(depths, vec![0, 1, 2]);
    }

    #[test]
    fn pinned_budgets_and_default_carve() {
        let mut pinned = HashMap::new();
        pinned.insert("vip".to_string(), 1 << 26);
        let adm = Admission::new(1 << 27, 1 << 20, pinned, 4);
        assert_eq!(adm.tenant_budget("vip").limit(), 1 << 26);
        assert_eq!(adm.tenant_budget("anon").limit(), 1 << 20);
        // Pinned above global clamps to global.
        let mut pinned = HashMap::new();
        pinned.insert("huge".to_string(), usize::MAX);
        let adm = Admission::new(1 << 20, 1 << 18, pinned, 4);
        assert_eq!(adm.tenant_budget("huge").limit(), 1 << 20);
    }

    #[test]
    fn stop_wakes_and_drains() {
        let adm = Arc::new(Admission::new(1 << 30, 1 << 20, HashMap::new(), 4));
        let a2 = Arc::clone(&adm);
        let h = std::thread::spawn(move || a2.next().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        adm.stop();
        assert!(h.join().unwrap());
        assert!(adm.submit(job("a", 0)).is_err());
    }
}
