//! Per-connection protocol state, shared by the Linux epoll reactor and
//! the portable blocking fallback: frame reassembly in, response bytes
//! out, and the in-flight cancel bookkeeping between them.
//!
//! `load`/`stat`/`flush` are answered inline (they are catalog/metadata
//! work, microseconds); `join` is submitted to admission control and
//! answered asynchronously through [`Shared::complete`], so one slow
//! join never head-of-line-blocks the other requests multiplexed on the
//! same connection.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mmjoin_core::prelude::CancelToken;

use crate::admission::Job;
use crate::protocol::{self, Frame, FrameReader, ProtoError, Request, MAX_FRAME};
use crate::Shared;

/// A connection may buffer at most this much un-sent response data
/// before it is declared overloaded and closed (a reader this far
/// behind is not coming back).
const MAX_OUT_BUFFER: usize = 64 << 20;

/// What [`ConnState::ingest`] tells the driver.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct IngestOutcome {
    /// Buffers exceeded sane bounds; close the connection.
    pub overloaded: bool,
}

pub(crate) struct ConnState {
    id: u64,
    reader: FrameReader,
    out: Vec<u8>,
    /// Bytes of `out` already written to the socket.
    out_pos: usize,
    /// Joins submitted but not yet completed: `(seq, cancel)`.
    inflight: Vec<(u64, CancelToken)>,
}

impl ConnState {
    pub(crate) fn new(id: u64) -> ConnState {
        ConnState {
            id,
            reader: FrameReader::new(),
            out: Vec::new(),
            out_pos: 0,
            inflight: Vec::new(),
        }
    }

    /// Feed freshly read bytes; parses and dispatches every complete
    /// frame they finish.
    pub(crate) fn ingest(&mut self, chunk: &[u8], shared: &Arc<Shared>) -> IngestOutcome {
        self.reader.push(chunk);
        while let Some(frame) = self.reader.next_frame() {
            shared.stats.frames.fetch_add(1, Ordering::Relaxed);
            match frame {
                Frame::Oversized(n) => {
                    shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    self.enqueue_response(&protocol::error_response(
                        None,
                        &ProtoError::new(
                            "bad_frame",
                            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
                        ),
                    ));
                }
                Frame::Payload(p) => self.handle_payload(&p, shared),
            }
        }
        IngestOutcome {
            overloaded: self.out.len() - self.out_pos > MAX_OUT_BUFFER
                || self.reader.buffered() > 2 * MAX_FRAME,
        }
    }

    fn handle_payload(&mut self, payload: &[u8], shared: &Arc<Shared>) {
        let env = match protocol::parse_request(payload) {
            Ok(env) => env,
            Err(e) => {
                // A request that failed to parse has no recoverable id;
                // the error is correlated by order on the client side.
                if e.code == "bad_frame" {
                    shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                }
                self.enqueue_response(&protocol::error_response(None, &e));
                return;
            }
        };
        let inline_started = Instant::now();
        match env.request {
            Request::Load(spec) => {
                let result = shared.catalog.load(&spec, shared.cfg.join_threads);
                let ok = result.is_ok();
                let resp = match result {
                    Ok(entry) => protocol::load_response(
                        env.id,
                        &entry.name,
                        entry.rel.len(),
                        entry.bytes(),
                        entry.version,
                    ),
                    Err(e) => protocol::error_response(env.id, &e),
                };
                self.record_op(shared, &env.tenant, "load", inline_started, ok);
                self.enqueue_response(&resp);
            }
            Request::Stat => {
                let body = shared.stat_json();
                self.record_op(shared, &env.tenant, "stat", inline_started, true);
                self.enqueue_response(&protocol::stat_response(env.id, &body));
            }
            Request::Flush => {
                let dropped = shared.cache.flush();
                self.record_op(shared, &env.tenant, "flush", inline_started, true);
                self.enqueue_response(&protocol::flush_response(env.id, dropped));
            }
            Request::Trace(spec) => {
                let (events, count, dropped) = shared.telemetry.render_trace(spec.max, spec.drain);
                let capacity = shared.telemetry.config().flight_capacity;
                self.record_op(shared, &env.tenant, "trace", inline_started, true);
                self.enqueue_response(&protocol::trace_response(
                    env.id, count, dropped, capacity, &events,
                ));
            }
            Request::Metrics => {
                let text = shared.metrics_text();
                self.record_op(shared, &env.tenant, "metrics", inline_started, true);
                self.enqueue_response(&protocol::metrics_response(env.id, &text));
            }
            Request::Join(spec) => {
                let now = Instant::now();
                let seq = shared.next_seq.fetch_add(1, Ordering::Relaxed);
                let cancel = CancelToken::new();
                let expires = spec.deadline_ms.map(|ms| now + Duration::from_millis(ms));
                let algo = spec.algorithm.name();
                let job = Job {
                    conn: self.id,
                    seq,
                    id: env.id,
                    tenant: env.tenant.clone(),
                    spec,
                    received: now,
                    expires,
                    cancel: cancel.clone(),
                    queue_depth: 0,
                };
                match shared.admission.submit(job) {
                    Ok(()) => self.inflight.push((seq, cancel)),
                    Err(e) => {
                        // Synchronous rejection still counts as a join
                        // request in telemetry (the self-consistency
                        // contract: every join answer is recorded).
                        shared.telemetry.record_join(crate::telemetry::JoinFacts {
                            seq,
                            tenant: env.tenant,
                            algo,
                            ok: false,
                            error_code: Some(e.code),
                            total_ms: now.elapsed().as_secs_f64() * 1e3,
                            queue_ms: 0.0,
                            queue_depth: shared.cfg.queue_depth,
                            cached: false,
                            degraded: false,
                            spill_bytes: 0,
                            matches: 0,
                            phases: Vec::new(),
                        });
                        self.enqueue_response(&protocol::error_response(env.id, &e));
                    }
                }
            }
        }
    }

    fn record_op(&self, shared: &Arc<Shared>, tenant: &str, op: &str, started: Instant, ok: bool) {
        shared
            .telemetry
            .record_op(tenant, op, started.elapsed().as_nanos() as u64, ok);
    }

    /// Frame a rendered JSON payload onto the write queue.
    pub(crate) fn enqueue_response(&mut self, payload: &str) {
        // Compact the consumed prefix before it grows unbounded.
        if self.out_pos > 0 && self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 1 << 20 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        self.out.extend_from_slice(&protocol::encode_frame(payload));
    }

    /// A join finished: release its cancel slot and queue the response.
    pub(crate) fn complete(&mut self, seq: u64, payload: &str) {
        self.inflight.retain(|(s, _)| *s != seq);
        self.enqueue_response(payload);
    }

    /// Response bytes not yet written.
    pub(crate) fn pending_out(&self) -> &[u8] {
        &self.out[self.out_pos..]
    }

    pub(crate) fn consume_out(&mut self, n: usize) {
        self.out_pos += n;
        debug_assert!(self.out_pos <= self.out.len());
    }

    /// The connection is gone: stop every join still probing for it.
    pub(crate) fn cancel_inflight(&mut self) {
        for (_, cancel) in self.inflight.drain(..) {
            cancel.cancel();
        }
    }
}
