//! Shared build-side cache: hot build sides prepared once via
//! [`BuildSide::prepare`] and probed by every tenant (DESIGN.md §15).
//!
//! Keyed on `(relation name, relation version, algorithm, radix bits)` —
//! exactly the inputs that determine the frozen partition + build
//! output. Byte-bounded LRU over [`BuildSide::memory_bytes`]; resident
//! cache bytes are a server-owned carve, deliberately *not* charged to
//! any tenant's budget (a shared side has no single owner — see the
//! invariants in DESIGN.md §15).
//!
//! Concurrent misses on the same key may both prepare; the second insert
//! wins and the loser's side is dropped when its probe finishes. That
//! duplicated work is benign (both sides are equal by construction), and
//! cheaper than holding a lock across a multi-millisecond build.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mmjoin_core::prelude::{Algorithm, BuildSide};

/// Cache identity of a frozen build side.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub relation: String,
    pub version: u64,
    pub algorithm: Algorithm,
    /// `None` = Equation-(1) default bits for the relation size.
    pub radix_bits: Option<u32>,
}

struct Slot {
    side: Arc<BuildSide>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Slot>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time counters for `op:"stat"`.
#[derive(Clone, Copy, Debug, Default)]
#[non_exhaustive]
pub struct CacheSnapshot {
    pub entries: usize,
    pub bytes: usize,
    pub capacity: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// Byte-bounded LRU of `Arc<BuildSide>`.
pub struct BuildCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl BuildCache {
    pub fn new(capacity_bytes: usize) -> BuildCache {
        BuildCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity_bytes,
        }
    }

    /// Look up a frozen side; counts a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<BuildSide>> {
        let mut g = self.inner.lock().unwrap();
        g.tick += 1;
        let tick = g.tick;
        match g.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let side = Arc::clone(&slot.side);
                g.hits += 1;
                Some(side)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly prepared side, evicting least-recently-used
    /// entries until it fits. A side larger than the whole cache is not
    /// cached at all (the caller still probes its own `Arc`).
    pub fn insert(&self, key: CacheKey, side: Arc<BuildSide>) {
        let bytes = side.memory_bytes();
        if bytes > self.capacity {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        g.tick += 1;
        let tick = g.tick;
        if let Some(old) = g.map.insert(
            key,
            Slot {
                side,
                bytes,
                last_used: tick,
            },
        ) {
            g.bytes -= old.bytes;
        }
        g.bytes += bytes;
        while g.bytes > self.capacity {
            let victim = g
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let s = g.map.remove(&k).expect("victim key just observed");
                    g.bytes -= s.bytes;
                    g.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Drop everything (the `op:"flush"` path); returns entries dropped.
    pub fn flush(&self) -> usize {
        let mut g = self.inner.lock().unwrap();
        let n = g.map.len();
        g.map.clear();
        g.bytes = 0;
        n
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        let g = self.inner.lock().unwrap();
        CacheSnapshot {
            entries: g.map.len(),
            bytes: g.bytes,
            capacity: self.capacity,
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_core::prelude::JoinConfig;
    use mmjoin_datagen::gen_build_dense;
    use mmjoin_util::Placement;

    fn prepared(rows: usize) -> Arc<BuildSide> {
        let r = gen_build_dense(rows, 1, Placement::Chunked { parts: 2 });
        let mut cfg = JoinConfig::new(2);
        cfg.simulate = false;
        cfg.key_domain = rows;
        BuildSide::prepare(Algorithm::Nopa, &r, &cfg).unwrap()
    }

    fn key(name: &str, version: u64) -> CacheKey {
        CacheKey {
            relation: name.into(),
            version,
            algorithm: Algorithm::Nopa,
            radix_bits: None,
        }
    }

    #[test]
    fn lru_evicts_oldest_when_over_capacity() {
        let a = prepared(2000);
        let per = a.memory_bytes();
        // Room for two sides, not three.
        let cache = BuildCache::new(per * 2 + per / 2);
        cache.insert(key("a", 1), a);
        cache.insert(key("b", 1), prepared(2000));
        assert!(cache.get(&key("a", 1)).is_some()); // refresh a
        cache.insert(key("c", 1), prepared(2000)); // evicts b
        assert!(cache.get(&key("b", 1)).is_none());
        assert!(cache.get(&key("a", 1)).is_some());
        assert!(cache.get(&key("c", 1)).is_some());
        let s = cache.snapshot();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.capacity);
    }

    #[test]
    fn version_bump_misses_and_flush_empties() {
        let cache = BuildCache::new(usize::MAX / 2);
        cache.insert(key("r", 1), prepared(1000));
        assert!(cache.get(&key("r", 1)).is_some());
        assert!(cache.get(&key("r", 2)).is_none()); // reloaded relation
        assert_eq!(cache.flush(), 1);
        assert_eq!(cache.snapshot().entries, 0);
    }

    #[test]
    fn side_larger_than_cache_is_not_cached() {
        let side = prepared(1000);
        let cache = BuildCache::new(side.memory_bytes() - 1);
        cache.insert(key("big", 1), side);
        assert_eq!(cache.snapshot().entries, 0);
    }
}
