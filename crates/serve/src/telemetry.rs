//! Live service telemetry (DESIGN.md §16): streaming per-tenant
//! latency histograms, a bounded query flight recorder, rolling-window
//! SLO tracking, and an online regression watch.
//!
//! Everything on the per-query hot path is wait-free or nearly so:
//! latency lands in [`LogHistogram`]s (atomic buckets), counters are
//! relaxed atomics, and the only locks taken per query are a short
//! registry/tenant-map lookup and the bounded reservoir/ring pushes —
//! no full-sample vectors, no sorts. Percentiles are estimated from
//! the histograms at read time (`stat`, Prometheus exposition), within
//! the bounded relative error documented in `mmjoin_util::telemetry`.
//!
//! The **regression watch** folds each closed window into a
//! ledger-compatible cell (a raw latency sample vector, seconds, like
//! the bench ledger's `SampleSet.secs`) and runs the sentinel's
//! Mann-Whitney U + bootstrap-CI machinery in-process: the latest
//! closed window is compared against the pooled preceding windows, and
//! a tenant is flagged only when the median shifted by at least
//! `watch_factor` *and* the shift is statistically significant (U-test
//! p ≤ `watch_alpha`, or disjoint bootstrap median CIs). Flags surface
//! in `stat` output — no offline `sentinel compare` needed.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use mmjoin_core::prelude::observe;
use mmjoin_util::stats;
use mmjoin_util::telemetry::{HistSnapshot, LogHistogram, Registry};

/// Telemetry knobs (operator decisions, like the rest of
/// [`ServeConfig`](crate::ServeConfig)).
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// SLO window length; each elapsed window is closed ("rotated") by
    /// the background sampler and fed to the regression watch. `0`
    /// disables the sampler (rotation only via explicit ticks).
    pub slo_window_secs: f64,
    /// Closed windows merged into the rolling `p50/p99/p999`.
    pub slo_windows: usize,
    /// Flight-recorder capacity (older records are dropped).
    pub flight_capacity: usize,
    /// Queries at or above this total latency are written to the
    /// slow-query log. `None` disables the log.
    pub slow_query_ms: Option<f64>,
    /// Slow-query log destination; `None` = stderr.
    pub slow_query_log: Option<PathBuf>,
    /// Minimum median shift (current/baseline) before a flag.
    pub watch_factor: f64,
    /// Mann-Whitney significance threshold.
    pub watch_alpha: f64,
    /// Minimum samples on each side before the watch judges a tenant.
    pub watch_min_samples: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            slo_window_secs: 5.0,
            slo_windows: 4,
            flight_capacity: 1024,
            slow_query_ms: None,
            slow_query_log: None,
            watch_factor: 1.5,
            watch_alpha: 0.01,
            watch_min_samples: 8,
        }
    }
}

/// Per-window raw-sample cap for the watch's ledger-compatible cells.
const RESERVOIR_CAP: usize = 512;
/// Closed window summaries retained per tenant.
const HISTORY_CAP: usize = 8;
/// Baseline windows pooled by the watch (most recent before current).
const BASELINE_WINDOWS: usize = 4;

/// Compact per-phase rollup retained in a flight record: the phase
/// name, its wall time (for the chrome-trace child span), and the
/// pre-rendered rollup JSON (`observe::phase_rollup_json` — executor
/// counters, spill/alloc counters, perf counter deltas or nulls).
#[derive(Clone, Debug)]
pub struct PhaseRollup {
    pub name: &'static str,
    pub wall_ms: f64,
    pub args_json: String,
}

/// One per-query flight record.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    pub seq: u64,
    pub tenant: String,
    /// Executed algorithm (post-degrade), or the requested one on error.
    pub algo: &'static str,
    pub ok: bool,
    pub error_code: Option<&'static str>,
    /// Query receipt, microseconds since server start (chrome ts).
    pub ts_us: f64,
    /// Frame receipt → response rendered (queue wait included).
    pub total_ms: f64,
    pub queue_ms: f64,
    /// Tenant queue length when the job was enqueued.
    pub queue_depth: usize,
    pub cached: bool,
    pub degraded: bool,
    pub spill_bytes: u64,
    pub matches: u64,
    pub phases: Vec<PhaseRollup>,
}

/// A closed SLO window: histogram snapshot for percentiles plus the
/// raw reservoir (the ledger-compatible cell the watch tests).
struct WindowSummary {
    hist: HistSnapshot,
    errors: u64,
    degraded: u64,
    samples: Vec<f64>,
}

/// The live (atomic) accumulation slot; two alternate per tenant.
struct Epoch {
    hist: LogHistogram,
    errors: AtomicU64,
    degraded: AtomicU64,
    samples: Mutex<Vec<f64>>,
    sample_seq: AtomicUsize,
}

impl Epoch {
    fn new() -> Epoch {
        Epoch {
            hist: LogHistogram::new(),
            errors: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
            sample_seq: AtomicUsize::new(0),
        }
    }

    fn reset(&self) {
        self.hist.reset();
        self.errors.store(0, Ordering::Relaxed);
        self.degraded.store(0, Ordering::Relaxed);
        self.samples.lock().unwrap().clear();
        self.sample_seq.store(0, Ordering::Relaxed);
    }
}

struct TenantTelemetry {
    name: String,
    /// Stable chrome-trace tid (1-based; 0 is the phases/meta row).
    tid: u64,
    /// Cumulative join-latency histogram (never rotated) — the totals
    /// the bench `--check` gate reconciles against requests sent.
    total: LogHistogram,
    errors: AtomicU64,
    degraded: AtomicU64,
    epochs: [Epoch; 2],
    cur: AtomicUsize,
    history: Mutex<VecDeque<WindowSummary>>,
}

impl TenantTelemetry {
    fn new(name: &str, tid: u64) -> TenantTelemetry {
        TenantTelemetry {
            name: name.to_string(),
            tid,
            total: LogHistogram::new(),
            errors: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            epochs: [Epoch::new(), Epoch::new()],
            cur: AtomicUsize::new(0),
            history: Mutex::new(VecDeque::new()),
        }
    }

    fn record(&self, ns: u64, secs: f64, ok: bool, degraded: bool) {
        self.total.record(ns);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let e = &self.epochs[self.cur.load(Ordering::Acquire) & 1];
        e.hist.record(ns);
        if !ok {
            e.errors.fetch_add(1, Ordering::Relaxed);
        }
        if degraded {
            e.degraded.fetch_add(1, Ordering::Relaxed);
        }
        // Bounded reservoir: keep the first CAP samples, then overwrite
        // round-robin so late samples stay represented.
        let idx = e.sample_seq.fetch_add(1, Ordering::Relaxed);
        let mut s = e.samples.lock().unwrap();
        if s.len() < RESERVOIR_CAP {
            s.push(secs);
        } else {
            s[idx % RESERVOIR_CAP] = secs;
        }
    }

    /// Close the live epoch into a [`WindowSummary`] and swap slots.
    fn rotate(&self) {
        let old = self.cur.load(Ordering::Acquire) & 1;
        // The other slot was reset when it was last closed; switch
        // recorders over, then drain the old slot. Records racing the
        // swap may land in either window — monitoring tolerance.
        self.cur.store(old ^ 1, Ordering::Release);
        let e = &self.epochs[old];
        let summary = WindowSummary {
            hist: e.hist.snapshot(),
            errors: e.errors.load(Ordering::Relaxed),
            degraded: e.degraded.load(Ordering::Relaxed),
            samples: e.samples.lock().unwrap().clone(),
        };
        e.reset();
        let mut h = self.history.lock().unwrap();
        if h.len() == HISTORY_CAP {
            h.pop_front();
        }
        h.push_back(summary);
    }

    /// Merged view of the last `windows` closed windows plus the live
    /// epoch — the rolling SLO percentiles and error/degraded counts.
    fn rolling(&self, windows: usize) -> (HistSnapshot, usize, u64, u64) {
        let live = &self.epochs[self.cur.load(Ordering::Acquire) & 1];
        let mut out = live.hist.snapshot();
        let mut errors = live.errors.load(Ordering::Relaxed);
        let mut degraded = live.degraded.load(Ordering::Relaxed);
        let h = self.history.lock().unwrap();
        let n = h.len().min(windows);
        for w in h.iter().rev().take(n) {
            out.merge(&w.hist);
            errors += w.errors;
            degraded += w.degraded;
        }
        (out, n, errors, degraded)
    }
}

/// One regression-watch verdict, rendered into `stat`.
#[derive(Clone, Debug)]
pub struct WatchFlag {
    pub tenant: String,
    pub baseline_p50_ms: f64,
    pub current_p50_ms: f64,
    pub ratio: f64,
    pub p_value: f64,
    pub ci_disjoint: bool,
    pub baseline_n: usize,
    pub current_n: usize,
}

#[derive(Default)]
struct WatchState {
    rotations: u64,
    flags_total: u64,
    flags: Vec<WatchFlag>,
}

/// The server's telemetry hub; one per [`Server`](crate::Server).
pub struct Telemetry {
    cfg: TelemetryConfig,
    registry: Arc<Registry>,
    started: Instant,
    tenants: RwLock<HashMap<String, Arc<TenantTelemetry>>>,
    tenant_order: Mutex<Vec<String>>,
    flight: Mutex<VecDeque<QueryRecord>>,
    flight_dropped: AtomicU64,
    watch: Mutex<WatchState>,
    slow_log: Option<Mutex<std::fs::File>>,
}

/// Everything the engine (or the synchronous reject path) reports
/// about one finished join request.
pub(crate) struct JoinFacts {
    pub seq: u64,
    pub tenant: String,
    pub algo: &'static str,
    pub ok: bool,
    pub error_code: Option<&'static str>,
    pub total_ms: f64,
    pub queue_ms: f64,
    pub queue_depth: usize,
    pub cached: bool,
    pub degraded: bool,
    pub spill_bytes: u64,
    pub matches: u64,
    pub phases: Vec<PhaseRollup>,
}

impl Telemetry {
    pub(crate) fn new(cfg: TelemetryConfig, started: Instant) -> Telemetry {
        let slow_log = cfg.slow_query_log.as_ref().and_then(|p| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map_err(|e| eprintln!("mmjoin-serve: cannot open slow-query log {p:?}: {e}"))
                .ok()
                .map(Mutex::new)
        });
        Telemetry {
            cfg,
            registry: Arc::new(Registry::new()),
            started,
            tenants: RwLock::new(HashMap::new()),
            tenant_order: Mutex::new(Vec::new()),
            flight: Mutex::new(VecDeque::new()),
            flight_dropped: AtomicU64::new(0),
            watch: Mutex::new(WatchState::default()),
            slow_log,
        }
    }

    pub(crate) fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// The server's metric registry (counters/gauges/histograms,
    /// labeled tenant × op × algorithm).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn tenant(&self, name: &str) -> Arc<TenantTelemetry> {
        if let Some(t) = self.tenants.read().unwrap().get(name) {
            return Arc::clone(t);
        }
        let mut w = self.tenants.write().unwrap();
        if let Some(t) = w.get(name) {
            return Arc::clone(t);
        }
        let mut order = self.tenant_order.lock().unwrap();
        let tid = order.len() as u64 + 1;
        order.push(name.to_string());
        let t = Arc::new(TenantTelemetry::new(name, tid));
        w.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Record one finished join request (any outcome) — histogram +
    /// counters + SLO window + flight record + slow-query log.
    pub(crate) fn record_join(&self, facts: JoinFacts) {
        let ns = (facts.total_ms.max(0.0) * 1e6) as u64;
        let labels: &[(&str, &str)] = &[
            ("tenant", &facts.tenant),
            ("op", "join"),
            ("algo", facts.algo),
        ];
        self.registry.counter("mmjoin_requests_total", labels).inc();
        if !facts.ok {
            self.registry.counter("mmjoin_errors_total", labels).inc();
        }
        if facts.degraded {
            self.registry.counter("mmjoin_degraded_total", labels).inc();
        }
        self.registry
            .histogram("mmjoin_request_latency_ns", labels)
            .record(ns);
        if facts.spill_bytes > 0 {
            self.registry
                .histogram("mmjoin_spill_bytes", labels)
                .record(facts.spill_bytes);
        }
        let tenant = self.tenant(&facts.tenant);
        tenant.record(ns, facts.total_ms / 1e3, facts.ok, facts.degraded);

        if let Some(thresh) = self.cfg.slow_query_ms {
            if facts.total_ms >= thresh {
                self.log_slow(&facts);
            }
        }

        let record = QueryRecord {
            seq: facts.seq,
            tenant: facts.tenant,
            algo: facts.algo,
            ok: facts.ok,
            error_code: facts.error_code,
            ts_us: (self.started.elapsed().as_secs_f64() * 1e6) - facts.total_ms * 1e3,
            total_ms: facts.total_ms,
            queue_ms: facts.queue_ms,
            queue_depth: facts.queue_depth,
            cached: facts.cached,
            degraded: facts.degraded,
            spill_bytes: facts.spill_bytes,
            matches: facts.matches,
            phases: facts.phases,
        };
        let mut f = self.flight.lock().unwrap();
        if f.len() >= self.cfg.flight_capacity.max(1) {
            f.pop_front();
            self.flight_dropped.fetch_add(1, Ordering::Relaxed);
        }
        f.push_back(record);
    }

    /// Record a non-join protocol op (inline: load/stat/flush/trace/
    /// metrics) into the labeled registry.
    pub(crate) fn record_op(&self, tenant: &str, op: &str, dur_ns: u64, ok: bool) {
        let labels: &[(&str, &str)] = &[("tenant", tenant), ("op", op), ("algo", "-")];
        self.registry.counter("mmjoin_requests_total", labels).inc();
        if !ok {
            self.registry.counter("mmjoin_errors_total", labels).inc();
        }
        self.registry
            .histogram("mmjoin_request_latency_ns", labels)
            .record(dur_ns);
    }

    fn log_slow(&self, f: &JoinFacts) {
        let line = format!(
            "[mmjoin-serve] slow-query uptime_ms={:.0} tenant={} algo={} total_ms={:.3} \
             queue_ms={:.3} depth={} cached={} degraded={} spill_bytes={} err={}\n",
            self.started.elapsed().as_secs_f64() * 1e3,
            f.tenant,
            f.algo,
            f.total_ms,
            f.queue_ms,
            f.queue_depth,
            f.cached,
            f.degraded,
            f.spill_bytes,
            f.error_code.unwrap_or("-"),
        );
        match &self.slow_log {
            Some(file) => {
                let _ = file.lock().unwrap().write_all(line.as_bytes());
            }
            None => eprint!("{line}"),
        }
    }

    /// Close every tenant's live window and run the regression watch
    /// over the closed windows. Called by the background sampler each
    /// `slo_window_secs`, and by `Server::telemetry_tick` in tests.
    pub(crate) fn rotate_and_watch(&self) {
        let tenants: Vec<Arc<TenantTelemetry>> =
            self.tenants.read().unwrap().values().cloned().collect();
        let mut flags = Vec::new();
        for t in &tenants {
            t.rotate();
            if let Some(flag) = self.judge(t) {
                flags.push(flag);
            }
        }
        let mut w = self.watch.lock().unwrap();
        w.rotations += 1;
        w.flags_total += flags.len() as u64;
        w.flags = flags;
    }

    /// The sentinel verdict for one tenant: latest closed window versus
    /// the pooled preceding windows.
    fn judge(&self, t: &TenantTelemetry) -> Option<WatchFlag> {
        let h = t.history.lock().unwrap();
        if h.len() < 2 {
            return None;
        }
        let current = &h[h.len() - 1];
        let start = h.len().saturating_sub(1 + BASELINE_WINDOWS);
        let baseline: Vec<f64> = h
            .iter()
            .skip(start)
            .take(h.len() - 1 - start)
            .flat_map(|w| w.samples.iter().copied())
            .collect();
        let cur = &current.samples;
        if cur.len() < self.cfg.watch_min_samples || baseline.len() < self.cfg.watch_min_samples {
            return None;
        }
        let med_base = stats::median(&baseline);
        let med_cur = stats::median(cur);
        if med_base <= 0.0 {
            return None;
        }
        let ratio = med_cur / med_base;
        if ratio < self.cfg.watch_factor {
            return None;
        }
        let mw = stats::mann_whitney(&baseline, cur);
        let ci_base = stats::bootstrap_median_ci(&baseline, 500, 0.99, 0x5EED);
        let ci_cur = stats::bootstrap_median_ci(cur, 500, 0.99, 0x5EED + 1);
        let ci_disjoint = ci_cur.0 > ci_base.1;
        if mw.p > self.cfg.watch_alpha && !ci_disjoint {
            return None;
        }
        Some(WatchFlag {
            tenant: t.name.clone(),
            baseline_p50_ms: med_base * 1e3,
            current_p50_ms: med_cur * 1e3,
            ratio,
            p_value: mw.p,
            ci_disjoint,
            baseline_n: baseline.len(),
            current_n: cur.len(),
        })
    }

    /// Flight-recorder drain for the `trace` wire op: the last `max`
    /// records rendered as chrome://tracing trace events. Returns
    /// `(events_json_array, record_count, dropped, capacity)`.
    pub(crate) fn render_trace(&self, max: Option<usize>, drain: bool) -> (String, usize, u64) {
        let records: Vec<QueryRecord> = {
            let mut f = self.flight.lock().unwrap();
            let take = max.unwrap_or(usize::MAX).min(f.len());
            let skip = f.len() - take;
            if drain {
                // Drain empties the recorder: the newest `take` records
                // are returned, the older `skip` count as dropped
                // (never exported).
                let tail: Vec<QueryRecord> = f.split_off(skip).into();
                if skip > 0 {
                    self.flight_dropped
                        .fetch_add(skip as u64, Ordering::Relaxed);
                    f.clear();
                }
                tail
            } else {
                f.iter().skip(skip).cloned().collect()
            }
        };
        let mut events = Vec::with_capacity(records.len() * 3 + 4);
        events.push(observe::trace_name_event(
            "process_name",
            1,
            0,
            "mmjoin-serve",
        ));
        let mut named: Vec<u64> = Vec::new();
        for r in &records {
            let tid = self.tenant(&r.tenant).tid;
            if !named.contains(&tid) {
                named.push(tid);
                events.push(observe::trace_name_event(
                    "thread_name",
                    1,
                    tid,
                    &format!("tenant {}", r.tenant),
                ));
            }
            let args = format!(
                "{{\"tenant\": \"{}\", \"seq\": {}, \"ok\": {}, \"error\": {}, \
                 \"queue_ms\": {:.3}, \"queue_depth\": {}, \"cached\": {}, \"degraded\": {}, \
                 \"spill_bytes\": {}, \"matches\": {}, \"phases\": [{}]}}",
                observe::json_escape(&r.tenant),
                r.seq,
                r.ok,
                match r.error_code {
                    Some(c) => format!("\"{c}\""),
                    None => "null".to_string(),
                },
                r.queue_ms,
                r.queue_depth,
                r.cached,
                r.degraded,
                r.spill_bytes,
                r.matches,
                r.phases
                    .iter()
                    .map(|p| p.args_json.clone())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            events.push(observe::trace_complete_event(
                r.algo,
                "join",
                1,
                tid,
                r.ts_us,
                r.total_ms * 1e3,
                &args,
            ));
            // Phase child spans, laid out sequentially after the queue
            // wait (their own extents are not retained in the rollup).
            let mut cursor = r.ts_us + r.queue_ms * 1e3;
            for p in &r.phases {
                events.push(observe::trace_complete_event(
                    p.name,
                    "phase",
                    1,
                    tid,
                    cursor,
                    p.wall_ms * 1e3,
                    &p.args_json,
                ));
                cursor += p.wall_ms * 1e3;
            }
        }
        let json = format!("[{}]", events.join(", "));
        (
            json,
            records.len(),
            self.flight_dropped.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn flight_len(&self) -> usize {
        self.flight.lock().unwrap().len()
    }

    /// The `"telemetry"` object of the `stat` document.
    pub(crate) fn stat_fragment(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!(
            "\"window_secs\":{},\"flight\":{{\"len\":{},\"capacity\":{},\"dropped\":{}}}",
            fmt_ms(self.cfg.slo_window_secs),
            self.flight_len(),
            self.cfg.flight_capacity,
            self.flight_dropped.load(Ordering::Relaxed)
        ));
        // Per-tenant SLO view, first-seen order.
        let order = self.tenant_order.lock().unwrap().clone();
        let tenants = self.tenants.read().unwrap();
        let mut overall = HistSnapshot::empty();
        let mut overall_errors = 0u64;
        let mut overall_degraded = 0u64;
        out.push_str(",\"tenants\":[");
        for (i, name) in order.iter().enumerate() {
            let Some(t) = tenants.get(name) else { continue };
            if i > 0 {
                out.push(',');
            }
            let total = t.total.snapshot();
            let errors = t.errors.load(Ordering::Relaxed);
            let degraded = t.degraded.load(Ordering::Relaxed);
            overall.merge(&total);
            overall_errors += errors;
            overall_degraded += degraded;
            let (rolling, windows, roll_err, roll_deg) = t.rolling(self.cfg.slo_windows);
            let rate = |n: u64| {
                if total.count == 0 {
                    0.0
                } else {
                    n as f64 / total.count as f64
                }
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"requests\":{},\"errors\":{},\"degraded\":{},\
                 \"error_rate\":{:.6},\"degraded_rate\":{:.6},\
                 \"rolling\":{{\"windows\":{windows},\"count\":{},\"errors\":{roll_err},\
                 \"degraded\":{roll_deg},{}}},\
                 \"total\":{{\"count\":{},{}}}}}",
                observe::json_escape(name),
                total.count,
                errors,
                degraded,
                rate(errors),
                rate(degraded),
                rolling.count,
                quantiles_ms(&rolling),
                total.count,
                quantiles_ms(&total),
            ));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"overall\":{{\"count\":{},\"errors\":{overall_errors},\
             \"degraded\":{overall_degraded},{}}}",
            overall.count,
            quantiles_ms(&overall)
        ));
        // Watch verdicts.
        let w = self.watch.lock().unwrap();
        out.push_str(&format!(
            ",\"watch\":{{\"status\":\"{}\",\"rotations\":{},\"flags_total\":{},\"flags\":[",
            if w.flags.is_empty() {
                "clean"
            } else {
                "regressed"
            },
            w.rotations,
            w.flags_total
        ));
        for (i, f) in w.flags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"baseline_p50_ms\":{:.3},\"current_p50_ms\":{:.3},\
                 \"ratio\":{:.3},\"p\":{:.6},\"ci_disjoint\":{},\"baseline_n\":{},\"current_n\":{}}}",
                observe::json_escape(&f.tenant),
                f.baseline_p50_ms,
                f.current_p50_ms,
                f.ratio,
                f.p_value,
                f.ci_disjoint,
                f.baseline_n,
                f.current_n
            ));
        }
        out.push_str("]}}");
        out
    }

    /// Cumulative join-request count across every tenant (the bench
    /// self-consistency gate: must equal join requests sent).
    pub fn join_count(&self) -> u64 {
        self.tenants
            .read()
            .unwrap()
            .values()
            .map(|t| t.total.count())
            .sum()
    }

    /// Whether the latest watch pass flagged anything.
    pub fn watch_flag_count(&self) -> (u64, u64) {
        let w = self.watch.lock().unwrap();
        (w.flags.len() as u64, w.flags_total)
    }
}

fn fmt_ms(v: f64) -> String {
    if v == v.trunc() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// `"p50_ms":..,"p99_ms":..,"p999_ms":..` from a snapshot (ns → ms).
fn quantiles_ms(s: &HistSnapshot) -> String {
    format!(
        "\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3}",
        s.quantile(0.5) as f64 / 1e6,
        s.quantile(0.99) as f64 / 1e6,
        s.quantile(0.999) as f64 / 1e6
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(tenant: &str, ms: f64) -> JoinFacts {
        JoinFacts {
            seq: 1,
            tenant: tenant.to_string(),
            algo: "PRO",
            ok: true,
            error_code: None,
            total_ms: ms,
            queue_ms: 0.1,
            queue_depth: 3,
            cached: false,
            degraded: false,
            spill_bytes: 0,
            matches: 10,
            phases: vec![PhaseRollup {
                name: "probe",
                wall_ms: ms * 0.9,
                args_json: "{\"name\": \"probe\"}".to_string(),
            }],
        }
    }

    #[test]
    fn watch_flags_a_4x_shift_and_stays_clean_without_one() {
        let tel = Telemetry::new(TelemetryConfig::default(), Instant::now());
        // Two clean baseline windows.
        for _ in 0..2 {
            for _ in 0..40 {
                tel.record_join(facts("t0", 10.0));
            }
            tel.rotate_and_watch();
        }
        assert_eq!(tel.watch_flag_count(), (0, 0), "clean run must not flag");
        // A 4x-slowed window.
        for _ in 0..40 {
            tel.record_join(facts("t0", 40.0));
        }
        tel.rotate_and_watch();
        let (now, total) = tel.watch_flag_count();
        assert_eq!(now, 1, "4x shift must flag within one window");
        assert_eq!(total, 1);
        let frag = tel.stat_fragment();
        assert!(frag.contains("\"status\":\"regressed\""));
        assert!(frag.contains("\"tenant\":\"t0\""));
    }

    #[test]
    fn flight_recorder_bounded_and_drained() {
        let cfg = TelemetryConfig {
            flight_capacity: 4,
            ..TelemetryConfig::default()
        };
        let tel = Telemetry::new(cfg, Instant::now());
        for i in 0..10 {
            let mut f = facts("t0", 1.0 + i as f64);
            f.seq = i;
            tel.record_join(f);
        }
        assert_eq!(tel.flight_len(), 4);
        let (events, count, dropped) = tel.render_trace(Some(2), true);
        assert_eq!(count, 2);
        // 6 evicted by the bounded ring + 2 discarded by the capped drain.
        assert_eq!(dropped, 8);
        assert_eq!(tel.flight_len(), 0);
        // Valid JSON array with X and M events.
        let v = mmjoin_util::jsonv::parse(&events).expect("trace events parse");
        let arr = v.as_arr().expect("array");
        assert!(arr.len() >= 3, "meta + 2 query events at least");
        assert!(arr
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
    }

    #[test]
    fn stat_fragment_is_valid_json_with_rolling_quantiles() {
        let tel = Telemetry::new(TelemetryConfig::default(), Instant::now());
        for _ in 0..100 {
            tel.record_join(facts("a\"b", 5.0));
        }
        let frag = tel.stat_fragment();
        let v = mmjoin_util::jsonv::parse(&frag).expect("fragment parses");
        let tenants = v.get("tenants").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(tenants.len(), 1);
        let t0 = &tenants[0];
        assert_eq!(t0.get("name").and_then(|n| n.as_str()), Some("a\"b"));
        assert_eq!(t0.get("requests").and_then(|n| n.as_num()), Some(100.0));
        let p50 = t0
            .get("rolling")
            .and_then(|r| r.get("p50_ms"))
            .and_then(|n| n.as_num())
            .unwrap();
        assert!((p50 - 5.0).abs() < 0.5, "rolling p50 {p50} ≈ 5ms");
        assert_eq!(
            v.get("watch")
                .and_then(|w| w.get("status"))
                .and_then(|s| s.as_str()),
            Some("clean")
        );
    }
}
