//! Join execution on behalf of an admitted job (DESIGN.md §15).
//!
//! A runner thread picks an [`Admitted`] job and:
//!
//! 1. checks the deadline (queue wait counts — an expired job returns a
//!    typed `timedout` without touching the relations);
//! 2. resolves the catalog relations;
//! 3. reserves a footprint estimate against the tenant *and* global
//!    budgets; if either refuses, the plan **degrades** to the spilling
//!    hybrid hash join under whatever grant is still available instead
//!    of rejecting;
//! 4. runs — through the shared build-side cache + fused pipeline for
//!    `PORTED` algorithms, the classic driver otherwise; a classic run
//!    that still overruns its reservation mid-flight
//!    (`MemoryBudgetExceeded`) is retried once, degraded;
//! 5. releases the reservation and renders the response frame.
//!
//! The engine consumes only `mmjoin_core::prelude` — anything it needs
//! beyond that is a public-API bug (see `prelude`'s docs).

use std::sync::atomic::Ordering;
use std::time::Instant;

use mmjoin_core::prelude::Pipeline;
use mmjoin_core::prelude::{is_ported, Algorithm, BuildSide, Join, JoinConfig, JoinError, Tuple};

use crate::admission::Admitted;
use crate::cache::CacheKey;
use crate::catalog::CatalogEntry;
use crate::protocol::{self, JoinOutcome, JoinSpec};
use crate::telemetry::{JoinFacts, PhaseRollup};
use crate::Shared;

use mmjoin_core::prelude::observe;
use mmjoin_core::prelude::PhaseStat;

/// Below this grant SHHJ can't even hold its partition buffers; the
/// degraded path never reserves less.
const SPILL_FLOOR: usize = 4 << 20;

/// Admission-time footprint estimate for one join: inputs are already
/// resident (catalog-owned), so this covers the *working set* — the
/// partitioned copies of both sides for radix joins, the table for
/// no-partitioning joins, sort runs for MWAY — with headroom. A rough
/// upper bound on purpose: overestimation degrades to spilling early,
/// underestimation is caught mid-run by `mem_limit` and retried
/// degraded, so precision only tunes which path gets taken.
pub fn estimate_bytes(algorithm: Algorithm, r_rows: usize, s_rows: usize) -> usize {
    let t = std::mem::size_of::<Tuple>();
    let r = r_rows * t;
    let s = s_rows * t;
    match algorithm {
        // Both sides copied into partitions, then per-partition tables.
        a if a.is_partitioned() => (r + s) * 2 + r,
        // Sort-merge: both sides into sorted runs plus merge space.
        Algorithm::Mway => (r + s) * 2 + (r + s) / 2,
        // Build table only (chained/linear/array over the domain).
        _ => r * 3 + SPILL_FLOOR / 4,
    }
}

struct Lease<'a> {
    adm: &'a Admitted,
    bytes: usize,
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.adm.budget.release(self.bytes);
        self.adm.global.release(self.bytes);
    }
}

/// Reserve `bytes` on both levels, or nothing.
fn reserve(adm: &Admitted, bytes: usize) -> Option<Lease<'_>> {
    adm.budget.try_reserve(bytes).ok()?;
    if adm.global.try_reserve(bytes).is_err() {
        adm.budget.release(bytes);
        return None;
    }
    Some(Lease { adm, bytes })
}

/// Largest reservation obtainable right now for the degraded path:
/// start from what both levels report free, floor at [`SPILL_FLOOR`],
/// and halve on contention races until something sticks.
fn reserve_degraded(adm: &Admitted, want: usize) -> Option<Lease<'_>> {
    let free_tenant = adm.budget.limit().saturating_sub(adm.budget.used());
    let free_global = adm.global.limit().saturating_sub(adm.global.used());
    let mut grant = want.min(free_tenant).min(free_global).max(SPILL_FLOOR);
    loop {
        if let Some(l) = reserve(adm, grant) {
            return Some(l);
        }
        if grant <= SPILL_FLOOR {
            // Budgets are transiently full of other jobs' leases; the
            // floor reservation itself failed. Run at the floor without
            // a lease rather than deadlock — SHHJ keeps itself honest
            // via its own `mem_limit`.
            return None;
        }
        grant = (grant / 2).max(SPILL_FLOOR);
    }
}

fn base_config(
    shared: &Shared,
    spec: &JoinSpec,
    job_deadline: Option<std::time::Duration>,
    cancel: mmjoin_core::prelude::CancelToken,
    build: &CatalogEntry,
    probe: &CatalogEntry,
) -> JoinConfig {
    let mut cfg = JoinConfig::new(shared.cfg.join_threads);
    cfg.simulate = false;
    cfg.key_domain = build.domain;
    cfg.probe_theta = probe.theta;
    cfg.radix_bits = spec.radix_bits;
    cfg.cancel = cancel;
    cfg.deadline = job_deadline;
    cfg
}

enum RunOutput {
    Classic(mmjoin_core::prelude::JoinResult),
    Pipelined {
        matches: u64,
        checksum: u64,
        cached: bool,
        phases: Vec<PhaseStat>,
    },
}

/// Flight-recorder rollups of a run's phases (DESIGN.md §16).
fn rollups(phases: &[PhaseStat]) -> Vec<PhaseRollup> {
    phases
        .iter()
        .map(|p| PhaseRollup {
            name: p.name,
            wall_ms: p.wall.as_secs_f64() * 1e3,
            args_json: observe::phase_rollup_json(p),
        })
        .collect()
}

fn run_resident(
    shared: &Shared,
    spec: &JoinSpec,
    cfg: &JoinConfig,
    build: &CatalogEntry,
    probe: &CatalogEntry,
) -> Result<RunOutput, JoinError> {
    if spec.cache && is_ported(spec.algorithm) {
        let key = CacheKey {
            relation: build.name.clone(),
            version: build.version,
            algorithm: spec.algorithm,
            radix_bits: spec.radix_bits,
        };
        let (side, cached) = match shared.cache.get(&key) {
            Some(side) => (side, true),
            None => {
                let side = BuildSide::prepare(spec.algorithm, &build.rel, cfg)?;
                shared.cache.insert(key, std::sync::Arc::clone(&side));
                (side, false)
            }
        };
        let out = Pipeline::new()
            .with_stage(side)
            .with_config(cfg.clone())
            .run(&probe.rel)?;
        return Ok(RunOutput::Pipelined {
            matches: out.matches,
            checksum: out.checksum,
            cached,
            phases: out.phases,
        });
    }
    Join::new(spec.algorithm)
        .with_config(cfg.clone())
        .run(&build.rel, &probe.rel)
        .map(RunOutput::Classic)
}

/// Execute one admitted job end to end; returns the response payload.
pub(crate) fn execute(shared: &Shared, adm: &Admitted) -> String {
    let job = &adm.job;
    let started = Instant::now();
    let queue_ms = started.duration_since(job.received).as_secs_f64() * 1e3;

    // Telemetry for a request that never produced a JoinOutcome: the
    // requested algorithm, the typed error code, latency to now.
    let record_err = |code: &'static str| {
        shared.telemetry.record_join(JoinFacts {
            seq: job.seq,
            tenant: job.tenant.clone(),
            algo: job.spec.algorithm.name(),
            ok: false,
            error_code: Some(code),
            total_ms: job.received.elapsed().as_secs_f64() * 1e3,
            queue_ms,
            queue_depth: job.queue_depth,
            cached: false,
            degraded: false,
            spill_bytes: 0,
            matches: 0,
            phases: Vec::new(),
        });
    };

    // Deadline already blown in the queue → typed timeout, nothing run.
    let remaining = match job.expires {
        Some(exp) => match exp.checked_duration_since(started) {
            Some(rem) => Some(rem),
            None => {
                adm.counters.errored.fetch_add(1, Ordering::Relaxed);
                let err = JoinError::Timedout {
                    phase: "queue",
                    elapsed: started.duration_since(job.received),
                    partial: Vec::new(),
                };
                record_err(err.code());
                return protocol::join_error_response(job.id, &err);
            }
        },
        None => None,
    };

    let (build, probe) = match (
        shared.catalog.get(&job.spec.build),
        shared.catalog.get(&job.spec.probe),
    ) {
        (Ok(b), Ok(p)) => (b, p),
        (Err(e), _) | (_, Err(e)) => {
            adm.counters.errored.fetch_add(1, Ordering::Relaxed);
            record_err(e.code);
            return protocol::error_response(job.id, &e);
        }
    };

    let want = estimate_bytes(job.spec.algorithm, build.rel.len(), probe.rel.len());
    let mut degraded = false;
    let lease = match reserve(adm, want) {
        Some(l) => Some(l),
        None => {
            degraded = true;
            reserve_degraded(adm, want)
        }
    };
    let grant = lease.as_ref().map(|l| l.bytes).unwrap_or(SPILL_FLOOR);

    let mut cfg = base_config(
        shared,
        &job.spec,
        remaining,
        job.cancel.clone(),
        &build,
        &probe,
    );
    cfg.mem_limit = Some(grant);

    let result = if degraded {
        run_degraded(shared, &cfg, grant, &build, &probe)
    } else {
        match run_resident(shared, &job.spec, &cfg, &build, &probe) {
            // A classic plan that outgrew its reservation mid-run:
            // retry once, degraded, rather than surfacing the budget
            // error to a client that never asked for a budget.
            Err(JoinError::MemoryBudgetExceeded { .. }) => {
                degraded = true;
                run_degraded(shared, &cfg, grant, &build, &probe)
            }
            other => other,
        }
    };

    drop(lease);

    match result {
        Ok(out) => {
            adm.counters.completed.fetch_add(1, Ordering::Relaxed);
            if degraded {
                adm.counters.degraded.fetch_add(1, Ordering::Relaxed);
                shared.stats.joins_degraded.fetch_add(1, Ordering::Relaxed);
            }
            shared.stats.joins_ok.fetch_add(1, Ordering::Relaxed);
            let (matches, checksum, cached, spill_bytes, phases) = match out {
                RunOutput::Classic(r) => {
                    let spilled = r.spill_totals().bytes_spilled;
                    (r.matches, r.checksum, false, spilled, rollups(&r.phases))
                }
                RunOutput::Pipelined {
                    matches,
                    checksum,
                    cached,
                    phases,
                } => (matches, checksum, cached, 0, rollups(&phases)),
            };
            let algorithm = if degraded {
                Algorithm::Shhj
            } else {
                job.spec.algorithm
            };
            shared.telemetry.record_join(JoinFacts {
                seq: job.seq,
                tenant: job.tenant.clone(),
                algo: algorithm.name(),
                ok: true,
                error_code: None,
                total_ms: job.received.elapsed().as_secs_f64() * 1e3,
                queue_ms,
                queue_depth: job.queue_depth,
                cached,
                degraded,
                spill_bytes,
                matches,
                phases,
            });
            protocol::join_response(
                job.id,
                &JoinOutcome {
                    algorithm,
                    matches,
                    checksum,
                    wall_ms: started.elapsed().as_secs_f64() * 1e3,
                    queue_ms,
                    cached,
                    degraded,
                    spill_bytes,
                },
            )
        }
        Err(err) => {
            adm.counters.errored.fetch_add(1, Ordering::Relaxed);
            shared.stats.joins_err.fetch_add(1, Ordering::Relaxed);
            record_err(err.code());
            protocol::join_error_response(job.id, &err)
        }
    }
}

/// The degraded path: spilling hybrid hash join under `grant` bytes,
/// spilling to the configured directory.
fn run_degraded(
    shared: &Shared,
    cfg: &JoinConfig,
    grant: usize,
    build: &CatalogEntry,
    probe: &CatalogEntry,
) -> Result<RunOutput, JoinError> {
    let mut cfg = cfg.clone();
    cfg.mem_limit = Some(grant);
    cfg.spill = true;
    if let Some(dir) = &shared.cfg.spill_dir {
        cfg.spill_dir = Some(dir.clone());
    }
    Join::new(Algorithm::Shhj)
        .with_config(cfg)
        .run(&build.rel, &probe.rel)
        .map(RunOutput::Classic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_scale_with_inputs_and_respect_family() {
        let part = estimate_bytes(Algorithm::Pro, 1 << 20, 1 << 23);
        let nop = estimate_bytes(Algorithm::Nop, 1 << 20, 1 << 23);
        // Partitioned joins copy the probe side too; NOP never does.
        assert!(part > nop);
        assert!(estimate_bytes(Algorithm::Pro, 2 << 20, 2 << 23) > part);
    }
}
