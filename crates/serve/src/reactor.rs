//! The Linux front-end: a single-threaded epoll reactor over raw
//! syscalls, in the repo's no-libc idiom (`core::arch::asm!` wrappers,
//! same shape as `mmjoin_util::perf` and `mmjoin_util::mem`).
//!
//! One thread owns every socket. Sockets are `std::net` handles flipped
//! to non-blocking; epoll (level-triggered) multiplexes them. Runner
//! threads never touch a socket — they push rendered response frames
//! onto [`Shared::completions`] and poke the reactor through a
//! `UnixStream` self-wake pair; the reactor drains completions onto the
//! owning connection's write queue. A connection that dies with joins
//! in flight gets its [`CancelToken`]s cancelled so the runners stop
//! probing for a reader that is gone.

#![cfg(target_os = "linux")]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::conn::ConnState;
use crate::Shared;

mod sys {
    //! `epoll_create1` / `epoll_ctl` / `epoll_pwait` / `close` via raw
    //! syscalls; negative return is `-errno`.

    #[cfg(target_arch = "x86_64")]
    pub mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    pub mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    #[cfg(target_arch = "x86_64")]
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    /// `struct epoll_event` — packed on x86_64 (kernel ABI), naturally
    /// aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Copy, Clone)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: usize = 1;
    pub const EPOLL_CTL_DEL: usize = 2;
    pub const EPOLL_CTL_MOD: usize = 3;

    const EPOLL_CLOEXEC: usize = 0x80000;

    fn check(ret: isize) -> std::io::Result<isize> {
        if ret < 0 {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1() -> std::io::Result<i32> {
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, events: u32, data: u64) -> std::io::Result<()> {
        let ev = EpollEvent { events, data };
        let ret = unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op,
                fd as usize,
                &ev as *const EpollEvent as usize,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    /// `epoll_pwait(..., sigmask = NULL)` — the only wait variant that
    /// exists on every architecture (aarch64 has no plain `epoll_wait`).
    pub fn epoll_wait(
        epfd: i32,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> std::io::Result<usize> {
        let ret = unsafe {
            syscall6(
                epfd_wait_nr(),
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as isize as usize,
                0,
                8,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n as usize),
            // A signal is not an error for a poll loop.
            Err(e) if e.raw_os_error() == Some(4 /* EINTR */) => Ok(0),
            Err(e) => Err(e),
        }
    }

    fn epfd_wait_nr() -> usize {
        nr::EPOLL_PWAIT
    }

    pub fn close(fd: i32) {
        unsafe {
            syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0);
        }
    }
}

/// epoll `data` tags: the listener and the self-wake pipe get reserved
/// ids; connections start above them.
const TAG_LISTENER: u64 = 0;
const TAG_WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

/// Poll granularity for the stop flag when the loop is otherwise idle.
const IDLE_TIMEOUT_MS: i32 = 100;

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Registered interest currently installed in the epoll set.
    want_write: bool,
}

pub(crate) struct Reactor {
    epfd: i32,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    shared: Arc<Shared>,
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

impl Reactor {
    /// Register the listener and the wake pipe; `wake_tx` goes into
    /// [`Shared`] for runners to poke.
    pub(crate) fn new(listener: TcpListener, shared: Arc<Shared>) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let epfd = sys::epoll_create1()?;
        sys::epoll_ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            sys::EPOLLIN,
            TAG_LISTENER,
        )?;
        sys::epoll_ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            wake_rx.as_raw_fd(),
            sys::EPOLLIN,
            TAG_WAKER,
        )?;
        *shared.waker.lock().unwrap() = Some(wake_tx);
        Ok(Reactor {
            epfd,
            listener,
            wake_rx,
            conns: HashMap::new(),
            next_id: FIRST_CONN,
            shared,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 128];
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let n = match sys::epoll_wait(self.epfd, &mut events, IDLE_TIMEOUT_MS) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in &events[..n] {
                let (tag, bits) = (ev.data, ev.events);
                match tag {
                    TAG_LISTENER => self.accept_ready(),
                    TAG_WAKER => self.drain_waker(),
                    id => self.conn_ready(id, bits),
                }
            }
            // Completions may land while we were handling sockets; the
            // waker byte covers the race, but drain opportunistically.
            self.drain_completions();
        }
        // Teardown: cancel whatever is still in flight.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    if sys::epoll_ctl(
                        self.epfd,
                        sys::EPOLL_CTL_ADD,
                        stream.as_raw_fd(),
                        sys::EPOLLIN | sys::EPOLLRDHUP,
                        id,
                    )
                    .is_err()
                    {
                        continue;
                    }
                    self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared.stats.open.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            state: ConnState::new(id),
                            want_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
        self.drain_completions();
    }

    fn drain_completions(&mut self) {
        let done: Vec<(u64, u64, String)> = {
            let mut g = self.shared.completions.lock().unwrap();
            std::mem::take(&mut *g)
        };
        for (id, seq, payload) in done {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.state.complete(seq, &payload);
                self.flush_conn(id);
            }
            // Unknown id: connection died before its join finished; the
            // response is dropped (its cancel token already fired).
        }
    }

    fn conn_ready(&mut self, id: u64, bits: u32) {
        if bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 {
            // Peer is gone (or half-closed); any buffered responses
            // have nowhere useful to go.
            self.close_conn(id);
            return;
        }
        if bits & sys::EPOLLIN != 0 && !self.read_conn(id) {
            return; // closed during read
        }
        if bits & sys::EPOLLOUT != 0 {
            self.flush_conn(id);
        }
    }

    /// Returns false if the connection was closed.
    fn read_conn(&mut self, id: u64) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.close_conn(id);
                    return false;
                }
                Ok(n) => {
                    let frames = conn.state.ingest(&buf[..n], &self.shared);
                    if frames.overloaded {
                        self.close_conn(id);
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(id);
                    return false;
                }
            }
        }
        self.flush_conn(id);
        self.conns.contains_key(&id)
    }

    /// Write as much buffered response data as the socket accepts;
    /// toggles `EPOLLOUT` interest to match what is left.
    fn flush_conn(&mut self, id: u64) {
        let mut close = false;
        let mut reinstall = None;
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        loop {
            let pending = conn.state.pending_out();
            if pending.is_empty() {
                break;
            }
            match conn.stream.write(pending) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => {
                    conn.state.consume_out(n);
                    self.shared
                        .stats
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if !close {
            let want = !conn.state.pending_out().is_empty();
            if want != conn.want_write {
                conn.want_write = want;
                let events = sys::EPOLLIN | sys::EPOLLRDHUP | if want { sys::EPOLLOUT } else { 0 };
                reinstall = Some((conn.stream.as_raw_fd(), events));
            }
        }
        if close {
            self.close_conn(id);
        } else if let Some((fd, events)) = reinstall {
            let _ = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, events, id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(mut conn) = self.conns.remove(&id) {
            let _ = sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
            conn.state.cancel_inflight();
            self.shared.stats.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}
