//! A minimal blocking client for the serve protocol — one frame out,
//! one frame in. Used by the integration tests, the load generator,
//! and the `mmjoin serve` smoke path; real clients only need ~40 lines
//! of any language that can write a 4-byte length prefix.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mmjoin_util::jsonv::{self, Value};

use crate::protocol::encode_frame;

pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bound every read so a wedged server fails a test instead of
    /// hanging it.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one request frame.
    pub fn send(&mut self, payload: &str) -> io::Result<()> {
        self.stream.write_all(&encode_frame(payload))
    }

    /// Ship raw bytes verbatim — for tests poking at framing itself.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read one response frame and parse it.
    pub fn recv(&mut self) -> io::Result<Value> {
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let n = u32::from_be_bytes(len) as usize;
        let mut payload = vec![0u8; n];
        self.stream.read_exact(&mut payload)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
        jsonv::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One request, one response.
    pub fn request(&mut self, payload: &str) -> io::Result<Value> {
        self.send(payload)?;
        self.recv()
    }

    /// The server's Prometheus text exposition via the `metrics` wire
    /// op (no HTTP endpoint needed).
    pub fn metrics_text(&mut self) -> io::Result<String> {
        let v = self.request(r#"{"op":"metrics"}"#)?;
        v.get("text")
            .and_then(|t| t.as_str())
            .map(|s| s.to_string())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "metrics response lacks text")
            })
    }
}
