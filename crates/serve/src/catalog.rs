//! The relation catalog: named, versioned, immutable relations shared
//! across tenants and join jobs.
//!
//! `op:"load"` materializes a relation server-side from the same
//! `mmjoin-datagen` distributions the harness uses (or from inline
//! tuples, for tests) and registers it under a name. Entries are
//! immutable once published — a re-`load` of the same name swaps in a
//! *new* entry with a bumped version and leaves old `Arc`s (in-flight
//! joins, cached build sides) untouched. Build-side cache keys embed the
//! version, so stale cached sides become unreachable on reload and age
//! out through LRU (DESIGN.md §15).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mmjoin_core::prelude::{Placement, Relation, Tuple};
use mmjoin_datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};

use crate::protocol::{LoadKind, LoadSpec, ProtoError};

/// Largest relation `op:"load"` will materialize (tuples). Keeps a
/// malicious or fat-fingered load from swallowing the host; the joins
/// themselves are budgeted separately by admission control.
pub const MAX_LOAD_ROWS: usize = 1 << 28;

/// An immutable published relation.
pub struct CatalogEntry {
    pub name: String,
    pub rel: Relation,
    /// Monotonic across the whole catalog; bumped on re-load.
    pub version: u64,
    /// Upper bound of the key domain (array joins size from this).
    pub domain: usize,
    /// Zipf skew the probe keys were drawn with (0 = uniform).
    pub theta: f64,
    /// `"build" | "probe_fk" | "probe_zipf" | "inline"` — for `stat`.
    pub kind: &'static str,
}

impl std::fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("rows", &self.rel.len())
            .field("version", &self.version)
            .field("domain", &self.domain)
            .field("theta", &self.theta)
            .field("kind", &self.kind)
            .finish()
    }
}

impl CatalogEntry {
    pub fn bytes(&self) -> usize {
        self.rel.len() * std::mem::size_of::<Tuple>()
    }
}

/// Name → entry map behind a read-mostly lock.
#[derive(Default)]
pub struct Catalog {
    map: RwLock<HashMap<String, Arc<CatalogEntry>>>,
    next_version: AtomicU64,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Generate and publish the relation described by `spec`. Returns
    /// the published entry (rows/bytes/version feed the response).
    pub fn load(
        &self,
        spec: &LoadSpec,
        placement_parts: usize,
    ) -> Result<Arc<CatalogEntry>, ProtoError> {
        if spec.rows > MAX_LOAD_ROWS {
            return Err(ProtoError::new(
                "bad_request",
                format!("'rows' exceeds the load cap of {MAX_LOAD_ROWS} tuples"),
            ));
        }
        let placement = Placement::Chunked {
            parts: placement_parts.max(1),
        };
        let (rel, domain, kind) = match &spec.kind {
            LoadKind::Build => (
                gen_build_dense(spec.rows, spec.seed, placement),
                spec.rows,
                "build",
            ),
            LoadKind::ProbeFk => (
                gen_probe_fk(spec.rows, spec.domain, spec.seed, placement),
                spec.domain,
                "probe_fk",
            ),
            LoadKind::ProbeZipf => (
                gen_probe_zipf(spec.rows, spec.domain, spec.theta, spec.seed, placement),
                spec.domain,
                "probe_zipf",
            ),
            LoadKind::Inline(tuples) => (
                Relation::from_tuples(tuples, placement),
                spec.domain,
                "inline",
            ),
        };
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(CatalogEntry {
            name: spec.name.clone(),
            rel,
            version,
            domain,
            theta: spec.theta,
            kind,
        });
        self.map
            .write()
            .unwrap()
            .insert(spec.name.clone(), Arc::clone(&entry));
        Ok(entry)
    }

    pub fn get(&self, name: &str) -> Result<Arc<CatalogEntry>, ProtoError> {
        self.map.read().unwrap().get(name).cloned().ok_or_else(|| {
            ProtoError::new("unknown_relation", format!("no relation named '{name}'"))
        })
    }

    /// Snapshot for `op:"stat"`, name-sorted for stable output.
    pub fn snapshot(&self) -> Vec<Arc<CatalogEntry>> {
        let mut v: Vec<_> = self.map.read().unwrap().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, kind: LoadKind, rows: usize, domain: usize) -> LoadSpec {
        LoadSpec {
            name: name.into(),
            kind,
            rows,
            domain,
            theta: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn reload_bumps_version_and_keeps_old_arcs_alive() {
        let c = Catalog::new();
        let first = c.load(&spec("r", LoadKind::Build, 100, 100), 2).unwrap();
        let second = c.load(&spec("r", LoadKind::Build, 200, 200), 2).unwrap();
        assert!(second.version > first.version);
        assert_eq!(first.rel.len(), 100); // old Arc untouched
        assert_eq!(c.get("r").unwrap().rel.len(), 200);
    }

    #[test]
    fn unknown_relation_is_typed() {
        let c = Catalog::new();
        assert_eq!(c.get("nope").unwrap_err().code, "unknown_relation");
    }
}
