//! `mmjoin-serve`: an async multi-tenant join service over the
//! `mmjoin_core::prelude` API (DESIGN.md §15).
//!
//! The front-end is a single-threaded epoll reactor over raw syscalls
//! (the repo's no-libc idiom; see [`reactor`]) speaking a length-prefixed
//! JSON protocol (see [`protocol`]). Joins are scheduled through an
//! admission controller — bounded fair queues per tenant, per-tenant
//! memory budgets carved from a global budget, degradation to the
//! spilling hybrid hash join instead of rejection (see [`admission`] and
//! [`engine`]) — and hot build sides are shared across tenants through a
//! byte-bounded LRU over [`BuildSide::prepare`] outputs (see [`cache`]).
//!
//! ```no_run
//! use mmjoin_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::spawn(ServeConfig::default()).unwrap();
//! let mut c = Client::connect(server.addr()).unwrap();
//! c.request(r#"{"op":"load","name":"r","rows":100000,"kind":"build"}"#).unwrap();
//! c.request(r#"{"op":"load","name":"s","rows":1000000,"kind":"probe_fk","domain":100000}"#)
//!     .unwrap();
//! let v = c.request(r#"{"op":"join","algo":"PRO","build":"r","probe":"s"}"#).unwrap();
//! assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
//! server.shutdown();
//! ```
//!
//! [`BuildSide::prepare`]: mmjoin_core::prelude::BuildSide::prepare

pub mod admission;
pub mod cache;
pub mod catalog;
pub mod client;
mod conn;
pub mod engine;
pub mod protocol;
pub mod telemetry;

#[cfg(not(target_os = "linux"))]
mod blocking;
#[cfg(target_os = "linux")]
mod reactor;

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mmjoin_core::prelude::observe;

pub use client::Client;

/// Server configuration. Knobs the protocol deliberately does **not**
/// expose (budgets, thread counts, spill placement) live here — they
/// are operator decisions, not per-request ones.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Runner threads executing admitted joins.
    pub runners: usize,
    /// Worker threads *inside* each join. Small by design: service
    /// throughput comes from concurrent runners, not per-join fan-out.
    pub join_threads: usize,
    /// Global memory budget all tenants' reservations carve from.
    pub global_budget_bytes: usize,
    /// Budget carved for a tenant not listed in `tenant_budgets`.
    pub default_tenant_budget_bytes: usize,
    /// Pinned per-tenant budgets (clamped to the global budget).
    pub tenant_budgets: Vec<(String, usize)>,
    /// Bounded per-tenant queue depth; overflow rejects `queue_full`.
    pub queue_depth: usize,
    /// Build-side cache capacity (a server-owned carve, not tenant-billed).
    pub cache_bytes: usize,
    /// Parent directory for degraded joins' spill runs (`None` = system tmp).
    pub spill_dir: Option<PathBuf>,
    /// Telemetry knobs: SLO windows, flight recorder, slow-query log,
    /// regression watch (see [`telemetry::TelemetryConfig`]).
    pub telemetry: telemetry::TelemetryConfig,
    /// Serve a Prometheus text exposition over plain HTTP at this
    /// address (`None` disables; the `metrics` wire op always works).
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            runners: (cores / 2).clamp(2, 8),
            join_threads: 2,
            global_budget_bytes: 1 << 30,
            default_tenant_budget_bytes: 256 << 20,
            tenant_budgets: Vec::new(),
            queue_depth: 64,
            cache_bytes: 256 << 20,
            spill_dir: None,
            telemetry: telemetry::TelemetryConfig::default(),
            metrics_addr: None,
        }
    }
}

impl ServeConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_runners(mut self, n: usize) -> Self {
        self.runners = n.max(1);
        self
    }

    pub fn with_join_threads(mut self, n: usize) -> Self {
        self.join_threads = n.max(1);
        self
    }

    pub fn with_global_budget(mut self, bytes: usize) -> Self {
        self.global_budget_bytes = bytes;
        self
    }

    pub fn with_default_tenant_budget(mut self, bytes: usize) -> Self {
        self.default_tenant_budget_bytes = bytes;
        self
    }

    /// Pin `tenant`'s budget carve (clamped to the global budget).
    pub fn with_tenant_budget(mut self, tenant: impl Into<String>, bytes: usize) -> Self {
        self.tenant_budgets.push((tenant.into(), bytes));
        self
    }

    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Replace the whole telemetry configuration.
    pub fn with_telemetry(mut self, t: telemetry::TelemetryConfig) -> Self {
        self.telemetry = t;
        self
    }

    /// SLO window length in seconds (`0` disables the background
    /// sampler; windows then rotate only via [`Server::telemetry_tick`]).
    pub fn with_slo_window_secs(mut self, secs: f64) -> Self {
        self.telemetry.slo_window_secs = secs.max(0.0);
        self
    }

    /// Log queries at or above this latency to the slow-query log.
    pub fn with_slow_query_ms(mut self, ms: f64) -> Self {
        self.telemetry.slow_query_ms = Some(ms.max(0.0));
        self
    }

    /// Slow-query log destination (default is stderr).
    pub fn with_slow_query_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.telemetry.slow_query_log = Some(path.into());
        self
    }

    /// Flight-recorder capacity (older query records are dropped).
    pub fn with_flight_capacity(mut self, n: usize) -> Self {
        self.telemetry.flight_capacity = n.max(1);
        self
    }

    /// Expose Prometheus metrics over HTTP at `addr` (port 0 works).
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }
}

/// Whole-server monotonic counters (rendered by `op:"stat"`).
#[derive(Default)]
pub(crate) struct ServerStats {
    pub accepted: AtomicU64,
    pub open: AtomicU64,
    pub frames: AtomicU64,
    pub bad_frames: AtomicU64,
    pub bytes_out: AtomicU64,
    pub joins_ok: AtomicU64,
    pub joins_err: AtomicU64,
    pub joins_degraded: AtomicU64,
}

/// Everything the front-end, runners, and `stat` share.
pub(crate) struct Shared {
    pub cfg: ServeConfig,
    pub catalog: catalog::Catalog,
    pub cache: cache::BuildCache,
    pub admission: admission::Admission,
    pub stats: ServerStats,
    pub telemetry: telemetry::Telemetry,
    pub stop: AtomicBool,
    pub started: Instant,
    pub next_seq: AtomicU64,
    /// Finished joins waiting for the reactor: `(conn, seq, payload)`.
    #[cfg(target_os = "linux")]
    pub completions: Mutex<Vec<(u64, u64, String)>>,
    /// Write end of the reactor's self-wake pipe.
    #[cfg(target_os = "linux")]
    pub waker: Mutex<Option<std::os::unix::net::UnixStream>>,
    /// Fallback front-end: per-connection completion channels.
    #[cfg(not(target_os = "linux"))]
    pub routes: Mutex<HashMap<u64, std::sync::mpsc::Sender<(u64, String)>>>,
}

impl Shared {
    fn new(cfg: ServeConfig) -> Shared {
        let pinned: HashMap<String, usize> = cfg.tenant_budgets.iter().cloned().collect();
        let admission = admission::Admission::new(
            cfg.global_budget_bytes,
            cfg.default_tenant_budget_bytes,
            pinned,
            cfg.queue_depth,
        );
        // Telemetry timestamps (chrome-trace `ts`) are relative to the
        // same instant `uptime_ms` counts from.
        let started = Instant::now();
        Shared {
            catalog: catalog::Catalog::new(),
            cache: cache::BuildCache::new(cfg.cache_bytes),
            admission,
            stats: ServerStats::default(),
            telemetry: telemetry::Telemetry::new(cfg.telemetry.clone(), started),
            stop: AtomicBool::new(false),
            started,
            next_seq: AtomicU64::new(1),
            #[cfg(target_os = "linux")]
            completions: Mutex::new(Vec::new()),
            #[cfg(target_os = "linux")]
            waker: Mutex::new(None),
            #[cfg(not(target_os = "linux"))]
            routes: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    /// Route a finished join's response back to its connection.
    pub(crate) fn complete(&self, conn: u64, seq: u64, payload: String) {
        #[cfg(target_os = "linux")]
        {
            self.completions.lock().unwrap().push((conn, seq, payload));
            if let Some(w) = self.waker.lock().unwrap().as_ref() {
                use std::io::Write;
                let _ = (&mut &*w).write(&[1u8]);
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let tx = self.routes.lock().unwrap().get(&conn).cloned();
            if let Some(tx) = tx {
                let _ = tx.send((seq, payload));
            }
        }
    }

    fn wake(&self) {
        #[cfg(target_os = "linux")]
        if let Some(w) = self.waker.lock().unwrap().as_ref() {
            use std::io::Write;
            let _ = (&mut &*w).write(&[1u8]);
        }
    }

    /// The `op:"stat"` document body.
    pub(crate) fn stat_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!(
            "\"uptime_ms\":{},\"connections\":{{\"accepted\":{},\"open\":{}}},\
             \"frames\":{},\"bad_frames\":{},\"bytes_out\":{},\
             \"joins\":{{\"ok\":{},\"err\":{},\"degraded\":{}}}",
            self.started.elapsed().as_millis(),
            self.stats.accepted.load(Ordering::Relaxed),
            self.stats.open.load(Ordering::Relaxed),
            self.stats.frames.load(Ordering::Relaxed),
            self.stats.bad_frames.load(Ordering::Relaxed),
            self.stats.bytes_out.load(Ordering::Relaxed),
            self.stats.joins_ok.load(Ordering::Relaxed),
            self.stats.joins_err.load(Ordering::Relaxed),
            self.stats.joins_degraded.load(Ordering::Relaxed),
        ));
        let c = self.cache.snapshot();
        out.push_str(&format!(
            ",\"cache\":{{\"entries\":{},\"bytes\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}}",
            c.entries, c.bytes, c.capacity, c.hits, c.misses, c.evictions
        ));
        out.push_str(&format!(
            ",\"global_budget\":{{\"used\":{},\"limit\":{}}}",
            self.admission.global_budget().used(),
            self.admission.global_budget().limit()
        ));
        out.push_str(",\"tenants\":[");
        for (i, t) in self.admission.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"queued\":{},\"budget\":{{\"used\":{},\"limit\":{}}},\
                 \"admitted\":{},\"rejected\":{},\"completed\":{},\"errored\":{},\"degraded\":{}}}",
                observe::json_escape(&t.name),
                t.queued,
                t.budget_used,
                t.budget_limit,
                t.admitted,
                t.rejected,
                t.completed,
                t.errored,
                t.degraded
            ));
        }
        out.push_str("],\"catalog\":[");
        for (i, e) in self.catalog.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"rows\":{},\"bytes\":{},\"version\":{},\"kind\":\"{}\"}}",
                observe::json_escape(&e.name),
                e.rel.len(),
                e.bytes(),
                e.version,
                e.kind
            ));
        }
        out.push_str("],\"telemetry\":");
        out.push_str(&self.telemetry.stat_fragment());
        out.push('}');
        out
    }

    /// The Prometheus text exposition (also served over HTTP when
    /// `metrics_addr` is configured).
    pub(crate) fn metrics_text(&self) -> String {
        self.telemetry.registry().expose_prometheus()
    }
}

/// A running join service; dropping it without [`Server::shutdown`]
/// detaches the threads (they stop when the process exits).
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the front-end and the runner pool, return immediately.
    pub fn spawn(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let runners = cfg.runners;
        let shared = Arc::new(Shared::new(cfg));
        let mut threads = Vec::with_capacity(runners + 3);
        for i in 0..runners {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mmjoin-serve-run{i}"))
                    .spawn(move || runner_loop(sh))
                    .expect("spawn runner"),
            );
        }
        #[cfg(target_os = "linux")]
        {
            let r = reactor::Reactor::new(listener, Arc::clone(&shared))?;
            threads.push(
                std::thread::Builder::new()
                    .name("mmjoin-serve-epoll".to_string())
                    .spawn(move || r.run())
                    .expect("spawn reactor"),
            );
        }
        #[cfg(not(target_os = "linux"))]
        {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mmjoin-serve-accept".to_string())
                    .spawn(move || blocking::run(listener, sh))
                    .expect("spawn acceptor"),
            );
        }
        if shared.cfg.telemetry.slo_window_secs > 0.0 {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mmjoin-serve-slo".to_string())
                    .spawn(move || sampler_loop(sh))
                    .expect("spawn sampler"),
            );
        }
        if let Some(l) = metrics_listener {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mmjoin-serve-metrics".to_string())
                    .spawn(move || metrics_loop(l, sh))
                    .expect("spawn metrics"),
            );
        }
        Ok(Server {
            addr,
            metrics_addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The Prometheus HTTP endpoint's bound address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The Prometheus text exposition (what the HTTP endpoint and the
    /// `metrics` wire op serve).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Close every tenant's live SLO window and run the regression
    /// watch — what the background sampler does each `slo_window_secs`.
    /// Public so tests (and embedders with their own clocks) can drive
    /// window rotation deterministically.
    pub fn telemetry_tick(&self) {
        self.shared.telemetry.rotate_and_watch();
    }

    /// The same JSON body a `stat` request returns, for embedders and
    /// the CLI's periodic status line.
    pub fn stat_json(&self) -> String {
        self.shared.stat_json()
    }

    /// Stop accepting, cancel queued work, join every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.admission.stop();
        self.shared.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn runner_loop(shared: Arc<Shared>) {
    while let Some(adm) = shared.admission.next() {
        let payload = engine::execute(&shared, &adm);
        shared.complete(adm.job.conn, adm.job.seq, payload);
    }
}

/// Background SLO sampler: rotate windows + run the regression watch
/// every `slo_window_secs`, polling the stop flag at 50ms granularity.
fn sampler_loop(shared: Arc<Shared>) {
    let window = std::time::Duration::from_secs_f64(shared.cfg.telemetry.slo_window_secs);
    let tick = std::time::Duration::from_millis(50);
    let mut last = Instant::now();
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(tick.min(window));
        if last.elapsed() >= window {
            shared.telemetry.rotate_and_watch();
            last = Instant::now();
        }
    }
}

/// Minimal Prometheus scrape endpoint: every connection gets the text
/// exposition as an `HTTP/1.0 200`, whatever it asked (the path is not
/// inspected — this serves exactly one document).
fn metrics_loop(listener: TcpListener, shared: Arc<Shared>) {
    use std::io::{Read, Write};
    listener
        .set_nonblocking(true)
        .expect("metrics listener nonblocking");
    let tick = std::time::Duration::from_millis(50);
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut sock, _)) => {
                let _ = sock.set_read_timeout(Some(std::time::Duration::from_millis(500)));
                // Drain the request line + headers (best effort).
                let mut buf = [0u8; 4096];
                let _ = sock.read(&mut buf);
                let body = shared.metrics_text();
                let resp = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = sock.write_all(resp.as_bytes());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(tick),
            Err(_) => std::thread::sleep(tick),
        }
    }
}
