//! Wire protocol of the join service (DESIGN.md §15).
//!
//! Frames are `4-byte big-endian length ‖ UTF-8 JSON`. The length covers
//! the JSON payload only and must not exceed [`MAX_FRAME`]. Keeping the
//! length outside the JSON means a malformed payload never desynchronizes
//! the stream: the server answers with a `bad_frame` error and keeps the
//! connection — framing integrity survives payload garbage.
//!
//! Requests are JSON objects with an `"op"` discriminator plus an
//! optional client-chosen `"id"` (echoed verbatim in the response) and an
//! optional `"tenant"` (admission-control identity, default
//! `"default"`). Responses carry `"ok": true|false`; failures embed an
//! `"error"` object whose `"code"` strings are a compatibility contract
//! (see `JoinError::code` and DESIGN.md §15). Join responses may arrive
//! out of submission order — correlate by `"id"`, not position.

use mmjoin_core::prelude::observe;
use mmjoin_core::prelude::{Algorithm, JoinError, Tuple};
use mmjoin_util::jsonv::{self, Value};

/// Hard cap on a frame payload. Larger advertisements are answered with
/// `bad_frame` and the payload is discarded byte-for-byte so the stream
/// stays framed.
pub const MAX_FRAME: usize = 8 << 20;

/// A protocol-level failure: everything that can go wrong before (or
/// instead of) running a join. Join-execution failures are carried as
/// [`JoinError`] and serialized via [`observe::error_json`] so the two
/// surfaces share one code namespace.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    /// Stable machine-readable code (compatibility contract).
    pub code: &'static str,
    /// Human-oriented detail; no stability promise.
    pub message: String,
}

impl ProtoError {
    pub fn new(code: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    /// `{"code": .., "message": ..}` — same shape as
    /// [`observe::error_json`] produces for [`JoinError`]s.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"message\":\"{}\"}}",
            self.code,
            observe::json_escape(&self.message)
        )
    }
}

/// Everything a client can ask for.
#[derive(Clone, Debug)]
pub enum Request {
    Load(LoadSpec),
    Join(JoinSpec),
    Stat,
    /// Drop every cached build side (used to force cold runs).
    Flush,
    /// Drain (or peek at) the query flight recorder as chrome-trace
    /// events (DESIGN.md §16; added post-§15 as an append-only op).
    Trace(TraceSpec),
    /// Prometheus text exposition of the metric registry (append-only
    /// op, same contract as `trace`).
    Metrics,
}

/// `op:"trace"` options.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Return at most this many of the newest records (default: all).
    pub max: Option<usize>,
    /// Remove returned records from the recorder (default true).
    pub drain: bool,
}

/// How `op:"load"` materializes a relation server-side. Relations are
/// generated from the same `mmjoin-datagen` distributions the harness
/// uses, so a client can reproduce any catalog relation locally from
/// `(kind, rows, domain, theta, seed)` alone — that is how the smoke
/// gate cross-checks server checksums against direct execution.
#[derive(Clone, Debug)]
pub enum LoadKind {
    /// Dense build side: keys are a permutation of `1..=rows`.
    Build,
    /// Foreign-key probe side: uniform keys over `1..=domain`.
    ProbeFk,
    /// Skewed probe side: Zipf(theta) keys over `1..=domain`.
    ProbeZipf,
    /// Explicit tuples shipped inline (tests; small relations only).
    Inline(Vec<Tuple>),
}

#[derive(Clone, Debug)]
pub struct LoadSpec {
    pub name: String,
    pub kind: LoadKind,
    pub rows: usize,
    /// Key domain (`probe_*` kinds: the build cardinality they target).
    pub domain: usize,
    pub theta: f64,
    pub seed: u64,
}

#[derive(Clone, Debug)]
pub struct JoinSpec {
    pub algorithm: Algorithm,
    /// Catalog name of the build relation.
    pub build: String,
    /// Catalog name of the probe relation.
    pub probe: String,
    /// Wall-clock budget measured from frame receipt; queue wait counts.
    pub deadline_ms: Option<u64>,
    pub radix_bits: Option<u32>,
    /// Share/reuse the build side through the server cache (default
    /// true; only effective for `PORTED` pipeline algorithms).
    pub cache: bool,
}

/// A parsed request envelope: `(id, tenant, request)`.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Echoed back verbatim (as a JSON number) when present.
    pub id: Option<f64>,
    pub tenant: String,
    pub request: Request,
}

fn bad(msg: impl Into<String>) -> ProtoError {
    ProtoError::new("bad_request", msg)
}

fn opt_num(v: &Value, key: &str) -> Result<Option<f64>, ProtoError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_num()
            .map(Some)
            .ok_or_else(|| bad(format!("field '{key}' must be a number"))),
    }
}

fn opt_usize(v: &Value, key: &str) -> Result<Option<usize>, ProtoError> {
    match opt_num(v, key)? {
        None => Ok(None),
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(Some(n as usize)),
        Some(_) => Err(bad(format!("field '{key}' must be a non-negative integer"))),
    }
}

fn req_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ProtoError> {
    v.get(key)
        .and_then(|x| x.as_str())
        .ok_or_else(|| bad(format!("missing string field '{key}'")))
}

/// Parse one frame payload into an [`Envelope`].
pub fn parse_request(payload: &[u8]) -> Result<Envelope, ProtoError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtoError::new("bad_frame", "frame payload is not UTF-8"))?;
    let v = jsonv::parse(text).map_err(|e| ProtoError::new("bad_frame", e))?;
    // A non-object (or missing "op") is a request-shape error, not a
    // frame error: the JSON itself was fine, so the stream is healthy.
    if !matches!(v, Value::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    let op = req_str(&v, "op")?;
    let id = opt_num(&v, "id")?;
    let tenant = match v.get("tenant") {
        None => "default".to_string(),
        Some(t) => t
            .as_str()
            .ok_or_else(|| bad("field 'tenant' must be a string"))?
            .to_string(),
    };
    let request = match op {
        "load" => Request::Load(parse_load(&v)?),
        "join" => Request::Join(parse_join(&v)?),
        "stat" => Request::Stat,
        "flush" => Request::Flush,
        "trace" => {
            let drain = match v.get("drain") {
                None => true,
                Some(d) => d
                    .as_bool()
                    .ok_or_else(|| bad("field 'drain' must be a boolean"))?,
            };
            Request::Trace(TraceSpec {
                max: opt_usize(&v, "max")?,
                drain,
            })
        }
        "metrics" => Request::Metrics,
        other => return Err(bad(format!("unknown op '{other}'"))),
    };
    Ok(Envelope {
        id,
        tenant,
        request,
    })
}

fn parse_load(v: &Value) -> Result<LoadSpec, ProtoError> {
    let name = req_str(v, "name")?.to_string();
    if name.is_empty() || name.len() > 256 {
        return Err(bad("relation name must be 1..=256 bytes"));
    }
    let theta = opt_num(v, "theta")?.unwrap_or(0.0);
    let seed = opt_num(v, "seed")?.unwrap_or(42.0) as u64;
    if let Some(tuples) = v.get("tuples") {
        let arr = tuples
            .as_arr()
            .ok_or_else(|| bad("field 'tuples' must be an array of [key, payload] pairs"))?;
        let mut out = Vec::with_capacity(arr.len());
        let mut domain = 0usize;
        for pair in arr {
            let p = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("each tuple must be a [key, payload] pair"))?;
            let key = p[0]
                .as_num()
                .filter(|k| *k >= 0.0 && *k <= u32::MAX as f64)
                .ok_or_else(|| bad("tuple key out of u32 range"))? as u32;
            let payload =
                p[1].as_num()
                    .filter(|k| *k >= 0.0 && *k <= u32::MAX as f64)
                    .ok_or_else(|| bad("tuple payload out of u32 range"))? as u32;
            domain = domain.max(key as usize);
            out.push(Tuple { key, payload });
        }
        let rows = out.len();
        return Ok(LoadSpec {
            name,
            kind: LoadKind::Inline(out),
            rows,
            domain,
            theta,
            seed,
        });
    }
    let rows = opt_usize(v, "rows")?.ok_or_else(|| bad("missing field 'rows'"))?;
    if rows == 0 {
        return Err(bad("'rows' must be positive"));
    }
    let kind_name = v.get("kind").and_then(|k| k.as_str()).unwrap_or("build");
    let domain = opt_usize(v, "domain")?.unwrap_or(rows);
    let kind = match kind_name {
        "build" => LoadKind::Build,
        "probe_fk" => LoadKind::ProbeFk,
        "probe_zipf" => LoadKind::ProbeZipf,
        other => return Err(bad(format!("unknown load kind '{other}'"))),
    };
    Ok(LoadSpec {
        name,
        kind,
        rows,
        domain,
        theta,
        seed,
    })
}

fn parse_join(v: &Value) -> Result<JoinSpec, ProtoError> {
    let algo_name = v.get("algo").and_then(|a| a.as_str()).unwrap_or("PRO");
    let algorithm = Algorithm::from_name(algo_name)
        .ok_or_else(|| ProtoError::new("unknown_algorithm", format!("'{algo_name}'")))?;
    let build = req_str(v, "build")?.to_string();
    let probe = req_str(v, "probe")?.to_string();
    let deadline_ms = opt_num(v, "deadline_ms")?.map(|n| n.max(0.0) as u64);
    let radix_bits = opt_usize(v, "bits")?.map(|b| b as u32);
    let cache = match v.get("cache") {
        None => true,
        Some(c) => c
            .as_bool()
            .ok_or_else(|| bad("field 'cache' must be a boolean"))?,
    };
    Ok(JoinSpec {
        algorithm,
        build,
        probe,
        deadline_ms,
        radix_bits,
        cache,
    })
}

// ---------------------------------------------------------------------
// Response rendering (hand-rolled JSON, matching the repo-wide idiom).
// ---------------------------------------------------------------------

fn id_field(id: Option<f64>) -> String {
    match id {
        Some(n) if n.fract() == 0.0 => format!("\"id\":{},", n as i64),
        Some(n) => format!("\"id\":{n},"),
        None => String::new(),
    }
}

/// `{"id":..,"ok":false,"error":{..}}` from a protocol error.
pub fn error_response(id: Option<f64>, err: &ProtoError) -> String {
    format!(
        "{{{}\"ok\":false,\"error\":{}}}",
        id_field(id),
        err.to_json()
    )
}

/// `{"id":..,"ok":false,"error":{..}}` from a typed join error,
/// serialized through the shared [`observe::error_json`] form.
pub fn join_error_response(id: Option<f64>, err: &JoinError) -> String {
    format!(
        "{{{}\"ok\":false,\"error\":{}}}",
        id_field(id),
        observe::error_json(err)
    )
}

/// Successful `load`.
pub fn load_response(
    id: Option<f64>,
    name: &str,
    rows: usize,
    bytes: usize,
    version: u64,
) -> String {
    format!(
        "{{{}\"ok\":true,\"op\":\"load\",\"name\":\"{}\",\"rows\":{rows},\"bytes\":{bytes},\"version\":{version}}}",
        id_field(id),
        observe::json_escape(name)
    )
}

/// Outcome facts of a successful join, rendered into the response frame.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    pub algorithm: Algorithm,
    pub matches: u64,
    /// Order-independent digest; hex so 64-bit values survive JSON.
    pub checksum: u64,
    pub wall_ms: f64,
    pub queue_ms: f64,
    /// Served from (or inserted into) the build-side cache.
    pub cached: bool,
    /// Admission degraded the plan to the spilling join.
    pub degraded: bool,
    pub spill_bytes: u64,
}

/// Successful `join`.
pub fn join_response(id: Option<f64>, o: &JoinOutcome) -> String {
    format!(
        "{{{}\"ok\":true,\"op\":\"join\",\"algo\":\"{}\",\"matches\":{},\"checksum\":\"{:016x}\",\
         \"wall_ms\":{:.3},\"queue_ms\":{:.3},\"cached\":{},\"degraded\":{},\"spill_bytes\":{}}}",
        id_field(id),
        o.algorithm.name(),
        o.matches,
        o.checksum,
        o.wall_ms,
        o.queue_ms,
        o.cached,
        o.degraded,
        o.spill_bytes
    )
}

/// Successful `flush`.
pub fn flush_response(id: Option<f64>, dropped: usize) -> String {
    format!(
        "{{{}\"ok\":true,\"op\":\"flush\",\"dropped\":{dropped}}}",
        id_field(id)
    )
}

/// Successful `stat` — `body` is the pre-rendered stats document.
pub fn stat_response(id: Option<f64>, body: &str) -> String {
    format!(
        "{{{}\"ok\":true,\"op\":\"stat\",\"stat\":{body}}}",
        id_field(id)
    )
}

/// Successful `trace` — `events` is a pre-rendered chrome-trace event
/// array (saving it verbatim yields a file chrome://tracing loads).
pub fn trace_response(
    id: Option<f64>,
    count: usize,
    dropped: u64,
    capacity: usize,
    events: &str,
) -> String {
    format!(
        "{{{}\"ok\":true,\"op\":\"trace\",\"count\":{count},\"dropped\":{dropped},\
         \"capacity\":{capacity},\"events\":{events}}}",
        id_field(id)
    )
}

/// Successful `metrics` — the Prometheus exposition as a JSON string.
pub fn metrics_response(id: Option<f64>, text: &str) -> String {
    format!(
        "{{{}\"ok\":true,\"op\":\"metrics\",\"text\":\"{}\"}}",
        id_field(id),
        observe::json_escape(text)
    )
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Prefix `payload` with its 4-byte big-endian length.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let b = payload.as_bytes();
    let mut out = Vec::with_capacity(4 + b.len());
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
    out
}

/// One decoded item from the byte stream.
#[derive(Debug, PartialEq)]
pub enum Frame {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer advertised a length above [`MAX_FRAME`]; the reader is
    /// discarding that many bytes to stay in sync. Answer with
    /// `bad_frame` and keep the connection.
    Oversized(usize),
}

/// Incremental frame reassembly over arbitrary read chunk boundaries.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes still to swallow from an oversized frame.
    discard: usize,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Feed freshly read bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        let mut chunk = chunk;
        if self.discard > 0 {
            let eat = self.discard.min(chunk.len());
            self.discard -= eat;
            chunk = &chunk[eat..];
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pop the next complete frame, if any.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if self.discard > 0 || self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            // Swallow whatever of the body already arrived; remember the rest.
            let have = self.buf.len() - 4;
            let eaten = have.min(len);
            self.buf.drain(..4 + eaten);
            self.discard = len - eaten;
            return Some(Frame::Oversized(len));
        }
        if self.buf.len() < 4 + len {
            return None;
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Some(Frame::Payload(payload))
    }

    /// Bytes buffered but not yet consumed (backpressure accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_across_chunk_boundaries() {
        let f = encode_frame("{\"op\":\"stat\"}");
        let mut r = FrameReader::new();
        for b in &f {
            r.push(std::slice::from_ref(b));
        }
        match r.next_frame() {
            Some(Frame::Payload(p)) => assert_eq!(p, b"{\"op\":\"stat\"}"),
            other => panic!("expected payload, got {other:?}"),
        }
        assert_eq!(r.next_frame(), None);
    }

    #[test]
    fn oversized_frame_is_discarded_and_stream_resyncs() {
        let mut r = FrameReader::new();
        let huge = (MAX_FRAME + 1) as u32;
        r.push(&huge.to_be_bytes());
        r.push(&vec![0u8; 1000]);
        match r.next_frame() {
            Some(Frame::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected oversized, got {other:?}"),
        }
        // Feed the rest of the junk body, then a real frame.
        r.push(&vec![0u8; MAX_FRAME + 1 - 1000]);
        r.push(&encode_frame("{\"op\":\"flush\"}"));
        match r.next_frame() {
            Some(Frame::Payload(p)) => assert_eq!(p, b"{\"op\":\"flush\"}"),
            other => panic!("expected payload, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage_as_bad_frame_and_shape_as_bad_request() {
        let e = parse_request(b"{not json").unwrap_err();
        assert_eq!(e.code, "bad_frame");
        let e = parse_request(b"[1,2,3]").unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request(b"{\"op\":\"warp\"}").unwrap_err();
        assert_eq!(e.code, "bad_request");
        let e = parse_request(b"\xff\xfe").unwrap_err();
        assert_eq!(e.code, "bad_frame");
    }

    #[test]
    fn parse_join_spec() {
        let env = parse_request(
            br#"{"op":"join","id":7,"tenant":"t1","algo":"cprl","build":"r","probe":"s","deadline_ms":250,"bits":10,"cache":false}"#,
        )
        .unwrap();
        assert_eq!(env.id, Some(7.0));
        assert_eq!(env.tenant, "t1");
        match env.request {
            Request::Join(j) => {
                assert_eq!(j.algorithm, Algorithm::Cprl);
                assert_eq!(j.build, "r");
                assert_eq!(j.probe, "s");
                assert_eq!(j.deadline_ms, Some(250));
                assert_eq!(j.radix_bits, Some(10));
                assert!(!j.cache);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn parse_load_inline_tuples() {
        let env =
            parse_request(br#"{"op":"load","name":"tiny","tuples":[[1,10],[2,20]]}"#).unwrap();
        match env.request {
            Request::Load(l) => {
                assert_eq!(l.rows, 2);
                assert_eq!(l.domain, 2);
                match l.kind {
                    LoadKind::Inline(t) => assert_eq!(t[1].key, 2),
                    other => panic!("expected inline, got {other:?}"),
                }
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn parse_trace_and_metrics_ops() {
        let env = parse_request(br#"{"op":"trace","max":16,"drain":false}"#).unwrap();
        match env.request {
            Request::Trace(t) => {
                assert_eq!(t.max, Some(16));
                assert!(!t.drain);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        // Defaults: unbounded, draining.
        match parse_request(br#"{"op":"trace"}"#).unwrap().request {
            Request::Trace(t) => {
                assert_eq!(t.max, None);
                assert!(t.drain);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        assert!(matches!(
            parse_request(br#"{"op":"metrics","id":3}"#)
                .unwrap()
                .request,
            Request::Metrics
        ));
        let e = parse_request(br#"{"op":"trace","drain":7}"#).unwrap_err();
        assert_eq!(e.code, "bad_request");
    }

    #[test]
    fn unknown_algorithm_has_its_own_code() {
        let e =
            parse_request(br#"{"op":"join","algo":"zzz","build":"r","probe":"s"}"#).unwrap_err();
        assert_eq!(e.code, "unknown_algorithm");
    }
}
