//! Portable fallback front-end for non-Linux hosts: one blocking reader
//! thread plus one writer thread per connection, speaking the exact
//! same protocol through the same [`ConnState`] machine the epoll
//! reactor uses. Correctness-equivalent, fd-hungrier — the Linux
//! reactor is the production path (DESIGN.md §15).

#![cfg(not(target_os = "linux"))]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::conn::ConnState;
use crate::Shared;

pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let mut next_id = 2u64;
    let mut handles = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = next_id;
                next_id += 1;
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.stats.open.fetch_add(1, Ordering::Relaxed);
                let sh = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || conn_loop(id, stream, sh)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

fn conn_loop(id: u64, stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // Reads time out so the reader notices server shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let state = Arc::new(Mutex::new(ConnState::new(id)));
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    shared.routes.lock().unwrap().insert(id, tx);

    // Writer: joins complete here; inline responses are written by the
    // reader. Both render under the state lock and write through their
    // own handle, serialized by that same lock.
    let wstate = Arc::clone(&state);
    let wstream = stream.try_clone();
    let wshared = Arc::clone(&shared);
    let writer = std::thread::spawn(move || {
        let Ok(stream) = wstream else { return };
        while let Ok((seq, payload)) = rx.recv() {
            let mut g = wstate.lock().unwrap();
            g.complete(seq, &payload);
            if write_pending(&stream, &mut g, &wshared).is_err() {
                break;
            }
        }
    });

    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        match (&stream).read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let mut g = state.lock().unwrap();
                let outcome = g.ingest(&buf[..n], &shared);
                let write_ok = write_pending(&stream, &mut g, &shared).is_ok();
                if outcome.overloaded || !write_ok {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => break,
        }
    }

    // Teardown: unroute first so no new completions enter the channel,
    // then cancel whatever is still running.
    shared.routes.lock().unwrap().remove(&id);
    state.lock().unwrap().cancel_inflight();
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = writer.join();
    shared.stats.open.fetch_sub(1, Ordering::Relaxed);
}

fn write_pending(
    mut stream: &TcpStream,
    state: &mut ConnState,
    shared: &Shared,
) -> std::io::Result<()> {
    while !state.pending_out().is_empty() {
        let n = stream.write(state.pending_out())?;
        state.consume_out(n);
        shared
            .stats
            .bytes_out
            .fetch_add(n as u64, Ordering::Relaxed);
    }
    Ok(())
}
