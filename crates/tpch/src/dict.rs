//! Dictionary compression for the string columns Q19 touches.
//!
//! The paper's column store dictionary-compresses all string columns;
//! Q19's predicates then compare `u8` codes (Listing 3). The dictionaries
//! here carry the real TPC-H value sets so the compressed comparisons are
//! executed against realistic domains.

/// The seven TPC-H ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Codes of the modes Q19's predicate accepts.
pub const AIR: u8 = 1; // index of "AIR"
pub const AIR_REG: u8 = 0; // "REG AIR" is TPC-H's 'AIR REG' in the query

/// The four TPC-H ship instructions.
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

pub const DELIVER_IN_PERSON: u8 = 0;

/// TPC-H brands: "Brand#MN" for M,N in 1..=5 → 25 brands.
pub fn brand_name(code: u8) -> String {
    let m = code / 5 + 1;
    let n = code % 5 + 1;
    format!("Brand#{m}{n}")
}

pub const BRAND12: u8 = 1; // Brand#12 => m=1,n=2 => code 1
pub const BRAND23: u8 = 7; // Brand#23 => (m-1)*5 + (n-1) = 7
pub const BRAND34: u8 = 13; // Brand#34 => (m-1)*5 + (n-1) = 13
pub const NUM_BRANDS: u8 = 25;

/// TPC-H containers: 5 sizes × 8 shapes = 40.
pub const CONTAINER_SIZES: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
pub const CONTAINER_SHAPES: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
pub const NUM_CONTAINERS: u8 = 40;

pub fn container_name(code: u8) -> String {
    let size = CONTAINER_SIZES[(code / 8) as usize];
    let shape = CONTAINER_SHAPES[(code % 8) as usize];
    format!("{size} {shape}")
}

pub fn container_code(size: &str, shape: &str) -> u8 {
    let si = CONTAINER_SIZES.iter().position(|&s| s == size).unwrap() as u8;
    let sh = CONTAINER_SHAPES.iter().position(|&s| s == shape).unwrap() as u8;
    si * 8 + sh
}

/// A generic append-only string dictionary (used by tests and any column
/// not covered by the fixed enumerations above).
#[derive(Default, Debug)]
pub struct Dictionary {
    values: Vec<String>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `s`, interning it if new.
    pub fn encode(&mut self, s: &str) -> u8 {
        if let Some(i) = self.values.iter().position(|v| v == s) {
            return i as u8;
        }
        assert!(self.values.len() < 256, "dictionary overflow");
        self.values.push(s.to_string());
        (self.values.len() - 1) as u8
    }

    pub fn decode(&self, code: u8) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brand_codes() {
        assert_eq!(brand_name(BRAND12), "Brand#12");
        assert_eq!(brand_name(BRAND23), "Brand#23");
        assert_eq!(brand_name(BRAND34), "Brand#34");
    }

    #[test]
    fn container_round_trip() {
        for code in 0..NUM_CONTAINERS {
            let name = container_name(code);
            let (size, shape) = name.split_once(' ').unwrap();
            assert_eq!(container_code(size, shape), code);
        }
        assert_eq!(container_code("SM", "CASE"), 0);
        assert_eq!(container_name(container_code("MED", "PKG")), "MED PKG");
    }

    #[test]
    fn generic_dictionary() {
        let mut d = Dictionary::new();
        let a = d.encode("alpha");
        let b = d.encode("beta");
        assert_eq!(d.encode("alpha"), a);
        assert_ne!(a, b);
        assert_eq!(d.decode(a), Some("alpha"));
        assert_eq!(d.decode(200), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ship_mode_codes() {
        assert_eq!(SHIP_MODES[AIR as usize], "AIR");
        assert_eq!(SHIP_MODES[AIR_REG as usize], "REG AIR");
    }
}
