//! TPC-H Q19 substrate — Section 8 and Appendices E–G of the paper.
//!
//! The paper emulates a column store in C++ ("similar to MonetDB": one
//! array per column, virtual oids, dictionary-compressed strings, floats
//! instead of decimals) and runs the *unchanged* TPC-H query 19 with four
//! different join algorithms plugged in (NOP, NOPA, CPRL, CPRA), showing
//! that the join is only 10–15% of query time.
//!
//! This crate is that emulator:
//!
//! * [`data`] — struct-of-arrays `Lineitem` and `Part` tables with the
//!   columns Q19 touches, generated at any scale factor with the Q19
//!   constants' TPC-H frequencies (pre-join selectivity 3.57% by
//!   default, sweepable for Appendix E).
//! * [`dict`] — the string dictionary (brands, containers, ship modes,
//!   ship instructions encode to `u8`).
//! * [`q19`] — the executor: selection push-down on Lineitem, hash join
//!   on `p_partkey = l_partkey`, post-join predicate on reconstructed
//!   attributes, sum aggregation; late materialization throughout
//!   (Figure 13's plan).
//! * [`morph`] — Appendix G: the five-step morph from a naked join
//!   micro-benchmark to the full query.

pub mod data;
pub mod dict;
pub mod morph;
pub mod q19;
pub mod strategies;

pub use data::{generate_tables, GenParams, LineitemTable, PartTable};
pub use q19::{run_q19, Q19Join, Q19Result};
