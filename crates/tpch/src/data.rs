//! Column-store TPC-H tables (the columns Q19 touches), Listing 2.
//!
//! `Part` is generated *in primary-key order* (TPC-H dbgen emits it
//! sorted by `p_partkey`) — the detail that hands NOPA its ideal
//! sequential build pattern in Section 8. `Lineitem.l_partkey` is a
//! uniform foreign key into `Part`.
//!
//! The pre-join predicate columns (`l_shipmode`, `l_shipinstruct`) are
//! generated so the pushed-down selection has exactly the requested
//! selectivity (the paper's Q19 plan filters Lineitem down to 3.57%);
//! Appendix E sweeps this knob to 100%.

use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::tuple::Tuple;

use crate::dict;

/// `<key, rowid>` pairs for the key columns, so the join implementations
/// run unmodified (Section 8: "All foreign and primary key columns are
/// represented as <Key, Payload> pairs with the row ID as the payload").
pub type KeyCol = Vec<Tuple>;

/// The Q19 columns of Lineitem (struct of arrays).
pub struct LineitemTable {
    pub l_extendedprice: Vec<f32>,
    pub l_discount: Vec<f32>,
    pub l_partkey: KeyCol,
    pub l_quantity: Vec<u32>,
    pub l_shipmode: Vec<u8>,
    pub l_shipinstruct: Vec<u8>,
}

impl LineitemTable {
    pub fn len(&self) -> usize {
        self.l_partkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.l_partkey.is_empty()
    }

    /// The pushed-down Q19 selection (Listing 3, `preJoin`).
    #[inline]
    pub fn pre_join(&self, row: usize) -> bool {
        self.l_shipinstruct[row] == dict::DELIVER_IN_PERSON
            && (self.l_shipmode[row] == dict::AIR || self.l_shipmode[row] == dict::AIR_REG)
    }
}

/// The Q19 columns of Part.
pub struct PartTable {
    pub p_partkey: KeyCol,
    pub p_brand: Vec<u8>,
    pub p_container: Vec<u8>,
    pub p_size: Vec<u32>,
}

impl PartTable {
    pub fn len(&self) -> usize {
        self.p_partkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.p_partkey.is_empty()
    }
}

/// The post-join Q19 predicate (Listing 3, `postJoin`): three
/// brand/container/quantity/size disjuncts.
#[inline]
pub fn post_join(l: &LineitemTable, p: &PartTable, l_row: usize, p_row: usize) -> bool {
    post_join_parts_only(p, p_row, l.l_quantity[l_row])
}

/// The same predicate with Lineitem's only contribution (`l_quantity`)
/// passed by value — the form used by the early-materialization executor
/// (`crate::strategies`), which carries the quantity inside the
/// partitioned probe record instead of reconstructing it by row id.
#[inline]
pub fn post_join_parts_only(p: &PartTable, p_row: usize, quantity: u32) -> bool {
    let brand = p.p_brand[p_row];
    let container = p.p_container[p_row];
    let size = p.p_size[p_row];
    // Dictionary codes of the container literals (branch on compressed
    // codes, not strings — Listing 3). SM/MED/LG are size rows 0/1/2 of
    // the container matrix; CASE/BOX/BAG/PKG/PACK are shape columns
    // 0/1/2/4/5.
    let sm = |c: u8| matches!(c, 0 | 1 | 4 | 5); // SM CASE/BOX/PKG/PACK
    let med = |c: u8| matches!(c, 9 | 10 | 12 | 13); // MED BOX/BAG/PKG/PACK
    let lg = |c: u8| matches!(c, 16 | 17 | 20 | 21); // LG CASE/BOX/PKG/PACK
    (brand == dict::BRAND12
        && sm(container)
        && (1..=11).contains(&quantity)
        && (1..=5).contains(&size))
        || (brand == dict::BRAND23
            && med(container)
            && (10..=20).contains(&quantity)
            && (1..=10).contains(&size))
        || (brand == dict::BRAND34
            && lg(container)
            && (20..=30).contains(&quantity)
            && (1..=15).contains(&size))
}

/// Generation parameters.
#[derive(Copy, Clone, Debug)]
pub struct GenParams {
    /// TPC-H scale factor: Part = 200k·SF rows, Lineitem = 6M·SF rows.
    pub scale_factor: f64,
    /// Selectivity of the pushed-down Lineitem selection. The paper's
    /// plan yields 3.57%.
    pub pre_selectivity: f64,
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            scale_factor: 1.0,
            pre_selectivity: 0.0357,
            seed: 0x71C9,
        }
    }
}

/// Generate the two tables.
///
/// To make the pre-join selectivity exactly sweepable to 100%
/// (Appendix E), both predicate columns are biased by `sqrt(selectivity)`
/// (their product is the selection's selectivity); the non-qualifying
/// probability mass keeps TPC-H's uniform shape over the remaining codes.
pub fn generate_tables(params: &GenParams) -> (PartTable, LineitemTable) {
    let n_parts = (200_000.0 * params.scale_factor).round().max(1.0) as usize;
    let n_lines = (6_000_000.0 * params.scale_factor).round().max(1.0) as usize;
    let mut rng = Xoshiro256::new(params.seed);

    let part = PartTable {
        p_partkey: (0..n_parts)
            .map(|i| Tuple::new(i as u32 + 1, i as u32))
            .collect(),
        p_brand: (0..n_parts)
            .map(|_| (rng.below(dict::NUM_BRANDS as u64)) as u8)
            .collect(),
        p_container: (0..n_parts)
            .map(|_| (rng.below(dict::NUM_CONTAINERS as u64)) as u8)
            .collect(),
        p_size: (0..n_parts).map(|_| rng.below(50) as u32 + 1).collect(),
    };

    let p_factor = params.pre_selectivity.clamp(0.0, 1.0).sqrt();
    let lineitem = LineitemTable {
        l_extendedprice: (0..n_lines)
            .map(|_| 900.0 + rng.next_f64() as f32 * 99_100.0)
            .collect(),
        l_discount: (0..n_lines)
            .map(|_| (rng.below(11) as f32) / 100.0)
            .collect(),
        l_partkey: (0..n_lines)
            .map(|i| Tuple::new(rng.below(n_parts as u64) as u32 + 1, i as u32))
            .collect(),
        l_quantity: (0..n_lines).map(|_| rng.below(50) as u32 + 1).collect(),
        l_shipmode: (0..n_lines)
            .map(|_| {
                if rng.next_f64() < p_factor {
                    // Qualifying modes, split between the two.
                    if rng.next_f64() < 0.5 {
                        dict::AIR
                    } else {
                        dict::AIR_REG
                    }
                } else {
                    // Non-qualifying modes (codes 2..7).
                    (2 + rng.below(5)) as u8
                }
            })
            .collect(),
        l_shipinstruct: (0..n_lines)
            .map(|_| {
                if rng.next_f64() < p_factor {
                    dict::DELIVER_IN_PERSON
                } else {
                    (1 + rng.below(3)) as u8
                }
            })
            .collect(),
    };
    (part, lineitem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GenParams {
        GenParams {
            scale_factor: 0.01, // 2k parts, 60k lineitems
            ..GenParams::default()
        }
    }

    #[test]
    fn sizes_scale() {
        let (p, l) = generate_tables(&small_params());
        assert_eq!(p.len(), 2_000);
        assert_eq!(l.len(), 60_000);
    }

    #[test]
    fn part_keys_dense_and_sorted() {
        let (p, _) = generate_tables(&small_params());
        for (i, t) in p.p_partkey.iter().enumerate() {
            assert_eq!(t.key, i as u32 + 1);
            assert_eq!(t.payload, i as u32);
        }
    }

    #[test]
    fn foreign_keys_in_domain() {
        let (p, l) = generate_tables(&small_params());
        assert!(l
            .l_partkey
            .iter()
            .all(|t| t.key >= 1 && t.key as usize <= p.len()));
    }

    #[test]
    fn pre_selectivity_close_to_requested() {
        let (_, l) = generate_tables(&GenParams {
            scale_factor: 0.05,
            pre_selectivity: 0.0357,
            seed: 3,
        });
        let selected = (0..l.len()).filter(|&i| l.pre_join(i)).count();
        let sel = selected as f64 / l.len() as f64;
        assert!(
            (sel - 0.0357).abs() < 0.005,
            "selectivity {sel} vs requested 0.0357"
        );
    }

    #[test]
    fn full_selectivity_selects_everything() {
        let (_, l) = generate_tables(&GenParams {
            scale_factor: 0.005,
            pre_selectivity: 1.0,
            seed: 4,
        });
        assert!((0..l.len()).all(|i| l.pre_join(i)));
    }

    #[test]
    fn post_join_fires_occasionally() {
        let (p, l) = generate_tables(&small_params());
        let mut hits = 0;
        for row in 0..l.len() {
            let p_row = (l.l_partkey[row].key - 1) as usize;
            if post_join(&l, &p, row, p_row) {
                hits += 1;
            }
        }
        // Three disjuncts, each roughly (1/25)·(4/40)·(11/50)·(size range
        // /50): small but non-zero on 60k rows.
        assert!(hits > 0, "post-join predicate never fired");
        assert!(hits < l.len() / 50, "post-join predicate fires too often");
    }

    #[test]
    fn deterministic_generation() {
        let (p1, l1) = generate_tables(&small_params());
        let (p2, l2) = generate_tables(&small_params());
        assert_eq!(p1.p_brand, p2.p_brand);
        assert_eq!(l1.l_quantity, l2.l_quantity);
        assert_eq!(l1.l_partkey, l2.l_partkey);
    }
}
