//! The Q19 executor (Section 8, Figure 13's plan, Listing 4).
//!
//! Plan: scan Lineitem with the pushed-down selection (`preJoin`), hash
//! join on `p_partkey = l_partkey` with Part as build side, evaluate the
//! complex predicate (`postJoin`) on reconstructed attributes as soon as
//! a join partner is found, and aggregate
//! `sum(l_extendedprice · (1 − l_discount))` — no join index is
//! materialized (the HyperDB-style pipelined strategy).
//!
//! Four join algorithms are pluggable, exactly the four of Figure 14:
//! NOP, NOPA (global tables; attributes stay aligned, so tuple
//! reconstruction is sequential on the probe side) and CPRL, CPRA
//! (partitioned; reconstruction follows row ids to arbitrary locations —
//! the cache-pollution effect Section 8 discusses).

use std::time::{Duration, Instant};

use mmjoin_core::JoinConfig;
use mmjoin_hashtable::{
    ArrayTable, ConcurrentArrayTable, ConcurrentLinearTable, IdentityHash, JoinTable,
    StLinearTable, TableSpec,
};
use mmjoin_partition::{chunked_partition, ConcurrentTaskQueue, RadixFn, ScatterMode};
use mmjoin_util::chunk_range;
use mmjoin_util::tuple::Tuple;

use crate::data::{post_join, LineitemTable, PartTable};

/// The four joins evaluated inside Q19 (Figure 14).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Q19Join {
    Nop,
    Nopa,
    Cprl,
    Cpra,
}

impl Q19Join {
    pub const ALL: [Q19Join; 4] = [Q19Join::Nop, Q19Join::Nopa, Q19Join::Cprl, Q19Join::Cpra];

    pub fn name(self) -> &'static str {
        match self {
            Q19Join::Nop => "NOP",
            Q19Join::Nopa => "NOPA",
            Q19Join::Cprl => "CPRL",
            Q19Join::Cpra => "CPRA",
        }
    }
}

/// Query result + phase breakdown.
#[derive(Clone, Debug)]
pub struct Q19Result {
    pub revenue: f64,
    /// Build-table / partition phase.
    pub build_wall: Duration,
    /// Probe / co-partition join phase (includes scan+filter+aggregate).
    pub probe_wall: Duration,
    /// Lineitem rows surviving the pushed-down selection.
    pub filtered_rows: usize,
}

impl Q19Result {
    pub fn total_wall(&self) -> Duration {
        self.build_wall + self.probe_wall
    }
}

/// Run Q19 with the chosen join.
pub fn run_q19(join: Q19Join, p: &PartTable, l: &LineitemTable, threads: usize) -> Q19Result {
    match join {
        Q19Join::Nop => q19_global(p, l, threads, GlobalTable::Linear),
        Q19Join::Nopa => q19_global(p, l, threads, GlobalTable::Array),
        Q19Join::Cprl => q19_partitioned(p, l, threads, false),
        Q19Join::Cpra => q19_partitioned(p, l, threads, true),
    }
}

enum GlobalTable {
    Linear,
    Array,
}

/// NOP/NOPA pipeline (Listing 4): concurrent global build, then one
/// pipelined scan-filter-probe-postfilter-aggregate pass.
fn q19_global(p: &PartTable, l: &LineitemTable, threads: usize, kind: GlobalTable) -> Q19Result {
    let threads = threads.max(1);
    let (linear, array) = match kind {
        GlobalTable::Linear => (
            Some(ConcurrentLinearTable::<IdentityHash>::with_capacity(
                p.len(),
            )),
            None,
        ),
        GlobalTable::Array => (None, Some(ConcurrentArrayTable::new(p.len() + 1, 1))),
    };

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let range = chunk_range(p.len(), threads, t);
            let linear = &linear;
            let array = &array;
            let keys = &p.p_partkey;
            s.spawn(move || {
                for &tup in &keys[range] {
                    match (linear, array) {
                        (Some(tab), _) => tab.insert(tup),
                        (_, Some(tab)) => tab.insert(tup),
                        _ => unreachable!(),
                    }
                }
            });
        }
    });
    let build_wall = start.elapsed();

    let start = Instant::now();
    let partials: Vec<(f64, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let range = chunk_range(l.len(), threads, t);
                let linear = &linear;
                let array = &array;
                s.spawn(move || {
                    let mut revenue = 0.0f64;
                    let mut filtered = 0usize;
                    for row in range {
                        if !l.pre_join(row) {
                            continue;
                        }
                        filtered += 1;
                        let key = l.l_partkey[row].key;
                        let mut on_match = |p_row: u32| {
                            if post_join(l, p, row, p_row as usize) {
                                revenue += l.l_extendedprice[row] as f64
                                    * (1.0 - l.l_discount[row] as f64);
                            }
                        };
                        // p_partkey is a unique PK: first-match probes.
                        match (linear, array) {
                            (Some(tab), _) => tab.probe_first(key, &mut on_match),
                            (_, Some(tab)) => tab.probe(key, &mut on_match),
                            _ => unreachable!(),
                        }
                    }
                    (revenue, filtered)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let probe_wall = start.elapsed();
    let revenue = partials.iter().map(|(r, _)| r).sum();
    let filtered_rows = partials.iter().map(|(_, f)| f).sum();
    Q19Result {
        revenue,
        build_wall,
        probe_wall,
        filtered_rows,
    }
}

/// CPRL/CPRA pipeline: filter + materialize the probe keys, chunk-
/// partition both sides, then co-partition joins with post-filtering and
/// aggregation through row-id tuple reconstruction.
fn q19_partitioned(p: &PartTable, l: &LineitemTable, threads: usize, array: bool) -> Q19Result {
    let threads = threads.max(1);
    let bits = JoinConfig::new(threads)
        .bits_for_hash_tables(p.len())
        .min(14);
    let f = RadixFn::new(bits);

    // Partition phase: filter Lineitem (materializing qualifying keys),
    // then chunk-partition both relations.
    let start = Instant::now();
    let filtered: Vec<Tuple> = {
        let per_thread: Vec<Vec<Tuple>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = chunk_range(l.len(), threads, t);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for row in range {
                            if l.pre_join(row) {
                                out.push(l.l_partkey[row]);
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        per_thread.into_iter().flatten().collect()
    };
    let filtered_rows = filtered.len();
    let parts_build = chunked_partition(&p.p_partkey, f, threads, ScatterMode::Swwcb);
    let parts_probe = chunked_partition(&filtered, f, threads, ScatterMode::Swwcb);
    let build_wall = start.elapsed();

    // Join phase.
    let start = Instant::now();
    let queue = ConcurrentTaskQueue::new((0..f.fanout()).collect());
    let revenues: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let parts_build = &parts_build;
                let parts_probe = &parts_probe;
                s.spawn(move || {
                    let mut revenue = 0.0f64;
                    while let Some(part) = queue.pop() {
                        let spec = if array {
                            TableSpec::array(bits, p.len())
                        } else {
                            TableSpec::hashed(parts_build.part_len(part).max(1))
                        };
                        if array {
                            let mut table = ArrayTable::with_spec(&spec);
                            parts_build.for_each_slice(part, |slice| {
                                for &t in slice {
                                    table.insert(t);
                                }
                            });
                            revenue += probe_partition(&table, parts_probe, part, l, p);
                        } else {
                            let mut table = StLinearTable::<IdentityHash>::with_spec(&spec);
                            parts_build.for_each_slice(part, |slice| {
                                for &t in slice {
                                    table.insert(t);
                                }
                            });
                            revenue += probe_partition(&table, parts_probe, part, l, p);
                        }
                    }
                    revenue
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let probe_wall = start.elapsed();
    Q19Result {
        revenue: revenues.iter().sum(),
        build_wall,
        probe_wall,
        filtered_rows,
    }
}

fn probe_partition<T: JoinTable>(
    table: &T,
    parts_probe: &mmjoin_partition::ChunkedPartitions,
    part: usize,
    l: &LineitemTable,
    p: &PartTable,
) -> f64 {
    let mut revenue = 0.0f64;
    parts_probe.for_each_slice(part, |slice| {
        for &t in slice {
            let l_row = t.payload as usize;
            table.probe(t.key, |p_row| {
                if post_join(l, p, l_row, p_row as usize) {
                    revenue += l.l_extendedprice[l_row] as f64 * (1.0 - l.l_discount[l_row] as f64);
                }
            });
        }
    });
    revenue
}

/// Reference Q19: a direct, single-threaded evaluation used by tests.
pub fn reference_q19(p: &PartTable, l: &LineitemTable) -> f64 {
    let mut revenue = 0.0f64;
    for row in 0..l.len() {
        if !l.pre_join(row) {
            continue;
        }
        let p_row = (l.l_partkey[row].key - 1) as usize;
        debug_assert_eq!(p.p_partkey[p_row].key, l.l_partkey[row].key);
        if post_join(l, p, row, p_row) {
            revenue += l.l_extendedprice[row] as f64 * (1.0 - l.l_discount[row] as f64);
        }
    }
    revenue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_tables, GenParams};

    fn tables() -> (PartTable, LineitemTable) {
        generate_tables(&GenParams {
            scale_factor: 0.02, // 4k parts, 120k lineitems
            pre_selectivity: 0.0357,
            seed: 99,
        })
    }

    #[test]
    fn all_four_joins_agree_with_reference() {
        let (p, l) = tables();
        let expect = reference_q19(&p, &l);
        assert!(expect > 0.0, "workload produced zero revenue");
        for join in Q19Join::ALL {
            for threads in [1, 4] {
                let res = run_q19(join, &p, &l, threads);
                // f64 summation order differs per thread count; allow
                // reassociation error.
                let rel = (res.revenue - expect).abs() / expect;
                assert!(
                    rel < 1e-6,
                    "{} threads={threads}: {} vs {expect}",
                    join.name(),
                    res.revenue
                );
            }
        }
    }

    #[test]
    fn filtered_rows_match_selectivity() {
        let (p, l) = tables();
        let res = run_q19(Q19Join::Nop, &p, &l, 2);
        let sel = res.filtered_rows as f64 / l.len() as f64;
        assert!((sel - 0.0357).abs() < 0.01, "sel {sel}");
        let res2 = run_q19(Q19Join::Cprl, &p, &l, 2);
        assert_eq!(res.filtered_rows, res2.filtered_rows);
    }

    #[test]
    fn phases_are_reported() {
        let (p, l) = tables();
        let res = run_q19(Q19Join::Cpra, &p, &l, 2);
        assert!(res.total_wall() >= res.build_wall);
    }
}
