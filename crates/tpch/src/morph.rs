//! Appendix G: morphing the naked-join micro-benchmark stepwise into the
//! full Q19 (Figure 19).
//!
//! Five execution variants over the same data, all using the NOP join:
//!
//! 1. micro-benchmark with *pre-filtered* input tables (filter cost
//!    excluded — the classic join paper methodology),
//! 2. like (1) but filtering the input dynamically during the probe scan,
//! 3. like (2) plus materializing a join index,
//! 4. like (3) plus post-filtering and aggregating from the join index,
//! 5. like (2)+(4) pipelined, without a join index (= the real Q19).
//!
//! The deltas between consecutive variants expose how much of the query
//! is filtering, join-index construction, and tuple reconstruction.

use std::time::{Duration, Instant};

use mmjoin_hashtable::{ConcurrentLinearTable, IdentityHash};
use mmjoin_util::chunk_range;
use mmjoin_util::tuple::Tuple;

use crate::data::{post_join, LineitemTable, PartTable};

/// Timing of one morph variant.
#[derive(Clone, Debug)]
pub struct MorphStep {
    pub label: &'static str,
    pub wall: Duration,
    /// A value computed by the variant (match count or revenue) so the
    /// compiler cannot elide work and tests can validate consistency.
    pub outcome: f64,
}

/// Run all five variants with `threads` threads.
pub fn run_morph(p: &PartTable, l: &LineitemTable, threads: usize) -> Vec<MorphStep> {
    let threads = threads.max(1);

    // Shared build: all variants join against the same Part table.
    let build = || {
        let table = ConcurrentLinearTable::<IdentityHash>::with_capacity(p.len());
        std::thread::scope(|s| {
            for t in 0..threads {
                let range = chunk_range(p.len(), threads, t);
                let table = &table;
                let keys = &p.p_partkey;
                s.spawn(move || {
                    for &tup in &keys[range] {
                        table.insert(tup);
                    }
                });
            }
        });
        table
    };

    // Pre-filtered probe input (materialized OUTSIDE the timed region of
    // variant 1, like the micro-benchmarks).
    let prefiltered: Vec<Tuple> = (0..l.len())
        .filter(|&row| l.pre_join(row))
        .map(|row| l.l_partkey[row])
        .collect();

    let mut steps = Vec::new();

    // (1) Naked join over pre-filtered input.
    {
        let start = Instant::now();
        let table = build();
        let matches: u64 = parallel_sum_u64(threads, prefiltered.len(), |range| {
            let mut m = 0u64;
            for &tup in &prefiltered[range] {
                table.probe_first(tup.key, |_| m += 1);
            }
            m
        });
        steps.push(MorphStep {
            label: "(1) microbenchmark, pre-filtered input",
            wall: start.elapsed(),
            outcome: matches as f64,
        });
    }

    // (2) Filter dynamically during the probe scan.
    {
        let start = Instant::now();
        let table = build();
        let matches: u64 = parallel_sum_u64(threads, l.len(), |range| {
            let mut m = 0u64;
            for row in range {
                if l.pre_join(row) {
                    table.probe_first(l.l_partkey[row].key, |_| m += 1);
                }
            }
            m
        });
        steps.push(MorphStep {
            label: "(2) like (1), filtering dynamically",
            wall: start.elapsed(),
            outcome: matches as f64,
        });
    }

    // (3) Like (2) plus materializing a join index.
    let join_index: Vec<Vec<(u32, u32)>>;
    {
        let start = Instant::now();
        let table = build();
        join_index = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = chunk_range(l.len(), threads, t);
                    let table = &table;
                    s.spawn(move || {
                        let mut idx = Vec::new();
                        for row in range {
                            if l.pre_join(row) {
                                table.probe_first(l.l_partkey[row].key, |p_row| {
                                    idx.push((p_row, row as u32));
                                });
                            }
                        }
                        idx
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: usize = join_index.iter().map(Vec::len).sum();
        steps.push(MorphStep {
            label: "(3) like (2) plus materializing a join index",
            wall: start.elapsed(),
            outcome: total as f64,
        });
    }

    // (4) Like (3) plus post-filter + aggregate from the join index.
    {
        let start = Instant::now();
        let table = build();
        let fresh_index: Vec<Vec<(u32, u32)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = chunk_range(l.len(), threads, t);
                    let table = &table;
                    s.spawn(move || {
                        let mut idx = Vec::new();
                        for row in range {
                            if l.pre_join(row) {
                                table.probe_first(l.l_partkey[row].key, |p_row| {
                                    idx.push((p_row, row as u32));
                                });
                            }
                        }
                        idx
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let revenue: f64 = std::thread::scope(|s| {
            let handles: Vec<_> = fresh_index
                .iter()
                .map(|chunk| {
                    s.spawn(move || {
                        let mut rev = 0.0f64;
                        for &(p_row, l_row) in chunk {
                            if post_join(l, p, l_row as usize, p_row as usize) {
                                rev += l.l_extendedprice[l_row as usize] as f64
                                    * (1.0 - l.l_discount[l_row as usize] as f64);
                            }
                        }
                        rev
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        steps.push(MorphStep {
            label: "(4) like (3) plus post-filtering and aggregating",
            wall: start.elapsed(),
            outcome: revenue,
        });
    }

    // (5) Full pipeline, no join index (= Q19's execution strategy).
    {
        let start = Instant::now();
        let table = build();
        let revenue: f64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = chunk_range(l.len(), threads, t);
                    let table = &table;
                    s.spawn(move || {
                        let mut rev = 0.0f64;
                        for row in range {
                            if !l.pre_join(row) {
                                continue;
                            }
                            table.probe_first(l.l_partkey[row].key, |p_row| {
                                if post_join(l, p, row, p_row as usize) {
                                    rev += l.l_extendedprice[row] as f64
                                        * (1.0 - l.l_discount[row] as f64);
                                }
                            });
                        }
                        rev
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        steps.push(MorphStep {
            label: "(5) like (2 and 4) without a join index",
            wall: start.elapsed(),
            outcome: revenue,
        });
    }

    steps
}

fn parallel_sum_u64(
    threads: usize,
    n: usize,
    f: impl Fn(std::ops::Range<usize>) -> u64 + Sync,
) -> u64 {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let range = chunk_range(n, threads, t);
                let f = &f;
                s.spawn(move || f(range))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_tables, GenParams};
    use crate::q19::reference_q19;

    #[test]
    fn morph_variants_are_consistent() {
        let (p, l) = generate_tables(&GenParams {
            scale_factor: 0.01,
            pre_selectivity: 0.0357,
            seed: 7,
        });
        let steps = run_morph(&p, &l, 4);
        assert_eq!(steps.len(), 5);
        // Variants 1–3 count the same number of join matches.
        assert_eq!(steps[0].outcome, steps[1].outcome);
        assert_eq!(steps[1].outcome, steps[2].outcome);
        // Variants 4 and 5 compute the same revenue as the reference.
        let expect = reference_q19(&p, &l);
        for i in [3, 4] {
            let rel = (steps[i].outcome - expect).abs() / expect.max(1e-9);
            assert!(rel < 1e-6, "variant {} revenue {}", i + 1, steps[i].outcome);
        }
    }
}
