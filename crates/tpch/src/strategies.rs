//! Tuple-reconstruction strategies for the partitioned Q19 join — the
//! paper's explicit future work ("as future work we would like to
//! evaluate the cross product of different join algorithms and the large
//! space of tuple reconstruction algorithms, in particular for the very
//! promising CPR*-family").
//!
//! Two strategies over the same CPRL join:
//!
//! * **Late materialization** (the paper's Section 8 executor,
//!   [`crate::q19::run_q19`] with [`crate::q19::Q19Join::Cprl`]): the
//!   partitions carry `<key, rowid>`; after a match, the row id is
//!   followed into the Lineitem columns — a random access into arbitrary
//!   locations, polluting caches and TLB.
//! * **Early materialization** ([`run_q19_cprl_early`]): the filtered
//!   probe records carry `quantity`, `extendedprice` and `discount`
//!   *through* the partitions (16-byte wide tuples via
//!   `mmjoin_partition::generic`), so the join phase touches Lineitem
//!   exactly once, sequentially, during the filter scan. The price:
//!   2× partitioning bytes on the probe side.

use std::time::Instant;

use mmjoin_core::JoinConfig;
use mmjoin_hashtable::{IdentityHash, JoinTable, StLinearTable, TableSpec};
use mmjoin_partition::{
    chunked_partition, chunked_partition_by, ConcurrentTaskQueue, RadixFn, ScatterMode,
};
use mmjoin_util::chunk_range;

use crate::data::{post_join_parts_only, LineitemTable, PartTable};
use crate::q19::Q19Result;

/// A probe record carrying the attributes Q19 needs post-join.
#[derive(Copy, Clone, Debug)]
struct WideProbe {
    key: u32,
    quantity: u32,
    extendedprice: f32,
    discount: f32,
}

/// CPRL-based Q19 with early materialization.
pub fn run_q19_cprl_early(p: &PartTable, l: &LineitemTable, threads: usize) -> Q19Result {
    let threads = threads.max(1);
    let bits = JoinConfig::new(threads)
        .bits_for_hash_tables(p.len())
        .min(14);
    let f = RadixFn::new(bits);

    // Partition phase: filter + widen Lineitem, then partition both.
    let start = Instant::now();
    let wide: Vec<WideProbe> = {
        let per_thread: Vec<Vec<WideProbe>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let range = chunk_range(l.len(), threads, t);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for row in range {
                            if l.pre_join(row) {
                                out.push(WideProbe {
                                    key: l.l_partkey[row].key,
                                    quantity: l.l_quantity[row],
                                    extendedprice: l.l_extendedprice[row],
                                    discount: l.l_discount[row],
                                });
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        per_thread.into_iter().flatten().collect()
    };
    let filtered_rows = wide.len();
    let parts_build = chunked_partition(&p.p_partkey, f, threads, ScatterMode::Swwcb);
    let parts_probe = chunked_partition_by(&wide, f, threads, |w| w.key);
    let build_wall = start.elapsed();

    // Join phase: the post-join predicate splits into a Part-side check
    // (random access into Part, like the late strategy) and a
    // quantity-range check on the inlined attribute; the aggregate reads
    // only inlined attributes.
    let start = Instant::now();
    let queue = ConcurrentTaskQueue::new((0..f.fanout()).collect());
    let revenues: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let parts_build = &parts_build;
                let parts_probe = &parts_probe;
                s.spawn(move || {
                    let mut revenue = 0.0f64;
                    while let Some(part) = queue.pop() {
                        let spec = TableSpec::hashed(parts_build.part_len(part).max(1));
                        let mut table = StLinearTable::<IdentityHash>::with_spec(&spec);
                        parts_build.for_each_slice(part, |slice| {
                            for &t in slice {
                                table.insert(t);
                            }
                        });
                        parts_probe.for_each_slice(part, |slice| {
                            for w in slice {
                                table.probe(w.key, |p_row| {
                                    if post_join_parts_only(p, p_row as usize, w.quantity) {
                                        revenue +=
                                            w.extendedprice as f64 * (1.0 - w.discount as f64);
                                    }
                                });
                            }
                        });
                    }
                    revenue
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let probe_wall = start.elapsed();
    Q19Result {
        revenue: revenues.iter().sum(),
        build_wall,
        probe_wall,
        filtered_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_tables, GenParams};
    use crate::q19::{reference_q19, run_q19, Q19Join};

    #[test]
    fn early_equals_late() {
        let (p, l) = generate_tables(&GenParams {
            scale_factor: 0.05,
            pre_selectivity: 0.05,
            seed: 0xEA51,
        });
        let expect = reference_q19(&p, &l);
        assert!(expect > 0.0);
        for threads in [1, 4] {
            let early = run_q19_cprl_early(&p, &l, threads);
            let late = run_q19(Q19Join::Cprl, &p, &l, threads);
            let rel = (early.revenue - expect).abs() / expect;
            assert!(rel < 1e-6, "early revenue {} vs {expect}", early.revenue);
            assert_eq!(early.filtered_rows, late.filtered_rows);
        }
    }
}
