//! Criterion micro-benches for the hash-table zoo (ablation 2) and the
//! hash-function choice (ablation 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmjoin_hashtable::{
    ArrayTable, ConciseHashTable, CrcHash, IdentityHash, JoinTable, MultiplicativeHash, MurmurHash,
    StChainedTable, StLinearTable, TableSpec,
};
use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::Tuple;

const N: usize = 1 << 18;

fn build_tuples() -> Vec<Tuple> {
    let mut rng = Xoshiro256::new(7);
    let mut v: Vec<Tuple> = (1..=N as u32).map(|k| Tuple::new(k, k)).collect();
    rng.shuffle(&mut v);
    v
}

fn probe_keys() -> Vec<u32> {
    let mut rng = Xoshiro256::new(8);
    (0..N * 2).map(|_| rng.below(N as u64) as u32 + 1).collect()
}

fn bench_tables(c: &mut Criterion) {
    let tuples = build_tuples();
    let probes = probe_keys();
    let mut g = c.benchmark_group("hashtable/build+probe");
    g.throughput(Throughput::Elements((N * 3) as u64));

    macro_rules! bench_join_table {
        ($name:expr, $ty:ty, $spec:expr) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let mut t = <$ty>::with_spec(&$spec);
                    for &tup in &tuples {
                        t.insert(tup);
                    }
                    let mut acc = 0u64;
                    for &k in &probes {
                        t.probe_unique(k, |p| acc = acc.wrapping_add(p as u64));
                    }
                    acc
                })
            });
        };
    }
    bench_join_table!(
        "chained",
        StChainedTable<IdentityHash>,
        TableSpec::hashed(N)
    );
    bench_join_table!("linear", StLinearTable<IdentityHash>, TableSpec::hashed(N));
    bench_join_table!("array", ArrayTable, TableSpec::array(0, N));
    g.bench_function("cht", |b| {
        b.iter(|| {
            let t = ConciseHashTable::<MultiplicativeHash>::build(&tuples, 1);
            let mut acc = 0u64;
            for &k in &probes {
                t.probe(k, |p| acc = acc.wrapping_add(p as u64));
            }
            acc
        })
    });
    g.finish();
}

/// Scalar probe loop vs the group-prefetched [`JoinTable::probe_batch`]
/// at an out-of-cache table size (satellite of the kernel layer): the
/// batch API should win once every probe is a DRAM miss.
fn bench_probe_kernels(c: &mut Criterion) {
    use mmjoin_util::kernels::{with_mode, KernelMode};

    const BIG: usize = 1 << 21; // linear slots: 2^22 × 8 B = 32 MB, out of LLC
    let mut rng = Xoshiro256::new(9);
    let mut tuples: Vec<Tuple> = (1..=BIG as u32).map(|k| Tuple::new(k, k)).collect();
    rng.shuffle(&mut tuples);
    let probes: Vec<Tuple> = (0..BIG)
        .map(|i| Tuple::new(rng.below(BIG as u64) as u32 + 1, i as u32))
        .collect();

    let mut g = c.benchmark_group("hashtable/probe-kernels");
    g.throughput(Throughput::Elements(probes.len() as u64));

    macro_rules! bench_scalar_vs_batch {
        ($name:expr, $ty:ty, $spec:expr) => {
            let mut t = <$ty>::with_spec(&$spec);
            for &tup in &tuples {
                t.insert(tup);
            }
            g.bench_function(concat!($name, "/scalar"), |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for p in &probes {
                        t.probe_unique(p.key, |bp| acc = acc.wrapping_add(bp as u64));
                    }
                    acc
                })
            });
            g.bench_function(concat!($name, "/batch"), |b| {
                b.iter(|| {
                    with_mode(KernelMode::Simd, || {
                        let mut acc = 0u64;
                        JoinTable::probe_batch(&t, &probes, true, |_, bp| {
                            acc = acc.wrapping_add(bp as u64)
                        });
                        acc
                    })
                })
            });
        };
    }
    bench_scalar_vs_batch!(
        "linear",
        StLinearTable<IdentityHash>,
        TableSpec::hashed(BIG)
    );
    bench_scalar_vs_batch!(
        "chained",
        StChainedTable<IdentityHash>,
        TableSpec::hashed(BIG)
    );
    bench_scalar_vs_batch!("array", ArrayTable, TableSpec::array(0, BIG));

    let cht = ConciseHashTable::<MultiplicativeHash>::build(&tuples, 1);
    g.bench_function("cht/scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &probes {
                cht.probe(p.key, |bp| acc = acc.wrapping_add(bp as u64));
            }
            acc
        })
    });
    g.bench_function("cht/batch", |b| {
        b.iter(|| {
            with_mode(KernelMode::Simd, || {
                let mut acc = 0u64;
                cht.probe_batch(&probes, |_, bp| acc = acc.wrapping_add(bp as u64));
                acc
            })
        })
    });
    g.finish();
}

fn bench_hash_functions(c: &mut Criterion) {
    let tuples = build_tuples();
    let probes = probe_keys();
    let mut g = c.benchmark_group("hashtable/hash-function");
    g.throughput(Throughput::Elements(probes.len() as u64));

    macro_rules! bench_hash {
        ($name:expr, $h:ty) => {
            g.bench_with_input(BenchmarkId::from_parameter($name), &(), |b, _| {
                let mut t = StLinearTable::<$h>::with_capacity(N);
                for &tup in &tuples {
                    t.insert(tup);
                }
                b.iter(|| {
                    let mut acc = 0u64;
                    for &k in &probes {
                        t.probe_first(k, |p| acc = acc.wrapping_add(p as u64));
                    }
                    acc
                })
            });
        };
    }
    bench_hash!("identity", IdentityHash);
    bench_hash!("multiplicative", MultiplicativeHash);
    bench_hash!("murmur", MurmurHash);
    bench_hash!("crc32c", CrcHash);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_probe_kernels, bench_hash_functions
}
criterion_main!(benches);
