//! Criterion benches for the MWAY sorting substrate: networks vs std
//! sort, and binary vs multiway merging (ablation 6's kin).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmjoin_sort::mergesort::sort_packed;
use mmjoin_sort::multiway::merge_runs;
use mmjoin_sort::network::{sort8, sort_network};
use mmjoin_util::rng::Xoshiro256;

fn rand_u64(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_networks(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort/network-vs-std");
    let data = rand_u64(1 << 16, 1);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("sort8-blocks", |b| {
        b.iter(|| {
            let mut d = data.clone();
            for chunk in d.chunks_exact_mut(8) {
                sort8(chunk);
            }
            d
        })
    });
    g.bench_function("batcher16-blocks", |b| {
        b.iter(|| {
            let mut d = data.clone();
            for chunk in d.chunks_exact_mut(16) {
                sort_network(chunk);
            }
            d
        })
    });
    g.bench_function("mergesort-full", |b| {
        let mut scratch = mmjoin_util::alloc::AlignedVec::new();
        b.iter(|| {
            let mut d = data.clone();
            sort_packed(&mut d, &mut scratch);
            d
        })
    });
    g.bench_function("std-sort-full", |b| {
        b.iter(|| {
            let mut d = data.clone();
            d.sort_unstable();
            d
        })
    });
    g.finish();
}

fn bench_multiway(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort/multiway-merge");
    for k in [2usize, 4, 16] {
        let runs: Vec<Vec<u64>> = (0..k)
            .map(|i| {
                let mut r = rand_u64((1 << 18) / k, i as u64);
                r.sort_unstable();
                r
            })
            .collect();
        g.throughput(Throughput::Elements(1 << 18));
        g.bench_with_input(BenchmarkId::new("loser-tree", k), &runs, |b, runs| {
            b.iter(|| merge_runs(runs.iter().map(|r| r.as_slice()).collect()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_networks, bench_multiway
}
criterion_main!(benches);
