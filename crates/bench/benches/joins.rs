//! End-to-end criterion benches: all thirteen joins on one canonical
//! (scaled) workload, plus the scheduling ablation (ablation 3).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mmjoin_core::{Algorithm, Join, JoinConfig};
use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
use mmjoin_util::{Placement, Relation};

fn run(alg: Algorithm, r: &Relation, s: &Relation, cfg: &JoinConfig) -> u64 {
    Join::new(alg)
        .with_config(cfg.clone())
        .run(r, s)
        .expect("valid plan")
        .matches
}

fn bench_all_joins(c: &mut Criterion) {
    let r_n = 1 << 19;
    let s_n = r_n * 4;
    let placement = Placement::Chunked { parts: 2 };
    let r = gen_build_dense(r_n, 1, placement);
    let s = gen_probe_fk(s_n, r_n, 2, placement);
    let mut cfg = JoinConfig::new(2);
    cfg.simulate = false; // pure wall-clock micro-bench

    let mut g = c.benchmark_group("join/all-thirteen");
    g.throughput(Throughput::Elements((r_n + s_n) as u64));
    g.sample_size(10);
    for alg in Algorithm::ALL {
        g.bench_function(alg.name(), |b| b.iter(|| run(alg, &r, &s, &cfg)));
    }
    g.finish();
}

fn bench_scheduling_ablation(c: &mut Criterion) {
    let r_n = 1 << 19;
    let s_n = r_n * 4;
    let placement = Placement::Chunked { parts: 2 };
    let r = gen_build_dense(r_n, 3, placement);
    let s = gen_probe_fk(s_n, r_n, 4, placement);
    let mut cfg = JoinConfig::new(2);
    cfg.simulate = false;

    let mut g = c.benchmark_group("join/scheduling");
    g.throughput(Throughput::Elements((r_n + s_n) as u64));
    g.sample_size(10);
    g.bench_function("PRL-sequential", |b| {
        b.iter(|| run(Algorithm::Prl, &r, &s, &cfg))
    });
    g.bench_function("PRLiS-round-robin", |b| {
        b.iter(|| run(Algorithm::PrlIs, &r, &s, &cfg))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all_joins, bench_scheduling_ablation
}
criterion_main!(benches);
