//! Criterion micro-benches for the radix-partitioning substrate:
//! SWWCB vs direct scatter (ablation 1), chunked vs contiguous
//! (ablation 4), and one- vs two-pass (ablation 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmjoin_partition::{
    chunked_partition, partition_parallel, two_pass_partition, RadixFn, ScatterMode,
};
use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::Tuple;

fn input(n: usize) -> Vec<Tuple> {
    let mut rng = Xoshiro256::new(42);
    (0..n)
        .map(|i| Tuple::new(rng.next_u32() | 1, i as u32))
        .collect()
}

fn bench_scatter_modes(c: &mut Criterion) {
    let n = 1 << 20;
    let data = input(n);
    let mut g = c.benchmark_group("partition/scatter-mode");
    g.throughput(Throughput::Elements(n as u64));
    for bits in [6u32, 10, 14] {
        g.bench_with_input(BenchmarkId::new("direct", bits), &bits, |b, &bits| {
            b.iter(|| partition_parallel(&data, RadixFn::new(bits), 2, ScatterMode::Direct))
        });
        g.bench_with_input(BenchmarkId::new("swwcb", bits), &bits, |b, &bits| {
            b.iter(|| partition_parallel(&data, RadixFn::new(bits), 2, ScatterMode::Swwcb))
        });
    }
    g.finish();
}

fn bench_chunked_vs_contiguous(c: &mut Criterion) {
    let n = 1 << 20;
    let data = input(n);
    let mut g = c.benchmark_group("partition/chunked-vs-contiguous");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("contiguous-10bit", |b| {
        b.iter(|| partition_parallel(&data, RadixFn::new(10), 2, ScatterMode::Swwcb))
    });
    g.bench_function("chunked-10bit", |b| {
        b.iter(|| chunked_partition(&data, RadixFn::new(10), 2, ScatterMode::Swwcb))
    });
    g.finish();
}

fn bench_passes(c: &mut Criterion) {
    let n = 1 << 20;
    let data = input(n);
    let mut g = c.benchmark_group("partition/passes");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("one-pass-12bit", |b| {
        b.iter(|| partition_parallel(&data, RadixFn::new(12), 2, ScatterMode::Swwcb))
    });
    g.bench_function("two-pass-6+6bit", |b| {
        b.iter(|| two_pass_partition(&data, 6, 6, 2, ScatterMode::Swwcb))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scatter_modes, bench_chunked_vs_contiguous, bench_passes
}
criterion_main!(benches);
