//! The workspace's minimal JSON parser. The implementation moved to
//! [`mmjoin_util::jsonv`] when the `mmjoin-serve` wire protocol needed
//! it below this crate in the dependency graph; this re-export keeps
//! every historical `mmjoin_bench::jsonv` caller working unchanged.

pub use mmjoin_util::jsonv::{parse, Value};
