//! Figure 5: runtime of the PR* vs CPR* algorithms, broken down into
//! partition and join phase (|R|=128M, |S|=1280M).
//!
//! Paper expectation: CPR* beats PR* by ~20%; the CPR* partition phase
//! is cheaper (no remote writes) and — counter-intuitively, explained by
//! Figure 6 — even the join phase is cheaper than unscheduled PR*.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{ms, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF165);
    let cfg = opts.cfg();
    let mut table = Table::new(
        "Figure 5 — runtime of PR* vs CPR* (simulated ms; partition + join)",
        &[
            "algo",
            "partition[ms]",
            "join[ms]",
            "total[ms]",
            "wall[ms,host]",
        ],
    );
    for alg in [
        Algorithm::Pro,
        Algorithm::Prl,
        Algorithm::Pra,
        Algorithm::Cprl,
        Algorithm::Cpra,
    ] {
        let res = run_alg(alg, &r, &s, &cfg);
        table.row(vec![
            alg.name().to_string(),
            ms(res.sim_of("partition")),
            ms(res.sim_of("join")),
            ms(res.total_sim()),
            format!("{:.1}", res.total_wall().as_secs_f64() * 1e3),
        ]);
    }
    table.note("paper: CPR* ~20% faster in total; CPR* partition phase visibly cheaper");
    vec![table]
}
