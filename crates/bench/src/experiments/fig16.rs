//! Figure 16 (Appendix B): scalability in the number of threads,
//! 4 → 120, on the simulated 60-core/120-context machine.
//!
//! Paper expectation: all methods scale well to 60 physical cores;
//! beyond that (SMT), the partition-based joins get *worse* (hyper-
//! threads share the private caches) and even NOP* barely gains.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

const ALGOS: [Algorithm; 9] = [
    Algorithm::Mway,
    Algorithm::Chtj,
    Algorithm::Nop,
    Algorithm::Nopa,
    Algorithm::Cprl,
    Algorithm::Cpra,
    Algorithm::ProIs,
    Algorithm::PrlIs,
    Algorithm::PraIs,
];

pub const THREAD_STEPS: [usize; 6] = [4, 8, 16, 32, 60, 120];

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut out = Vec::new();
    for (panel, ratio) in [("(a) |S| = 10·|R|", 10usize), ("(b) |S| = |R|", 1usize)] {
        let r_n = opts.tuples(128);
        let s_n = opts.tuples(128 * ratio);
        let r = mmjoin_datagen::gen_build_dense(r_n, 0xF161, opts.placement());
        let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, 0xF162, opts.placement());
        let mut headers: Vec<String> = vec!["algo".into()];
        headers.extend(THREAD_STEPS.iter().map(|t| format!("{t}thr")));
        let mut table = Table::new(
            format!("Figure 16 {panel} — simulated throughput [Mtps] vs thread count"),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for alg in ALGOS {
            // MWAY's original only runs with power-of-two threads ≤ 32.
            let mut row = vec![alg.name().to_string()];
            for &t in &THREAD_STEPS {
                if alg == Algorithm::Mway && (t > 32 || !t.is_power_of_two()) {
                    row.push("-".to_string());
                    continue;
                }
                let mut cfg = opts.cfg();
                cfg.sim_threads = Some(t);
                let res = run_alg(alg, &r, &s, &cfg);
                row.push(mtps(res.sim_throughput_mtps(r.len(), s.len())));
            }
            table.row(row);
        }
        table.note("paper: near-linear to 60 threads; SMT (120) hurts partition-based joins");
        out.push(table);
    }
    out
}
