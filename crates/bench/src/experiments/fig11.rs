//! Figure 11: scalability of the partition phase alone — chunked (CPR*)
//! vs contiguous (PR*) partitioning — as |R| and the partition count
//! grow together (one more bit per doubling).
//!
//! Paper expectation: average partition time per tuple stays flat up to
//! 2^15 partitions, then deteriorates once the SWWCBs of all threads no
//! longer fit the shared LLC; chunked partitioning is consistently
//! cheaper than contiguous.

use std::time::Instant;

use mmjoin_core::spec::{self, PartitionWrites};
use mmjoin_partition::{chunked_partition, partition_parallel, RadixFn, ScatterMode};

use crate::harness::{HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut table = Table::new(
        "Figure 11 — partition-phase scaling (avg sim time per tuple, ns)",
        &[
            "|R|[paper M]",
            "partitions",
            "chunked[ns]",
            "contiguous[ns]",
            "chunked wall[ms]",
            "contig wall[ms]",
        ],
    );
    // Paper: |R| = 16M..2048M with 2^11..2^18 partitions.
    for (i, r_m) in [16usize, 32, 64, 128, 256, 512, 1024, 2048]
        .iter()
        .enumerate()
    {
        let bits = 11 + i as u32;
        let r_n = opts.tuples(*r_m);
        let input = mmjoin_datagen::gen_build_dense(r_n, *r_m as u64, opts.placement());
        let f = RadixFn::new(bits);
        let cfg = opts.cfg();

        let t0 = Instant::now();
        let _ = chunked_partition(input.tuples(), f, opts.threads, ScatterMode::Swwcb);
        let chunked_wall = t0.elapsed();
        let t0 = Instant::now();
        let _ = partition_parallel(input.tuples(), f, opts.threads, ScatterMode::Swwcb);
        let contig_wall = t0.elapsed();

        let mut sim_ns = Vec::new();
        for writes in [PartitionWrites::Local, PartitionWrites::GlobalInterleaved] {
            let specs =
                spec::partition_pass_specs(&cfg, r_n, input.placement(), f.fanout(), true, writes);
            let order: Vec<usize> = (0..specs.len()).collect();
            let (t, _) = spec::run_phase(&cfg, &specs, &order);
            sim_ns.push(t * 1e9 / r_n as f64);
        }
        table.row(vec![
            r_m.to_string(),
            format!("2^{bits}"),
            format!("{:.3}", sim_ns[0]),
            format!("{:.3}", sim_ns[1]),
            format!("{:.2}", chunked_wall.as_secs_f64() * 1e3),
            format!("{:.2}", contig_wall.as_secs_f64() * 1e3),
        ]);
    }
    table.note("paper: flat to 2^15 partitions, then SWWCB state spills the LLC and cost rises");
    table.note("chunked < contiguous throughout (no remote writes)");
    vec![table]
}
