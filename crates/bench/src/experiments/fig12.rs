//! Figure 12: CPRL runtime with the number of partitioning bits set by
//! Equation (1), against the full range of bit choices.
//!
//! Paper expectation: the predictor lands at (or within noise of) the
//! best observed configuration for every size.

use mmjoin_core::config::TableKind;
use mmjoin_core::pro::join_cpr;

use crate::harness::{run_trial_with, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut table = Table::new(
        "Figure 12 — CPRL: Equation (1) bits vs exhaustive bit search (sim ns/tuple)",
        &[
            "|R|[paper M]",
            "eq1 bits",
            "ns@eq1",
            "best bits",
            "ns@best",
            "worst bits",
            "ns@worst",
        ],
    );
    let shift = (opts.scale as f64).log2().round() as i32;
    for r_m in [16usize, 64, 256, 1024, 2048] {
        let r_n = opts.tuples(r_m);
        let s_n = r_n;
        let r = mmjoin_datagen::gen_build_dense(r_n, r_m as u64 + 7, opts.placement());
        let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, r_m as u64 ^ 0x12, opts.placement());
        let tuples = r_n + s_n;
        let cfg = opts.cfg();
        let eq1 = cfg.bits_for_hash_tables(r_n);

        let time_at = |bits: u32| -> f64 {
            let mut cfg = opts.cfg();
            cfg.radix_bits = Some(bits);
            // A twice-failed trial ranks as infinitely slow so the bit
            // search skips it instead of aborting the sweep.
            run_trial_with(&format!("fig12 CPRL bits={bits}"), || {
                join_cpr(&r, &s, &cfg, TableKind::Linear)
            })
            .map_or(f64::INFINITY, |res| res.total_sim() * 1e9 / tuples as f64)
        };

        let at_eq1 = time_at(eq1);
        // The paper sweeps 8..=18 bits; shift the range for scaled runs
        // and keep it anchored near Equation (1)'s answer.
        let lo = ((8 - shift).max(eq1 as i32 - 4)).clamp(1, 18) as u32;
        let hi = ((18 - shift).max(eq1 as i32 + 3)).clamp(lo as i32, 18) as u32;
        let mut best = (eq1, at_eq1);
        let mut worst = (eq1, at_eq1);
        for bits in lo..=hi {
            let ns = time_at(bits);
            if ns < best.1 {
                best = (bits, ns);
            }
            if ns > worst.1 {
                worst = (bits, ns);
            }
        }
        table.row(vec![
            r_m.to_string(),
            eq1.to_string(),
            format!("{:.3}", at_eq1),
            best.0.to_string(),
            format!("{:.3}", best.1),
            worst.0.to_string(),
            format!("{:.3}", worst.1),
        ]);
    }
    table.note("paper: Equation (1) within a few percent of the best; bad bits cost up to 2.5x");
    vec![table]
}
