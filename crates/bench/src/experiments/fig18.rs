//! Figure 18 (Appendix E): Q19 with varying selectivity of the
//! pushed-down Lineitem selection (original: 3.57%).
//!
//! Paper expectation: as the selection passes more rows, the join input
//! grows and the partition-based joins overtake the no-partitioning
//! joins inside the query too.

use mmjoin_tpch::q19::{run_q19, Q19Join};
use mmjoin_tpch::{generate_tables, GenParams};

use crate::harness::{HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let sf = 100.0 / opts.scale as f64;
    let sels = [0.0357, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut out = Vec::new();
    for metric in ["build/partition [ms]", "probe/join [ms]", "total [ms]"] {
        let mut headers: Vec<String> = vec!["join".into()];
        headers.extend(sels.iter().map(|s| format!("{:.0}%", s * 100.0)));
        out.push(Table::new(
            format!("Figure 18 — Q19 vs selection selectivity, {metric} (SF {sf:.2})"),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        ));
    }

    // Generate per-selectivity tables once and fill all three metrics.
    let mut cells: Vec<Vec<Vec<String>>> = vec![Vec::new(); 3]; // [metric][join] -> row
    for join in Q19Join::ALL {
        for m in &mut cells {
            m.push(vec![join.name().to_string()]);
        }
    }
    for &sel in &sels {
        let (p, l) = generate_tables(&GenParams {
            scale_factor: sf,
            pre_selectivity: sel,
            seed: 0xF181,
        });
        for (j, join) in Q19Join::ALL.iter().enumerate() {
            let res = run_q19(*join, &p, &l, opts.threads);
            cells[0][j].push(format!("{:.1}", res.build_wall.as_secs_f64() * 1e3));
            cells[1][j].push(format!("{:.1}", res.probe_wall.as_secs_f64() * 1e3));
            cells[2][j].push(format!("{:.1}", res.total_wall().as_secs_f64() * 1e3));
        }
    }
    for (m, rows) in cells.into_iter().enumerate() {
        for row in rows {
            out[m].row(row);
        }
        out[m].note("paper: partitioned joins win once the probe side grows large");
    }
    out
}
