//! Table 4: micro-architectural counters per join phase — L2/L3 misses,
//! hit rates, "instructions retired" (traced op counts) and the IPC
//! proxy — obtained from the trace-driven cache simulator instead of
//! VTune (see DESIGN.md, substitution 3).
//!
//! Paper expectation: partition-based joins trade more instructions for
//! ~99% join-phase hit rates and high IPC; NOP's probe misses on nearly
//! every access; CHTJ roughly doubles NOP's probe misses; NOPA needs the
//! fewest instructions of all.

use mmjoin_core::instrumented::{instrument, PageConfig};
use mmjoin_core::Algorithm;
use mmjoin_memsim::Counters;

use crate::harness::{HarnessOpts, Table};

fn fmt(c: &Counters) -> Vec<String> {
    vec![
        format!("{:.1}", c.l2_misses as f64 / 1e6),
        format!("{:.1}", c.l3_misses as f64 / 1e6),
        format!("{:.2}", c.l2_hit_rate()),
        format!("{:.2}", c.l3_hit_rate()),
        format!("{:.2}", c.ops as f64 / 1e9),
        format!("{:.2}", c.ipc()),
    ]
}

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    // Instrumented runs are single-threaded trace replays; keep them an
    // order of magnitude smaller than the timing runs.
    let scale = (opts.scale * 16).max(512);
    let r_n = (128_000_000 / scale).max(4_096);
    let s_n = r_n * 10;
    let r = mmjoin_datagen::gen_build_dense(r_n, 0x7AB4, opts.placement());
    let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, 0x7AB5, opts.placement());
    let page = PageConfig::huge(scale);

    let mut cfg = opts.cfg();
    cfg.topology.capacity_scale = scale;
    let bits = cfg.bits_for_hash_tables(r_n);

    let mut out = Vec::new();
    for (phase_name, pick) in [
        ("Sort or Build or Partition Phase", 0usize),
        ("Probe or Join Phase", 1usize),
    ] {
        let mut table = Table::new(
            format!("Table 4 — {phase_name} (simulated counters, |R|={r_n}, |S|={s_n})"),
            &[
                "join",
                "L2 miss[M]",
                "L3 miss[M]",
                "L2 hit",
                "L3 hit",
                "IR[B]",
                "IPC",
            ],
        );
        for alg in Algorithm::ALL {
            let b = if alg == Algorithm::Prb {
                14.min(bits * 2)
            } else {
                bits
            };
            let run = instrument(alg, &r, &s, scale, page, b);
            let c = if pick == 0 { &run.first } else { &run.second };
            let mut row = vec![alg.name().to_string()];
            row.extend(fmt(c));
            table.row(row);
        }
        if pick == 1 {
            table.note("paper: PR*/CPR* join phases ~99% hit rates & IPC ~2; NOP ~0.39 IPC; CHTJ ~2x NOP misses");
        }
        out.push(table);
    }
    out
}
