//! One module per paper table/figure. Each exposes
//! `run(&HarnessOpts) -> Vec<Table>`.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hashfn;
pub mod pipeline;
pub mod skewfix;
pub mod spill;
pub mod tab3;
pub mod tab4;
pub mod tuplerecon;

use mmjoin_core::{Algorithm, Join, JoinConfig, JoinResult};
use mmjoin_util::Relation;

use crate::harness::{HarnessOpts, Table};

/// Run `alg` over `(r, s)` under a harness-built config through the
/// [`Join`] planner. Experiment configs are constructed in-harness and
/// known-valid, so any planning or runtime error is a harness bug —
/// abort the experiment loudly rather than tabulating garbage.
pub fn run_alg(alg: Algorithm, r: &Relation, s: &Relation, cfg: &JoinConfig) -> JoinResult {
    Join::new(alg)
        .with_config(cfg.clone())
        .run(r, s)
        .unwrap_or_else(|e| panic!("{alg} failed: {e}"))
}

/// One registry entry: experiment name, one-line description, runner.
pub type Experiment = (&'static str, &'static str, fn(&HarnessOpts) -> Vec<Table>);

/// Experiment registry for the `repro` binary.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "fig1",
            "black-box comparison of MWAY/CHTJ/PRB/NOP",
            fig1::run,
        ),
        (
            "fig2",
            "PRO throughput vs radix bits, 1 vs 2 passes",
            fig2::run,
        ),
        ("fig3", "black-box + improved variants", fig3::run),
        (
            "fig4",
            "NUMA write patterns: PRO vs CPRL traffic matrices",
            fig4::run,
        ),
        (
            "fig5",
            "PR* vs CPR* runtime with phase breakdown",
            fig5::run,
        ),
        (
            "fig6",
            "bandwidth profiles: PRO vs PROiS vs CPRL",
            fig6::run,
        ),
        (
            "fig7",
            "PR*/CPR* vs improved-scheduling variants",
            fig7::run,
        ),
        ("fig8", "all 13 joins with 4 KB vs 2 MB pages", fig8::run),
        ("fig9", "time/tuple vs radix bits across |R|", fig9::run),
        ("fig10", "throughput scaling with dataset size", fig10::run),
        (
            "fig11",
            "partition-phase scaling: chunked vs contiguous",
            fig11::run,
        ),
        (
            "fig12",
            "CPRL: Equation (1) bits vs exhaustive search",
            fig12::run,
        ),
        ("fig14", "TPC-H Q19 runtime and join share", fig14::run),
        ("fig15", "skewed probe relations (Zipf)", fig15::run),
        ("fig16", "thread-count scaling 4..120", fig16::run),
        ("fig17", "holes in the key domain (array joins)", fig17::run),
        (
            "fig18",
            "Q19 with varying selection selectivity",
            fig18::run,
        ),
        ("fig19", "morphing a micro-benchmark into Q19", fig19::run),
        ("tab3", "relative speedup 4 -> 60 threads", tab3::run),
        (
            "tab4",
            "simulated performance counters per join phase",
            tab4::run,
        ),
        (
            "hashfn",
            "extra ablation: hash function choice",
            hashfn::run,
        ),
        (
            "skewfix",
            "extension: cooperative skew handling",
            skewfix::run,
        ),
        (
            "tuplerecon",
            "extension: early vs late materialization in Q19",
            tuplerecon::run,
        ),
        (
            "pipeline",
            "extension: fused operator pipeline vs two-step chain",
            pipeline::run,
        ),
        (
            "spill",
            "extension: spilling hybrid hash join degradation curve",
            spill::run,
        ),
    ]
}
