//! Figure 14: TPC-H Q19 runtime with four pluggable joins, split into
//! the share spent in the actual join vs the rest of the query.
//!
//! As in the paper, the join share is estimated by running the same join
//! as a micro-benchmark (pre-filtered, pre-materialized inputs) and
//! subtracting (footnote 9 acknowledges this is approximate).
//!
//! Paper expectation: the join is only ~10–15% of the query; NOPA
//! profits from Part being generated in key order.

use mmjoin_core::{Algorithm, JoinConfig};

use super::run_alg;
use mmjoin_tpch::q19::{run_q19, Q19Join};
use mmjoin_tpch::{generate_tables, GenParams};
use mmjoin_util::{Relation, Tuple};

use crate::harness::{HarnessOpts, Table};

/// TPC-H scale factor for the scaled run: the paper uses SF 100
/// (600 M Lineitem rows); we scale by the harness factor.
fn scale_factor(opts: &HarnessOpts) -> f64 {
    100.0 / opts.scale as f64
}

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let sf = scale_factor(opts);
    let (p, l) = generate_tables(&GenParams {
        scale_factor: sf,
        pre_selectivity: 0.0357,
        seed: 0xF114,
    });
    let mut table = Table::new(
        format!(
            "Figure 14 — TPC-H Q19 (SF {:.2}: {} parts, {} lineitems), host wall times",
            sf,
            p.len(),
            l.len()
        ),
        &["join", "query[ms]", "join share[ms]", "join %", "revenue"],
    );

    // Microbenchmark inputs: Part keys vs pre-filtered Lineitem keys.
    let build = Relation::from_tuples(&p.p_partkey, opts.placement());
    let filtered: Vec<Tuple> = (0..l.len())
        .filter(|&row| l.pre_join(row))
        .map(|row| l.l_partkey[row])
        .collect();
    let probe = Relation::from_tuples(&filtered, opts.placement());

    for join in Q19Join::ALL {
        let res = run_q19(join, &p, &l, opts.threads);
        let alg = match join {
            Q19Join::Nop => Algorithm::Nop,
            Q19Join::Nopa => Algorithm::Nopa,
            Q19Join::Cprl => Algorithm::Cprl,
            Q19Join::Cpra => Algorithm::Cpra,
        };
        let mut cfg = JoinConfig::new(opts.threads);
        cfg.simulate = false;
        let micro = run_alg(alg, &build, &probe, &cfg);
        let query_ms = res.total_wall().as_secs_f64() * 1e3;
        let join_ms = micro.total_wall().as_secs_f64() * 1e3;
        table.row(vec![
            join.name().to_string(),
            format!("{query_ms:.1}"),
            format!("{join_ms:.1}"),
            format!("{:.0}%", 100.0 * join_ms / query_ms),
            format!("{:.1}", res.revenue),
        ]);
    }
    table.note("paper: join is only ~10-15% of total query time for all four joins");
    vec![table]
}
