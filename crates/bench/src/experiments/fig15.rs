//! Figure 15 (Appendix A): throughput under skewed probe keys,
//! Zipf θ ∈ {0.51, 0.9, 0.99}, both workload shapes.
//!
//! Paper expectation: low skew changes little; at θ = 0.99 the
//! no-partitioning joins catch up with / overtake the partition-based
//! ones — partitioned joins suffer unbalanced partition loads while
//! caches turn hot keys into hits for the global tables.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

const ALGOS: [Algorithm; 9] = [
    Algorithm::Mway,
    Algorithm::Chtj,
    Algorithm::Nop,
    Algorithm::Nopa,
    Algorithm::Cprl,
    Algorithm::Cpra,
    Algorithm::ProIs,
    Algorithm::PrlIs,
    Algorithm::PraIs,
];

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut out = Vec::new();
    let r_m = 128;
    for (panel, ratio) in [("(a) |S| = 10·|R|", 10usize), ("(b) |S| = |R|", 1usize)] {
        let mut table = Table::new(
            format!("Figure 15 {panel} — throughput [Mtps,sim] under Zipf skew (|R|=128M paper)"),
            &["algo", "θ=0.51", "θ=0.90", "θ=0.99"],
        );
        let r_n = opts.tuples(r_m);
        let s_n = opts.tuples(r_m * ratio);
        let r = mmjoin_datagen::gen_build_dense(r_n, 0xF151, opts.placement());
        let thetas = [0.51, 0.90, 0.99];
        let probes: Vec<_> = thetas
            .iter()
            .map(|&theta| mmjoin_datagen::gen_probe_zipf(s_n, r_n, theta, 0xF152, opts.placement()))
            .collect();
        for alg in ALGOS {
            let mut row = vec![alg.name().to_string()];
            for (s, &theta) in probes.iter().zip(&thetas) {
                let mut cfg = opts.cfg();
                cfg.probe_theta = theta;
                let res = run_alg(alg, &r, s, &cfg);
                row.push(mtps(res.sim_throughput_mtps(r.len(), s.len())));
            }
            table.row(row);
        }
        table.note("paper: θ≤0.9 ≈ uniform; at θ=0.99 NOP*-family matches or beats partitioned");
        out.push(table);
    }
    out
}
