//! Extension experiment (beyond the paper): cooperative skew handling.
//!
//! Appendix A attributes the partitioned joins' losses under high skew
//! partly to "unbalanced loads between threads ... for now only handled
//! automatically by a task queue. We do not exploit the possibility to
//! use multiple threads to process the join on the largest partitions in
//! parallel." This experiment implements exactly that
//! (`JoinConfig::skew_handling`, see `mmjoin_core::skew`) and measures
//! how much of the gap it closes on the Figure 15 workloads.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let r_n = opts.tuples(128);
    let s_n = opts.tuples(1280);
    let r = mmjoin_datagen::gen_build_dense(r_n, 0x5F01, opts.placement());
    let mut table = Table::new(
        "Extension — cooperative skew handling (throughput [Mtps,sim], |S|=10·|R|)",
        &["algo", "θ", "baseline", "with skew handling", "gain"],
    );
    for &theta in &[0.51f64, 0.9, 0.99] {
        let s = mmjoin_datagen::gen_probe_zipf(s_n, r_n, theta, 0x5F02, opts.placement());
        for alg in [Algorithm::PrlIs, Algorithm::Cprl, Algorithm::Cpra] {
            let mut base_cfg = opts.cfg();
            base_cfg.probe_theta = theta;
            let base = run_alg(alg, &r, &s, &base_cfg);
            let mut fix_cfg = base_cfg.clone();
            fix_cfg.skew_handling = true;
            let fixed = run_alg(alg, &r, &s, &fix_cfg);
            assert_eq!(base.matches, fixed.matches, "skew handling changed results");
            let b = base.sim_throughput_mtps(r.len(), s.len());
            let f = fixed.sim_throughput_mtps(r.len(), s.len());
            table.row(vec![
                alg.name().to_string(),
                format!("{theta}"),
                mtps(b),
                mtps(f),
                format!("{:.2}x", f / b),
            ]);
        }
    }
    table.note("expected: gains grow with θ — the hot partition no longer serializes one thread");
    vec![table]
}
