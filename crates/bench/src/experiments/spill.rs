//! Extension experiment: the spilling hybrid hash join's graceful
//! degradation curve (DESIGN.md §13).
//!
//! Sweeps the memory budget from unlimited down to 1/8 of the build
//! side's tuple bytes. At every tier SHHJ must reproduce the checksum
//! of an unconstrained PRO run; the interesting output is the price —
//! throughput vs. budget, bytes spilled, partitions evicted, recursion
//! depth — alongside the classic driver's behavior at the same budget
//! (it aborts once the budget refuses its partition buffers).

use mmjoin_core::{Algorithm, Join, JoinConfig, JoinError, JoinResult, SpillCounters};
use mmjoin_util::Relation;

use crate::harness::{HarnessOpts, Table};

/// The budget sweep, as fractions `(num, den)` of the build side's
/// tuple bytes; `None` is unlimited (fully resident mode).
pub const TIERS: [(&str, Option<(usize, usize)>); 6] = [
    ("none", None),
    ("2x", Some((2, 1))),
    ("1x", Some((1, 1))),
    ("1/2", Some((1, 2))),
    ("1/4", Some((1, 4))),
    ("1/8", Some((1, 8))),
];

/// A tier's byte budget for a given build side.
pub fn tier_budget(build_bytes: usize, frac: Option<(usize, usize)>) -> Option<usize> {
    frac.map(|(num, den)| (build_bytes * num / den).max(1))
}

/// Ledger-safe cell name for a tier label ("1/2" -> "shhj_1_2").
pub fn tier_cell(label: &str) -> String {
    format!("shhj_{}", label.replace('/', "_"))
}

/// Plain wall-clock join config (no simulation) at `budget`.
pub fn spill_cfg(threads: usize, budget: Option<usize>) -> JoinConfig {
    let mut cfg = JoinConfig::new(threads);
    cfg.simulate = false;
    cfg.mem_limit = budget;
    cfg
}

/// One driver run at one budget.
pub fn run_at(
    alg: Algorithm,
    r: &Relation,
    s: &Relation,
    threads: usize,
    budget: Option<usize>,
) -> Result<JoinResult, JoinError> {
    Join::new(alg)
        .with_config(spill_cfg(threads, budget))
        .run(r, s)
}

/// SHHJ's completed run at one tier.
pub struct TierOk {
    /// SHHJ wall seconds.
    pub secs: f64,
    pub spill: SpillCounters,
    /// SHHJ checksum equals the unconstrained reference's.
    pub checksum_ok: bool,
}

/// One point of the degradation curve. SHHJ itself refuses a budget
/// only when it sits below the all-spilled buffer floor (tiny
/// workloads at extreme fractions), which comes back as the same
/// `MemoryBudgetExceeded` a classic driver raises.
pub struct TierRun {
    pub label: &'static str,
    pub budget: Option<usize>,
    pub shhj: Result<TierOk, JoinError>,
    /// What the classic in-memory driver (PRO) did at this budget.
    pub classic: Result<f64, JoinError>,
}

/// Sweep all tiers once. `reference` is an unconstrained run whose
/// checksum every feasible tier must reproduce.
pub fn sweep(r: &Relation, s: &Relation, threads: usize, reference: &JoinResult) -> Vec<TierRun> {
    TIERS
        .iter()
        .map(|&(label, frac)| {
            let budget = tier_budget(r.len() * 8, frac);
            let shhj = run_at(Algorithm::Shhj, r, s, threads, budget).map(|res| TierOk {
                secs: res.total_wall().as_secs_f64(),
                spill: res.spill_totals(),
                checksum_ok: res.checksum == reference.checksum && res.matches == reference.matches,
            });
            if let Err(e) = &shhj {
                assert!(
                    matches!(e, JoinError::MemoryBudgetExceeded { .. }),
                    "SHHJ at budget {label} failed: {e}"
                );
            }
            let classic =
                run_at(Algorithm::Pro, r, s, threads, budget).map(|c| c.total_wall().as_secs_f64());
            TierRun {
                label,
                budget,
                shhj,
                classic,
            }
        })
        .collect()
}

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(16, 64, 0x5B1);
    let reference =
        run_at(Algorithm::Pro, &r, &s, opts.threads, None).expect("unconstrained PRO reference");
    let runs = sweep(&r, &s, opts.threads, &reference);

    let mut table = Table::new(
        "Extension — SHHJ graceful degradation vs memory budget (host wall ms)",
        &[
            "budget",
            "mem KiB",
            "SHHJ",
            "Mtps",
            "MiB spilled",
            "parts",
            "depth",
            "checksum",
            "PRO",
        ],
    );
    let tuples = (r.len() + s.len()) as f64;
    for t in &runs {
        let pro = match &t.classic {
            Ok(secs) => format!("{:.1}", secs * 1e3),
            Err(JoinError::MemoryBudgetExceeded { .. }) => "abort".to_string(),
            Err(e) => format!("error: {e}"),
        };
        match &t.shhj {
            Ok(ok) => {
                table.row(vec![
                    t.label.to_string(),
                    t.budget
                        .map(|b| format!("{}", b / 1024))
                        .unwrap_or_else(|| "inf".to_string()),
                    format!("{:.1}", ok.secs * 1e3),
                    format!("{:.0}", tuples / ok.secs.max(1e-12) / 1e6),
                    format!("{:.2}", ok.spill.bytes_spilled as f64 / (1024.0 * 1024.0)),
                    format!("{}", ok.spill.partitions_spilled),
                    format!("{}", ok.spill.recursion_depth),
                    if ok.checksum_ok { "ok" } else { "MISMATCH" }.to_string(),
                    pro,
                ]);
                assert!(ok.checksum_ok, "SHHJ@{}: checksum mismatch", t.label);
            }
            // Budget below even the all-spilled buffer floor: no plan
            // exists at this workload size, same refusal as a classic
            // driver. Only reachable at tiny --scale factors.
            Err(_) => {
                table.row(vec![
                    t.label.to_string(),
                    t.budget
                        .map(|b| format!("{}", b / 1024))
                        .unwrap_or_else(|| "inf".to_string()),
                    "abort".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    pro,
                ]);
            }
        }
    }
    table.note(
        "every feasible tier reproduces the unconstrained PRO checksum; the curve is the cost",
    );
    table.note("PRO column: classic in-memory driver at the same budget (abort = budget refused)");
    vec![table]
}
