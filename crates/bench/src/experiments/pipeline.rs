//! Extension experiment: the fused operator pipeline (DESIGN.md §12) vs
//! the materialized two-step baseline on a two-join chain
//! `(R1 ⋈ S) ⋈ R2 ON R1.payload = R2.key`, per ported driver.
//!
//! The fused plan streams `(key, rid)` batches through both build sides
//! and gathers payloads only at the sink; the baseline materializes the
//! full intermediate join index and re-runs the driver over it. Both
//! must produce the same checksum — the difference is end-to-end time
//! and the intermediate bytes the fused plan never writes.

use std::time::Instant;

use mmjoin_core::materialize::chain_two_step;
use mmjoin_core::pipeline::{BuildSide, Pipeline, PORTED};
use mmjoin_core::{Algorithm, JoinConfig};
use mmjoin_util::Relation;

use crate::harness::{HarnessOpts, Table};

/// One fused-vs-two-step comparison of a two-join chain.
pub struct ChainRun {
    /// End-to-end fused wall seconds (both prepares + fused probe).
    pub fused_secs: f64,
    /// End-to-end two-step wall seconds (join index + final driver).
    pub two_step_secs: f64,
    /// Matches reaching the sink (identical on both paths when
    /// `checksum_ok`).
    pub matches: u64,
    /// Stage-boundary matches the fused plan never materialized.
    pub intermediate_matches: u64,
    /// `intermediate_matches` × bytes of one intermediate tuple.
    pub bytes_avoided: u64,
    /// Fused checksum equals the two-step baseline's.
    pub checksum_ok: bool,
}

/// The chain workload: `R1` with payloads linking into `R2`'s dense key
/// domain, and a uniform FK probe over `R1`.
pub fn chain_workload(
    opts: &HarnessOpts,
    r1_m: usize,
    r2_m: usize,
    s_m: usize,
    seed: u64,
) -> (Relation, Relation, Relation) {
    let n1 = opts.tuples(r1_m);
    let n2 = opts.tuples(r2_m);
    let r1 = mmjoin_datagen::gen_build_linked(n1, n2, seed, opts.placement());
    let r2 = mmjoin_datagen::gen_build_dense(n2, seed ^ 0xD00D, opts.placement());
    let s = mmjoin_datagen::gen_probe_fk(opts.tuples(s_m), n1, seed ^ 0xBEEF, opts.placement());
    (r1, r2, s)
}

/// Run the chain both ways under `threads` host workers and compare.
pub fn run_chain(
    alg: Algorithm,
    r1: &Relation,
    r2: &Relation,
    s: &Relation,
    threads: usize,
) -> ChainRun {
    let mut cfg = JoinConfig::new(threads);
    cfg.simulate = false;

    let start = Instant::now();
    let stage1 = BuildSide::prepare(alg, r1, &cfg).expect("stage-1 build side");
    let stage2 = BuildSide::prepare(alg, r2, &cfg).expect("stage-2 build side");
    let fused = Pipeline::new()
        .with_stage(stage1)
        .with_stage(stage2)
        .with_config(cfg.clone())
        .run(s)
        .expect("fused pipeline");
    let fused_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let base = chain_two_step(r1, r2, s, alg, &cfg).expect("two-step baseline");
    let two_step_secs = start.elapsed().as_secs_f64();

    ChainRun {
        fused_secs,
        two_step_secs,
        matches: fused.matches,
        intermediate_matches: fused.intermediate_matches,
        bytes_avoided: fused.bytes_avoided,
        checksum_ok: fused.checksum == base.checksum && fused.matches == base.matches,
    }
}

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut table = Table::new(
        "Extension — fused operator pipeline vs materialized two-step chain (host wall ms)",
        &[
            "driver",
            "fused",
            "two-step",
            "two-step/fused",
            "interm tuples",
            "MiB avoided",
            "checksum",
        ],
    );
    let (r1, r2, s) = chain_workload(opts, 16, 4, 64, 0xF0A);
    for alg in PORTED {
        let run = run_chain(alg, &r1, &r2, &s, opts.threads);
        table.row(vec![
            alg.name().to_string(),
            format!("{:.1}", run.fused_secs * 1e3),
            format!("{:.1}", run.two_step_secs * 1e3),
            format!("{:.2}", run.two_step_secs / run.fused_secs.max(1e-12)),
            format!("{}", run.intermediate_matches),
            format!("{:.2}", run.bytes_avoided as f64 / (1024.0 * 1024.0)),
            if run.checksum_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
        assert!(run.checksum_ok, "{alg}: fused/two-step checksum mismatch");
    }
    table.note("fused end-to-end includes both build sides; two-step includes the join-index");
    table.note("materialization the fused plan skips — 'MiB avoided' is that intermediate's size");
    vec![table]
}
