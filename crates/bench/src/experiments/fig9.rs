//! Figure 9: average total time per tuple (partition + join) when
//! varying the radix bits, across build sizes, for the five partitioned
//! joins PROiS/PRAiS/PRLiS/CPRL/CPRA — both the "hash table fits L2"
//! heuristic and the empirically optimal bits.
//!
//! Paper expectation: the L2 heuristic matches the optimum until SWWCB
//! state outgrows the LLC share, then partitioning costs explode and
//! fewer bits win (columns (b) vs (d) diverge for |R| ≥ 512 M).

use mmjoin_core::config::TableKind;
use mmjoin_core::pro::{join_cpr, join_pro};
use mmjoin_core::stats::JoinResult;
use mmjoin_util::Relation;

use crate::harness::{run_trial_with, HarnessOpts, Table};

const ALGOS: [(&str, TableKind, Mode); 5] = [
    ("PROiS", TableKind::Chained, Mode::ProIs),
    ("PRAiS", TableKind::Array, Mode::ProIs),
    ("PRLiS", TableKind::Linear, Mode::ProIs),
    ("CPRL", TableKind::Linear, Mode::Cpr),
    ("CPRA", TableKind::Array, Mode::Cpr),
];

#[derive(Copy, Clone, Debug, PartialEq)]
enum Mode {
    ProIs,
    Cpr,
}

fn run_algo(
    mode: Mode,
    kind: TableKind,
    r: &Relation,
    s: &Relation,
    opts: &HarnessOpts,
    bits: u32,
) -> Option<JoinResult> {
    let mut cfg = opts.cfg();
    cfg.radix_bits = Some(bits);
    run_trial_with(
        &format!("fig9 {mode:?}/{kind:?} bits={bits}"),
        || match mode {
            Mode::ProIs => join_pro(r, s, &cfg, kind, true),
            Mode::Cpr => join_cpr(r, s, &cfg, kind),
        },
    )
}

/// Sim ns/tuple of a trial; a twice-failed trial ranks as infinitely
/// slow so the bit search never selects it.
fn ns_per_tuple(res: &Option<JoinResult>, tuples: usize) -> f64 {
    res.as_ref()
        .map_or(f64::INFINITY, |r| r.total_sim() * 1e9 / tuples as f64)
}

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut out = Vec::new();
    // Paper sizes 16M..256M for |S|=10|R| and 16M..2048M for |S|=|R|.
    for (panel, sizes_m, ratio) in [
        ("(a/c) |S| = 10·|R|", vec![16usize, 64, 256], 10usize),
        ("(b/d) |S| = |R|", vec![16usize, 128, 1024, 2048], 1usize),
    ] {
        let mut table = Table::new(
            format!("Figure 9 {panel} — avg total sim time per tuple [ns]"),
            &[
                "algo",
                "|R|[paper M]",
                "L2-fit bits",
                "ns@L2-fit",
                "best bits",
                "ns@best",
            ],
        );
        for &r_m in &sizes_m {
            let r_n = opts.tuples(r_m);
            let s_n = opts.tuples(r_m * ratio);
            let r = mmjoin_datagen::gen_build_dense(r_n, r_m as u64, opts.placement());
            let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, r_m as u64 ^ 0x99, opts.placement());
            let tuples = r_n + s_n;
            for (name, kind, mode) in ALGOS {
                let cfg = opts.cfg();
                let l2fit_bits = match kind {
                    TableKind::Array => cfg.bits_for_array_tables(r_n),
                    _ => {
                        // Pure L2 branch of Equation (1), ignoring the
                        // LLC cap — the assumption panels (a)/(b) test.
                        let target = r_n as f64 * 8.0 / (0.5 * cfg.topology.l2_bytes() as f64);
                        (target.log2().ceil().max(1.0) as u32).clamp(1, 18)
                    }
                };
                let res = run_algo(mode, kind, &r, &s, opts, l2fit_bits);
                let at_l2 = ns_per_tuple(&res, tuples);
                // Search ±2 bits around the heuristic for the optimum.
                let mut best = (l2fit_bits, at_l2);
                for delta in [-2i32, -1, 1, 2] {
                    let b = l2fit_bits as i32 + delta;
                    if !(1..=18).contains(&b) {
                        continue;
                    }
                    let res = run_algo(mode, kind, &r, &s, opts, b as u32);
                    let ns = ns_per_tuple(&res, tuples);
                    if ns < best.1 {
                        best = (b as u32, ns);
                    }
                }
                table.row(vec![
                    name.to_string(),
                    r_m.to_string(),
                    l2fit_bits.to_string(),
                    format!("{:.3}", at_l2),
                    best.0.to_string(),
                    format!("{:.3}", best.1),
                ]);
            }
        }
        table.note("paper: best bits < L2-fit bits once SWWCB state outgrows the LLC share");
        out.push(table);
    }
    out
}
