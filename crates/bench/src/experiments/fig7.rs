//! Figure 7: the PR* algorithms against their improved-scheduling
//! variants (PR*iS) and the CPR* algorithms, phase breakdown.
//!
//! Paper expectation: improved scheduling speeds the PR* join phase by
//! more than 2×; PR*iS join phases end up slightly cheaper than CPR*'s
//! (contiguous single-node reads vs gathers), but CPR* stays slightly
//! ahead in total thanks to its cheaper partition phase. The table-kind
//! differences (chained vs linear vs array) are now visible.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{ms, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF167);
    let cfg = opts.cfg();
    let mut table = Table::new(
        "Figure 7 — PR*/CPR* vs improved scheduling (simulated ms)",
        &["algo", "partition[ms]", "join[ms]", "total[ms]"],
    );
    for alg in [
        Algorithm::Pro,
        Algorithm::ProIs,
        Algorithm::Prl,
        Algorithm::PrlIs,
        Algorithm::Pra,
        Algorithm::PraIs,
        Algorithm::Cprl,
        Algorithm::Cpra,
    ] {
        let res = run_alg(alg, &r, &s, &cfg);
        table.row(vec![
            alg.name().to_string(),
            ms(res.sim_of("partition")),
            ms(res.sim_of("join")),
            ms(res.total_sim()),
        ]);
    }
    table.note(
        "paper: *iS join phases >2x faster than unscheduled PR*; CPR* still fastest in total",
    );
    vec![table]
}
