//! Figure 2: PRO throughput for 8–16 total radix bits, single-pass vs
//! two-pass partitioning (two-pass splits the bits evenly).
//!
//! Paper expectation: single-pass peaks around 14 bits and beats
//! two-pass everywhere (SWWCB removes the TLB pressure that forced two
//! passes in the first place).

use mmjoin_core::config::TableKind;
use mmjoin_core::pro::{join_pro, join_pro_two_pass};

use crate::harness::{cell_or_failed, mtps, run_trial_with, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF162);
    // Scale the bit range with the input (the paper's 8..16 bits belong
    // to |R| = 128 M; scaled runs shift by log2(scale)).
    let shift = (opts.scale as f64).log2().round() as i32;
    let mut table = Table::new(
        format!(
            "Figure 2 — PRO throughput vs radix bits (paper bits 8..16, shifted by -{shift} for scale)"
        ),
        &["paper_bits", "bits_used", "1-pass[Mtps,sim]", "2-pass[Mtps,sim]"],
    );
    for paper_bits in 8..=16u32 {
        let bits = (paper_bits as i32 - shift).clamp(2, 18) as u32;
        let mut cfg = opts.cfg();
        cfg.radix_bits = Some(bits);
        let one = run_trial_with(&format!("fig2 PRO 1-pass bits={bits}"), || {
            join_pro(&r, &s, &cfg, TableKind::Chained, false)
        });
        let two = run_trial_with(&format!("fig2 PRO 2-pass bits={bits}"), || {
            join_pro_two_pass(&r, &s, &cfg, TableKind::Chained)
        });
        table.row(vec![
            paper_bits.to_string(),
            bits.to_string(),
            cell_or_failed(&one, |res| mtps(res.sim_throughput_mtps(r.len(), s.len()))),
            cell_or_failed(&two, |res| mtps(res.sim_throughput_mtps(r.len(), s.len()))),
        ]);
    }
    table.note("paper: single-pass with 14 bits is the sweet spot; 1-pass ≥ 2-pass throughout");
    vec![table]
}
