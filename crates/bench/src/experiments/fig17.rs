//! Figure 17 (Appendix C): holes in the key range — the build relation
//! holds |R| distinct keys from a domain k·|R|, k = 1..20.
//!
//! Paper expectation: NOPA is barely affected (its probes missed caches
//! anyway; only memory footprint grows); the partitioned array joins
//! (PRAiS/CPRA) degrade as the per-partition arrays outgrow the caches —
//! unless the number of partitions adapts to the domain (dashed lines),
//! which restores their performance.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

const ALGOS: [Algorithm; 7] = [
    Algorithm::Nop,
    Algorithm::Nopa,
    Algorithm::Cprl,
    Algorithm::Cpra,
    Algorithm::ProIs,
    Algorithm::PrlIs,
    Algorithm::PraIs,
];

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let ks = [1usize, 2, 4, 8, 16, 20];
    let r_n = opts.tuples(128);
    let s_n = opts.tuples(1280);
    let mut headers: Vec<String> = vec!["algo".into()];
    headers.extend(ks.iter().map(|k| format!("k={k}")));
    let mut table = Table::new(
        "Figure 17 — sparse domains (throughput [Mtps,sim], domain = k·|R|)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    // Pre-generate workloads per k.
    let workloads: Vec<_> = ks
        .iter()
        .map(|&k| {
            let (r, keys) =
                mmjoin_datagen::gen_build_sparse(r_n, k * r_n, 0xF171 + k as u64, opts.placement());
            let s =
                mmjoin_datagen::gen_probe_of_keys(s_n, &keys, 0xF172 ^ k as u64, opts.placement());
            (k, r, s)
        })
        .collect();

    // Fixed-bits baseline for the array joins: the dense (k=1) setting.
    let dense_cfg = opts.cfg();
    let dense_array_bits = dense_cfg.bits_for_array_tables(r_n);

    for alg in ALGOS {
        let mut row = vec![alg.name().to_string()];
        for (k, r, s) in &workloads {
            let mut cfg = opts.cfg();
            cfg.key_domain = k * r_n;
            if alg.needs_dense_domain() {
                // Solid lines: partition bits NOT adapted to the domain.
                cfg.radix_bits = Some(dense_array_bits);
            }
            let res = run_alg(alg, r, s, &cfg);
            row.push(mtps(res.sim_throughput_mtps(r.len(), s.len())));
        }
        table.row(row);
    }

    // Dashed lines: PRAiS/CPRA with domain-adaptive partitioning.
    for alg in [Algorithm::PraIs, Algorithm::Cpra] {
        let mut row = vec![format!("{}+adapt", alg.name())];
        for (k, r, s) in &workloads {
            let mut cfg = opts.cfg();
            cfg.key_domain = k * r_n;
            // radix_bits unset => Equation (1) adapted to the domain.
            let res = run_alg(alg, r, s, &cfg);
            row.push(mtps(res.sim_throughput_mtps(r.len(), s.len())));
        }
        table.row(row);
    }
    table.note("paper: NOPA ~flat; fixed-bits PRAiS/CPRA degrade with k; adaptive bits recover");
    vec![table]
}
