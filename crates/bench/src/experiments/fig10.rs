//! Figure 10: throughput of the nine surviving joins when scaling the
//! dataset size, for |S| = 10·|R| and |S| = |R|.
//!
//! Paper expectation: for tiny inputs (≤ 4 M tuples) everyone is
//! similar and the NOP* family shines (build table fits the LLC); with
//! growing |R| the NOP*/CHTJ throughput collapses once the global table
//! outgrows the LLC while the PR*/CPR* algorithms hold steady; MWAY is
//! stable but below the radix joins; CHTJ is the most size-sensitive.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

const ALGOS: [Algorithm; 9] = [
    Algorithm::Mway,
    Algorithm::Chtj,
    Algorithm::Nop,
    Algorithm::Nopa,
    Algorithm::Cprl,
    Algorithm::Cpra,
    Algorithm::ProIs,
    Algorithm::PrlIs,
    Algorithm::PraIs,
];

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut out = Vec::new();
    for (panel, sizes_m, ratio) in [
        (
            "(a) |S| = 10·|R|",
            vec![1usize, 4, 16, 64, 128, 256],
            10usize,
        ),
        (
            "(b) |S| = |R|",
            vec![1usize, 8, 64, 256, 1024, 2048],
            1usize,
        ),
    ] {
        let mut headers: Vec<String> = vec!["algo".into()];
        headers.extend(sizes_m.iter().map(|m| format!("{m}M")));
        let mut table = Table::new(
            format!("Figure 10 {panel} — simulated throughput [Mtps] vs |R| (paper sizes)"),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let workloads: Vec<_> = sizes_m
            .iter()
            .map(|&m| {
                let r_n = opts.tuples(m);
                let s_n = opts.tuples(m * ratio);
                let r = mmjoin_datagen::gen_build_dense(r_n, m as u64 + 10, opts.placement());
                let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, m as u64 ^ 0xA0, opts.placement());
                (r, s)
            })
            .collect();
        for alg in ALGOS {
            let mut row = vec![alg.name().to_string()];
            for (r, s) in &workloads {
                let cfg = opts.cfg();
                let res = run_alg(alg, r, s, &cfg);
                row.push(mtps(res.sim_throughput_mtps(r.len(), s.len())));
            }
            table.row(row);
        }
        table.note("paper: NOP*/CHTJ degrade beyond LLC-sized builds; PR*/CPR* dominate at scale");
        out.push(table);
    }
    out
}
