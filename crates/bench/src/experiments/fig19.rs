//! Figure 19 (Appendix G): the five-step morph from the naked-join
//! micro-benchmark to the full Q19, at two thread counts.
//!
//! Paper expectation: dynamic filtering — not tuple reconstruction — is
//! the dominant overhead; at the lower thread count even the join-index
//! variant beats the pipelined one, at 60 threads it flips.

use mmjoin_tpch::morph::run_morph;
use mmjoin_tpch::{generate_tables, GenParams};

use crate::harness::{HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let sf = 100.0 / opts.scale as f64;
    let (p, l) = generate_tables(&GenParams {
        scale_factor: sf,
        pre_selectivity: 0.0357,
        seed: 0xF191,
    });
    let threads_lo = opts.threads;
    let threads_hi = (opts.threads * 2).max(2);
    let mut table = Table::new(
        format!("Figure 19 — morphing the micro-benchmark into Q19 (SF {sf:.2}, host wall ms)"),
        &[
            "variant",
            &format!("{threads_lo} thr"),
            &format!("{threads_hi} thr"),
        ],
    );
    let lo = run_morph(&p, &l, threads_lo);
    let hi = run_morph(&p, &l, threads_hi);
    for (a, b) in lo.iter().zip(&hi) {
        table.row(vec![
            a.label.to_string(),
            format!("{:.1}", a.wall.as_secs_f64() * 1e3),
            format!("{:.1}", b.wall.as_secs_f64() * 1e3),
        ]);
    }
    table.note("paper: filtering the input rows eats most of the added time; join index pays off only at lower thread counts");
    vec![table]
}
