//! Figure 6: per-node bandwidth profiles of the join phase for PRO,
//! PROiS and CPRL (the VTune bandwidth plots of Section 6.2).
//!
//! Paper expectation: PRO's sequential task order saturates one memory
//! controller at a time (a "staircase" across nodes); PROiS and CPRL
//! drive all four nodes simultaneously.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{HarnessOpts, Table};

const BUCKETS: usize = 16;

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF166);
    let mut cfg = opts.cfg();
    cfg.keep_timelines = true;

    let mut out = Vec::new();
    for alg in [Algorithm::Pro, Algorithm::ProIs, Algorithm::Cprl] {
        let res = run_alg(alg, &r, &s, &cfg);
        let Some((_, sim)) = res.timelines.iter().find(|(name, _)| *name == "join") else {
            continue;
        };
        let buckets = sim.bucketed_utilization(BUCKETS);
        let mut table = Table::new(
            format!(
                "Figure 6 — join-phase bandwidth profile, {} (% of node bw)",
                alg.name()
            ),
            &["time", "node0", "node1", "node2", "node3"],
        );
        for (i, b) in buckets.iter().enumerate() {
            let mut row = vec![format!("{:>3}%", i * 100 / BUCKETS)];
            for util in b.iter().take(cfg.topology.nodes) {
                row.push(format!("{:.0}", util * 100.0));
            }
            table.row(row);
        }
        if alg == Algorithm::Pro {
            table.note("paper: one hot node at a time (staircase)");
        } else {
            table.note("paper: all nodes utilized simultaneously");
        }
        out.push(table);
    }
    out
}
