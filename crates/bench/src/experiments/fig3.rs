//! Figure 3: the black-box field plus the white-box-improved variants
//! NOPA, PRO, PRL, PRA.
//!
//! Paper expectation: the optimized radix joins (PRO/PRL/PRA) now beat
//! NOP — roughly a 2× improvement over Figure 1's black-box versions —
//! and the three hash-table choices barely differ (the surprise that
//! Section 6.2 later explains away).

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF163);
    let cfg = opts.cfg();
    let mut table = Table::new(
        "Figure 3 — join throughput including improved versions",
        &["algo", "throughput[Mtps,sim]", "wall[ms,host]"],
    );
    for alg in [
        Algorithm::Mway,
        Algorithm::Chtj,
        Algorithm::Prb,
        Algorithm::Nop,
        Algorithm::Nopa,
        Algorithm::Pro,
        Algorithm::Prl,
        Algorithm::Pra,
    ] {
        let res = run_alg(alg, &r, &s, &cfg);
        table.row(vec![
            alg.name().to_string(),
            mtps(res.sim_throughput_mtps(r.len(), s.len())),
            format!("{:.1}", res.total_wall().as_secs_f64() * 1e3),
        ]);
    }
    table.note("paper: PRO/PRL/PRA ≈ equal and clearly above NOP/NOPA; ~2x over Figure 1");
    vec![table]
}
