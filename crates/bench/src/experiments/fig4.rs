//! Figure 4: the NUMA write patterns of PRO vs CPRL, quantified as
//! node-to-node traffic matrices for the scatter (write) portion of the
//! partition phase.
//!
//! The paper shows these as schematic arrows; here we print the actual
//! byte matrices the cost model attributes: PRO writes to *all* nodes
//! (3/4 of scatter bytes remote on 4 sockets), CPRL writes only locally.

use mmjoin_numamodel::traffic::{AccessClass, TrafficMatrix};

use crate::harness::{HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let cfg = opts.cfg();
    let nodes = cfg.topology.nodes;
    let r_bytes = opts.tuples(128) as f64 * 8.0;
    let threads = opts.sim_threads;
    let per_thread = r_bytes / threads as f64;

    let mut out = Vec::new();
    for (label, local) in [("PRO (Figure 4(b))", false), ("CPRL (Figure 4(d))", true)] {
        let mut m = TrafficMatrix::new(nodes);
        for t in 0..threads {
            let home = cfg.topology.node_of_thread(t);
            if local {
                m.add(AccessClass::SeqWrite, home, home, per_thread);
            } else {
                for n in 0..nodes {
                    m.add(AccessClass::RandWrite, home, n, per_thread / nodes as f64);
                }
            }
        }
        let mut table = Table::new(
            format!("Figure 4 — scatter write traffic, {label} [MB]"),
            &["from\\to", "node0", "node1", "node2", "node3"],
        );
        for from in 0..nodes {
            let mut row = vec![format!("node{from}")];
            for to in 0..nodes {
                let b = m.get(AccessClass::SeqWrite, from, to)
                    + m.get(AccessClass::RandWrite, from, to);
                row.push(format!("{:.1}", b / 1e6));
            }
            table.row(row);
        }
        table.note(format!(
            "remote write bytes: {:.1} MB of {:.1} MB total",
            m.remote_write_bytes() / 1e6,
            m.total_bytes() / 1e6
        ));
        out.push(table);
    }
    out
}
