//! Figure 8: all thirteen joins with small (4 KB) vs huge (2 MB) pages.
//!
//! Paper expectation: every algorithm improves with huge pages — except
//! PRB, whose unbuffered 128-way scatter fits the 256-entry 4 KB TLB but
//! thrashes the 32-entry huge-page TLB.

use mmjoin_core::Algorithm;

use super::run_alg;
use mmjoin_numamodel::topology::PageSize;

use crate::harness::{mtps, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF168);
    let mut table = Table::new(
        "Figure 8 — 4 KB vs 2 MB pages (simulated throughput, Mtps)",
        &["algo", "4KB pages", "2MB pages", "huge/small"],
    );
    for alg in Algorithm::ALL {
        let mut per_page = Vec::new();
        for page in [PageSize::Small4K, PageSize::Huge2M] {
            let mut cfg = opts.cfg();
            cfg.topology.page_size = page;
            let res = run_alg(alg, &r, &s, &cfg);
            per_page.push(res.sim_throughput_mtps(r.len(), s.len()));
        }
        table.row(vec![
            alg.name().to_string(),
            mtps(per_page[0]),
            mtps(per_page[1]),
            format!("{:.2}", per_page[1] / per_page[0]),
        ]);
    }
    table.note("paper: ratio > 1 for all algorithms except PRB (< 1)");
    vec![table]
}
