//! Figure 1: black-box comparison of the four fundamental join
//! representatives — MWAY, CHTJ, PRB, NOP — with 32 (simulated) threads
//! and |R| = 128 M, |S| = 1280 M.
//!
//! Paper expectation: NOP fastest, then PRB, CHTJ, MWAY — the black-box
//! baseline whose contradiction with later figures motivates the study.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{mtps, HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let (r, s) = opts.workload(128, 1280, 0xF161);
    let cfg = opts.cfg();
    let mut table = Table::new(
        format!(
            "Figure 1 — black-box comparison (|R|={}, |S|={}, {} sim threads, scale 1/{})",
            r.len(),
            s.len(),
            opts.sim_threads,
            opts.scale
        ),
        &["algo", "throughput[Mtps,sim]", "wall[ms,host]", "matches"],
    );
    for alg in [
        Algorithm::Mway,
        Algorithm::Chtj,
        Algorithm::Prb,
        Algorithm::Nop,
    ] {
        let res = run_alg(alg, &r, &s, &cfg);
        table.row(vec![
            alg.name().to_string(),
            mtps(res.sim_throughput_mtps(r.len(), s.len())),
            format!("{:.1}", res.total_wall().as_secs_f64() * 1e3),
            res.matches.to_string(),
        ]);
    }
    table.note("paper: NOP > PRB > CHTJ ≈ MWAY in this un-tuned, black-box setting");
    vec![table]
}
