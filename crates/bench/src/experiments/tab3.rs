//! Table 3: relative speedup when scaling from 4 to 60 threads, total
//! and per phase, for both workload shapes.
//!
//! Paper expectation: no method reaches the perfect 15×; CPRL/CPRA come
//! closest (~12×), the NOP family lands around 10–11×.

use mmjoin_core::Algorithm;

use super::run_alg;

use crate::harness::{HarnessOpts, Table};

const ALGOS: [Algorithm; 8] = [
    Algorithm::Chtj,
    Algorithm::Nop,
    Algorithm::Nopa,
    Algorithm::Cprl,
    Algorithm::Cpra,
    Algorithm::ProIs,
    Algorithm::PrlIs,
    Algorithm::PraIs,
];

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let mut out = Vec::new();
    for (panel, s_m) in [("(a) |S| = 10·|R|", 1280usize), ("(b) |S| = |R|", 128usize)] {
        let r_n = opts.tuples(128);
        let s_n = opts.tuples(s_m);
        let r = mmjoin_datagen::gen_build_dense(r_n, 0x7AB3, opts.placement());
        let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, 0x7AB4, opts.placement());
        let mut table = Table::new(
            format!("Table 3 {panel} — relative speedup 4 → 60 simulated threads"),
            &[
                "join",
                "4thr[Mtps]",
                "60thr[Mtps]",
                "total x",
                "build/part x",
                "probe/join x",
            ],
        );
        for alg in ALGOS {
            let run_at = |t: usize| {
                let mut cfg = opts.cfg();
                cfg.sim_threads = Some(t);
                run_alg(alg, &r, &s, &cfg)
            };
            let r4 = run_at(4);
            let r60 = run_at(60);
            let first = |res: &mmjoin_core::JoinResult| {
                res.sim_of("partition") + res.sim_of("build") + res.sim_of("sort")
            };
            let second = |res: &mmjoin_core::JoinResult| res.sim_of("join") + res.sim_of("probe");
            table.row(vec![
                alg.name().to_string(),
                format!("{:.0}", r4.sim_throughput_mtps(r.len(), s.len())),
                format!("{:.0}", r60.sim_throughput_mtps(r.len(), s.len())),
                format!("{:.1}", r4.total_sim() / r60.total_sim().max(1e-12)),
                format!("{:.1}", first(&r4) / first(&r60).max(1e-12)),
                format!("{:.1}", second(&r4) / second(&r60).max(1e-12)),
            ]);
        }
        table.note("perfect speedup would be 15.0; paper: CPR* ~12, NOP* ~10.5");
        out.push(table);
    }
    out
}
