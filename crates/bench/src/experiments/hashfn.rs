//! Extra ablation (beyond the paper, which cites Lang et al. for it):
//! the hash-function choice inside a fixed single-threaded probe kernel.
//!
//! Identity hashing is free and collision-free for dense keys — exactly
//! why the study standardizes on it; mixing functions pay compute and,
//! for linear tables, extra collisions.

use std::time::Instant;

use mmjoin_hashtable::{
    CrcHash, IdentityHash, KeyHash, MultiplicativeHash, MurmurHash, StLinearTable,
};
use mmjoin_util::Tuple;

use crate::harness::{HarnessOpts, Table};

fn bench_hash<H: KeyHash + Default>(n: usize, probes: usize) -> (f64, u64) {
    let mut table = StLinearTable::<H>::with_capacity(n);
    for k in 1..=n as u32 {
        table.insert(Tuple::new(k, k));
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..probes {
        let key = (i % n) as u32 + 1;
        table.probe_first(key, |p| acc = acc.wrapping_add(p as u64));
    }
    (start.elapsed().as_secs_f64() * 1e9 / probes as f64, acc)
}

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let n = opts.tuples(16).min(1 << 22);
    let probes = n * 4;
    let mut table = Table::new(
        format!("Extra — hash-function ablation (linear table, n={n}, host ns/probe)"),
        &["hash", "ns/probe", "checksum"],
    );
    let (t, c) = bench_hash::<IdentityHash>(n, probes);
    table.row(vec!["identity".into(), format!("{t:.2}"), c.to_string()]);
    let (t, c) = bench_hash::<MultiplicativeHash>(n, probes);
    table.row(vec![
        "multiplicative".into(),
        format!("{t:.2}"),
        c.to_string(),
    ]);
    let (t, c) = bench_hash::<MurmurHash>(n, probes);
    table.row(vec!["murmur".into(), format!("{t:.2}"), c.to_string()]);
    let (t, c) = bench_hash::<CrcHash>(n, probes);
    table.row(vec![
        "crc32c (bitwise)".into(),
        format!("{t:.2}"),
        c.to_string(),
    ]);
    table.note("identity is fastest on dense keys (no mixing, no collisions)");
    vec![table]
}
