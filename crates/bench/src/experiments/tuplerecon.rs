//! Extension experiment (the paper's future work, Sections 8/10):
//! tuple-reconstruction strategies for the CPR* family inside Q19 —
//! late materialization (row ids through the partitions, attributes
//! fetched randomly after the match) vs early materialization
//! (attributes carried through the partitions in wide records).

use mmjoin_tpch::q19::{run_q19, Q19Join};
use mmjoin_tpch::strategies::run_q19_cprl_early;
use mmjoin_tpch::{generate_tables, GenParams};

use crate::harness::{HarnessOpts, Table};

pub fn run(opts: &HarnessOpts) -> Vec<Table> {
    let sf = 100.0 / opts.scale as f64;
    let mut table = Table::new(
        format!("Extension — CPRL tuple reconstruction in Q19 (SF {sf:.2}, host wall ms)"),
        &[
            "selectivity",
            "late total",
            "late join",
            "early total",
            "early join",
            "early/late",
        ],
    );
    for sel in [0.0357f64, 0.25, 1.0] {
        let (p, l) = generate_tables(&GenParams {
            scale_factor: sf,
            pre_selectivity: sel,
            seed: 0x7EC0,
        });
        let late = run_q19(Q19Join::Cprl, &p, &l, opts.threads);
        let early = run_q19_cprl_early(&p, &l, opts.threads);
        let rel_err = (late.revenue - early.revenue).abs() / late.revenue.abs().max(1.0);
        assert!(rel_err < 1e-6, "strategies disagree: {rel_err}");
        table.row(vec![
            format!("{:.0}%", sel * 100.0),
            format!("{:.1}", late.total_wall().as_secs_f64() * 1e3),
            format!("{:.1}", late.probe_wall.as_secs_f64() * 1e3),
            format!("{:.1}", early.total_wall().as_secs_f64() * 1e3),
            format!("{:.1}", early.probe_wall.as_secs_f64() * 1e3),
            format!(
                "{:.2}",
                early.total_wall().as_secs_f64() / late.total_wall().as_secs_f64()
            ),
        ]);
    }
    table.note("early pays ~2x probe-side partition bytes; late pays random reconstruction reads;");
    table
        .note("with Q19's two reconstructed columns, late wins at high selectivity on this host —");
    table.note("the break-even shifts toward early as more attributes must be reconstructed");
    vec![table]
}
