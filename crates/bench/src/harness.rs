//! Experiment plumbing: options, workload sizing, result tables, and
//! the fault-tolerant trial runner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mmjoin_core::{JoinConfig, JoinError, JoinResult};
use mmjoin_numamodel::Topology;
use mmjoin_util::{Placement, Relation};

/// Trials that failed twice (initial run + retry) across the process.
static FAILED_TRIALS: AtomicU64 = AtomicU64::new(0);
/// Trials whose first attempt failed (whether or not the retry passed).
static RETRIED_TRIALS: AtomicU64 = AtomicU64::new(0);
/// Failed trials whose terminal error was `MemoryBudgetExceeded` — a
/// resource refusal, not a defect; reported separately so a budget
/// sweep's expected aborts don't read as harness breakage.
static FAILED_RESOURCE_TRIALS: AtomicU64 = AtomicU64::new(0);
/// Failed trials whose terminal error was `JoinError::Io` (spill-file
/// I/O): disk trouble, also distinct from panics/logic failures.
static FAILED_IO_TRIALS: AtomicU64 = AtomicU64::new(0);

/// Opt-in per-trial sample log: `(trial label, wall seconds)` for every
/// successful trial, in completion order. Off (None) unless a ledger
/// recorder enabled it — the raw repeat vectors behind `repro --ledger`.
static SAMPLE_LOG: Mutex<Option<Vec<(String, f64)>>> = Mutex::new(None);

/// A point-in-time view of the process-wide retry/failure counters.
///
/// The counters themselves are process-global and monotonic; a sweep
/// that wants *its own* counts (a second sweep in the same process, the
/// sentinel's back-to-back runs) takes a snapshot before starting and
/// reads `delta()` after, instead of re-reporting everything that came
/// before it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialCounters {
    /// Trials whose first attempt failed (retry may have passed).
    pub retried: u64,
    /// Trials that failed both attempts (all causes).
    pub failed: u64,
    /// Subset of `failed` that ended in `MemoryBudgetExceeded`.
    pub failed_resource: u64,
    /// Subset of `failed` that ended in `JoinError::Io`.
    pub failed_io: u64,
}

impl TrialCounters {
    /// Current value of the process-wide counters.
    pub fn snapshot() -> TrialCounters {
        TrialCounters {
            retried: RETRIED_TRIALS.load(Ordering::Relaxed),
            failed: FAILED_TRIALS.load(Ordering::Relaxed),
            failed_resource: FAILED_RESOURCE_TRIALS.load(Ordering::Relaxed),
            failed_io: FAILED_IO_TRIALS.load(Ordering::Relaxed),
        }
    }

    /// Counts accumulated since this snapshot was taken.
    pub fn delta(&self) -> TrialCounters {
        let now = TrialCounters::snapshot();
        TrialCounters {
            retried: now.retried.saturating_sub(self.retried),
            failed: now.failed.saturating_sub(self.failed),
            failed_resource: now.failed_resource.saturating_sub(self.failed_resource),
            failed_io: now.failed_io.saturating_sub(self.failed_io),
        }
    }
}

/// Start recording `(label, seconds)` for every successful trial.
/// Clears anything a previous recording left behind.
pub fn enable_sample_log() {
    let mut log = SAMPLE_LOG.lock().unwrap_or_else(|e| e.into_inner());
    *log = Some(Vec::new());
}

/// Stop recording and hand back everything recorded since
/// [`enable_sample_log`]. Returns an empty vec when recording was never
/// enabled.
pub fn take_sample_log() -> Vec<(String, f64)> {
    let mut log = SAMPLE_LOG.lock().unwrap_or_else(|e| e.into_inner());
    log.take().unwrap_or_default()
}

fn record_sample(label: &str, secs: f64) {
    let mut log = SAMPLE_LOG.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(samples) = log.as_mut() {
        samples.push((label.to_string(), secs));
    }
}

/// Pause before retrying a failed trial, so transient conditions (a
/// healing worker pool, a contended machine) get a chance to clear.
const RETRY_BACKOFF: Duration = Duration::from_millis(50);

/// Run one benchmark trial; on failure, retry once after a short
/// backoff instead of aborting the whole sweep.
///
/// A trial that fails twice returns `None` and increments the
/// process-wide failed-trial counter that `repro --json` reports as
/// `"failed_trials"`; callers render the affected cell as `failed`.
pub fn run_trial_with<F>(label: &str, mut f: F) -> Option<JoinResult>
where
    F: FnMut() -> Result<JoinResult, JoinError>,
{
    let res = match f() {
        Ok(res) => Some(res),
        Err(first) => {
            RETRIED_TRIALS.fetch_add(1, Ordering::Relaxed);
            eprintln!("warning: trial {label} failed ({first}); retrying once");
            std::thread::sleep(RETRY_BACKOFF);
            match f() {
                Ok(res) => Some(res),
                Err(second) => {
                    FAILED_TRIALS.fetch_add(1, Ordering::Relaxed);
                    match &second {
                        JoinError::MemoryBudgetExceeded { .. } => {
                            FAILED_RESOURCE_TRIALS.fetch_add(1, Ordering::Relaxed);
                        }
                        JoinError::Io { .. } => {
                            FAILED_IO_TRIALS.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    eprintln!("warning: trial {label} failed again ({second}); skipping");
                    None
                }
            }
        }
    };
    if let Some(res) = &res {
        record_sample(label, res.total_wall().as_secs_f64());
    }
    res
}

/// Trials that failed both attempts so far in this process.
pub fn failed_trials() -> u64 {
    TrialCounters::snapshot().failed
}

/// Trials whose first attempt failed so far in this process.
pub fn retried_trials() -> u64 {
    TrialCounters::snapshot().retried
}

/// Table cell for a metric of an optional (possibly failed) trial.
pub fn cell_or_failed<T>(res: &Option<T>, f: impl FnOnce(&T) -> String) -> String {
    match res {
        Some(r) => f(r),
        None => "failed".to_string(),
    }
}

/// Options shared by every experiment.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Divisor applied to the paper's tuple counts AND to the simulated
    /// machine's cache/page capacities.
    pub scale: usize,
    /// Host worker threads.
    pub threads: usize,
    /// Threads presented to the cost model (the paper's default is 32).
    pub sim_threads: usize,
    /// Emit machine-readable JSON alongside the text tables.
    pub json: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        HarnessOpts {
            scale: 128,
            threads: host.min(8),
            sim_threads: 32,
            json: false,
        }
    }
}

impl HarnessOpts {
    /// Parse `--scale N --threads N --sim-threads N --json` style flags.
    pub fn parse(args: &[String]) -> Result<(HarnessOpts, Vec<String>), String> {
        let mut opts = HarnessOpts::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = |name: &str| -> Result<usize, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<usize>()
                    .map_err(|e| format!("{name}: {e}"))
            };
            match a.as_str() {
                "--scale" => opts.scale = take("--scale")?.max(1),
                "--threads" => opts.threads = take("--threads")?.max(1),
                "--sim-threads" => opts.sim_threads = take("--sim-threads")?.max(1),
                "--json" => opts.json = true,
                other => rest.push(other.to_string()),
            }
        }
        Ok((opts, rest))
    }

    /// Convert a paper size given in million tuples to this run's tuples.
    pub fn tuples(&self, paper_millions: usize) -> usize {
        (paper_millions * 1_000_000 / self.scale).max(1024)
    }

    /// The join configuration emulating the paper's machine at this
    /// scale.
    pub fn cfg(&self) -> JoinConfig {
        let mut cfg = JoinConfig::new(self.threads);
        cfg.topology = Topology::paper_machine_scaled(self.scale);
        cfg.sim_threads = Some(self.sim_threads);
        cfg
    }

    /// Canonical placements: both input relations chunked over nodes
    /// (Section 7.1's allocation).
    pub fn placement(&self) -> Placement {
        Placement::Chunked {
            parts: self.threads.max(1),
        }
    }

    /// The study's canonical workload: dense build of `r_m` paper-million
    /// tuples, uniform FK probe of `s_m`.
    pub fn workload(&self, r_m: usize, s_m: usize, seed: u64) -> (Relation, Relation) {
        let r_n = self.tuples(r_m);
        let s_n = self.tuples(s_m);
        let r = mmjoin_datagen::gen_build_dense(r_n, seed, self.placement());
        let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, seed ^ 0xBEEF, self.placement());
        (r, s)
    }
}

/// A printable result table (one per figure panel).
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-expectation reminders).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// JSON object for `--json` output (hand-rolled; no serde offline).
    pub fn to_json(&self) -> String {
        let str_arr = |items: &[String]| {
            let cells: Vec<String> = items.iter().map(|s| json_escape(s)).collect();
            format!("[{}]", cells.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| str_arr(r)).collect();
        format!(
            "{{\"title\": {}, \"headers\": {}, \"rows\": [{}], \"notes\": {}}}",
            json_escape(&self.title),
            str_arr(&self.headers),
            rows.join(", "),
            str_arr(&self.notes)
        )
    }
}

/// JSON array over many tables (the `repro --json` payload).
pub fn tables_to_json(tables: &[Table]) -> String {
    let items: Vec<String> = tables.iter().map(Table::to_json).collect();
    format!("[{}]", items.join(",\n "))
}

/// Host CPU model, from `/proc/cpuinfo`'s first `model name` line;
/// `"unknown"` on hosts without one (non-Linux, some ARM kernels).
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Host-metadata block stamped into every machine-readable artifact
/// (`BENCH_*.json`, `repro --json`, profile metrics): the CPU model,
/// the resolved hardware-kernel mode, and whether native perf counters
/// are usable by this process. Numbers from two hosts are only
/// comparable when these match.
pub fn meta_json() -> String {
    let mode = match mmjoin_util::kernels::effective_mode() {
        mmjoin_util::kernels::KernelMode::Simd => "simd",
        mmjoin_util::kernels::KernelMode::Portable => "portable",
        mmjoin_util::kernels::KernelMode::Auto => "auto",
    };
    let topo = mmjoin_util::mem::host_topology();
    format!(
        "{{\"cpu_model\": {}, \"kernel_mode\": \"{}\", \"perf_counters\": {}, \
         \"alloc_policy\": {}, \"numa_nodes\": {}, \"thp_enabled\": {}, \
         \"free_hugepages_2m\": {}}}",
        json_escape(&cpu_model()),
        mode,
        mmjoin_util::perf::available(),
        json_escape(&mmjoin_util::mem::policy_name()),
        topo.nodes,
        topo.thp_enabled,
        topo.free_hugepages_2m
    )
}

/// Quote and escape `s` as a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format seconds as milliseconds with 2 decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Format a throughput in Mtuples/s.
pub fn mtps(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let args: Vec<String> = ["fig1", "--scale", "64", "--json", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, rest) = HarnessOpts::parse(&args).unwrap();
        assert_eq!(opts.scale, 64);
        assert_eq!(opts.threads, 2);
        assert!(opts.json);
        assert_eq!(rest, vec!["fig1".to_string()]);
    }

    #[test]
    fn parse_rejects_bad_value() {
        let args: Vec<String> = ["--scale", "abc"].iter().map(|s| s.to_string()).collect();
        assert!(HarnessOpts::parse(&args).is_err());
    }

    #[test]
    fn tuples_scaling() {
        let o = HarnessOpts {
            scale: 128,
            ..Default::default()
        };
        assert_eq!(o.tuples(128), 1_000_000);
        assert_eq!(o.tuples(1280), 10_000_000);
        assert_eq!(o.tuples(0), 1024, "floor applies");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["algo", "x"]);
        t.row(vec!["NOP".into(), "1".into()]);
        t.row(vec!["CPRL".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("CPRL"));
    }

    #[test]
    fn meta_json_shape() {
        let m = meta_json();
        assert!(m.contains("\"cpu_model\": \""));
        assert!(m.contains("\"kernel_mode\": \""));
        assert!(m.contains("\"perf_counters\": true") || m.contains("\"perf_counters\": false"));
        assert!(m.contains("\"alloc_policy\": \""));
        assert!(m.contains("\"numa_nodes\": "));
        assert!(m.contains("\"thp_enabled\": "));
        assert!(!cpu_model().is_empty());
        assert_eq!(m.matches('{').count(), m.matches('}').count());
    }

    #[test]
    fn trial_counters_snapshot_delta() {
        // The globals are process-wide and other tests may race on them;
        // assert on deltas relative to our own snapshots only, and only
        // with failures we inject ourselves (failures are monotonic).
        let before = TrialCounters::snapshot();
        let res = run_trial_with("snapshot-test", || {
            Err::<JoinResult, _>(JoinError::InvalidConfig {
                field: "threads",
                value: 0,
                reason: "must be >= 1",
            })
        });
        assert!(res.is_none());
        let d = before.delta();
        assert!(d.retried >= 1, "our failed trial retried once: {d:?}");
        assert!(d.failed >= 1, "our failed trial failed twice: {d:?}");
        // A fresh snapshot taken now sees none of the history.
        let after = TrialCounters::snapshot();
        let d2 = after.delta();
        assert_eq!(d2, TrialCounters::default());
    }

    #[test]
    fn trial_failures_classified_by_cause() {
        let before = TrialCounters::snapshot();
        run_trial_with("oom-test", || {
            Err::<JoinResult, _>(JoinError::MemoryBudgetExceeded {
                phase: "partition",
                requested: 100,
                limit: 50,
                available: 10,
            })
        });
        run_trial_with("io-test", || {
            Err::<JoinResult, _>(JoinError::Io {
                phase: "spill",
                source: "disk full".to_string(),
            })
        });
        let d = before.delta();
        assert!(d.failed >= 2, "{d:?}");
        assert!(d.failed_resource >= 1, "{d:?}");
        assert!(d.failed_io >= 1, "{d:?}");
    }

    #[test]
    fn sample_log_records_successful_trials() {
        enable_sample_log();
        let res = run_trial_with("sample-log-test", || {
            let mut r = JoinResult::new(mmjoin_core::Algorithm::Nop);
            r.matches = 1;
            Ok(r)
        });
        assert!(res.is_some());
        let samples = take_sample_log();
        assert!(
            samples.iter().any(|(l, _)| l == "sample-log-test"),
            "{samples:?}"
        );
        // Disabled again after take: nothing accumulates.
        run_trial_with("sample-log-test-2", || {
            Ok(JoinResult::new(mmjoin_core::Algorithm::Nop))
        });
        assert!(take_sample_log().is_empty());
    }

    #[test]
    fn workload_shapes() {
        let o = HarnessOpts {
            scale: 1000,
            ..Default::default()
        };
        let (r, s) = o.workload(128, 1280, 1);
        assert_eq!(r.len(), 128_000);
        assert_eq!(s.len(), 1_280_000);
    }
}
