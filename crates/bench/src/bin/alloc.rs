//! Allocation-policy A/B harness: the portable aligned heap vs the
//! mmap-backed arenas (`mmjoin_util::mem`) on a partition-heavy
//! end-to-end PRO cell, plus an arena-pool reuse proof.
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin alloc            # full
//! cargo run -p mmjoin-bench --release --bin alloc -- --quick # CI smoke
//! cargo run -p mmjoin-bench --release --bin alloc -- --quick --check
//! ```
//!
//! For each policy the host can express (portable always; thp/mapped
//! always — they degrade silently; hugetlb and interleave/bind only
//! when `/sys` says the host has the backing), the harness runs PRO
//! with per-worker PMU profiling and reports median wall time, total
//! dTLB misses (null where perf counters are unavailable, e.g. under
//! `MMJOIN_PERF=off`), and the arena counters — how many blocks were
//! actually mapped and whether any fallback rung was taken.
//!
//! The reuse proof runs two back-to-back joins under the first mapped
//! policy from a cleared pool: the second run must serve arenas from
//! the pool (pool-hit counter) and fault in fewer fresh pages
//! (`/proc/self/stat` minor-fault delta).
//!
//! Emits `BENCH_alloc.json` (override with `--out PATH`). With
//! `--check`, exits non-zero if any policy's checksum diverges from the
//! portable run or if the reuse proof fails — the CI gate; dTLB/time
//! deltas are reported, not gated, because CI hosts rarely have
//! hugepages or multiple nodes. With `--ledger PATH`, appends the raw
//! repeat vectors to the run ledger (policy spelled into the cell key).

use std::time::Instant;

use mmjoin_bench::harness::HarnessOpts;
use mmjoin_bench::ledger::{self, SampleSet};
use mmjoin_core::{Algorithm, Join, ProfileConfig};
use mmjoin_util::mem::{self, AllocPolicy};

struct PolicyRun {
    name: String,
    /// Raw repeat wall times, in run order (the ledger stores these).
    secs: Vec<f64>,
    /// Total dTLB misses over all phases of the last repeat (`None`
    /// when the host exposes no counters to this process).
    dtlb_misses: Option<u64>,
    /// Arena counter deltas over the timed repeats. The warm-up run
    /// maps the arenas, so the repeats are mostly pool hits.
    mapped_blocks: u64,
    mapped_bytes: u64,
    pool_hits: u64,
    degraded_page: u64,
    degraded_numa: u64,
    heap_fallback: u64,
    checksum: u64,
    matches: u64,
}

impl PolicyRun {
    fn median_s(&self) -> f64 {
        mmjoin_util::stats::median(&self.secs)
    }
}

/// The policies worth running on this host: portable and THP always
/// (THP degrades silently where disabled), hugetlb only with reserved
/// 2 MiB pages, interleave only with > 1 node and working NUMA
/// syscalls.
fn candidate_policies() -> Vec<AllocPolicy> {
    let topo = mem::host_topology();
    let mut v = vec![AllocPolicy::Portable, AllocPolicy::THP];
    if topo.free_hugepages_2m > 0 {
        v.push(AllocPolicy::parse("hugetlb").unwrap());
    }
    if topo.nodes > 1 && mem::numa_available() {
        v.push(AllocPolicy::parse("thp+interleave").unwrap());
    }
    v
}

/// Time `reps` PRO runs under `policy` (after one warm-up), recording
/// dTLB misses from the per-worker PMU spans of the last repeat.
fn bench_policy(
    policy: AllocPolicy,
    opts: &HarnessOpts,
    r: &mmjoin_util::Relation,
    s: &mmjoin_util::Relation,
    reps: usize,
) -> PolicyRun {
    // Per-policy pool classes never alias, but a cleared pool makes the
    // mapped_blocks count below mean "blocks this policy mapped".
    mem::pool_clear();
    let run = || {
        Join::new(Algorithm::Pro)
            .with_threads(opts.threads)
            .with_simulate(false)
            .with_alloc_policy(policy)
            .with_profile(ProfileConfig::on())
            .run(r, s)
            .expect("join failed")
    };
    let warm = run();
    let before = mem::stats();
    let mut secs = Vec::with_capacity(reps);
    let mut last = warm;
    for _ in 0..reps {
        let start = Instant::now();
        last = run();
        secs.push(start.elapsed().as_secs_f64());
    }
    let delta = mem::stats().delta(&before);
    PolicyRun {
        name: policy.name(),
        secs,
        dtlb_misses: last.counter_totals().dtlb_misses,
        mapped_blocks: delta.mapped_blocks,
        mapped_bytes: delta.mapped_bytes,
        pool_hits: delta.pool_hits,
        degraded_page: delta.degraded_page,
        degraded_numa: delta.degraded_numa,
        heap_fallback: delta.heap_fallback,
        checksum: last.checksum,
        matches: last.matches,
    }
}

struct ReuseProof {
    policy: String,
    /// Minor page faults of the first (cold-pool) and second runs
    /// (`None` where `/proc/self/stat` is unreadable).
    faults_cold: Option<u64>,
    faults_warm: Option<u64>,
    /// Pool hits and bytes served during the second run.
    pool_hits: u64,
    pool_hit_bytes: u64,
}

impl ReuseProof {
    /// The pool did its job: the warm run was served from the pool and
    /// (where the host exposes fault counts) faulted in fewer fresh
    /// pages than the cold one.
    fn ok(&self) -> bool {
        let fewer_faults = match (self.faults_cold, self.faults_warm) {
            (Some(cold), Some(warm)) => warm < cold,
            _ => true,
        };
        self.pool_hits > 0 && fewer_faults
    }
}

/// Two back-to-back joins under `policy` from a cleared pool; the
/// second must reuse the first's arenas instead of faulting fresh ones.
fn reuse_proof(
    policy: AllocPolicy,
    opts: &HarnessOpts,
    r: &mmjoin_util::Relation,
    s: &mmjoin_util::Relation,
) -> ReuseProof {
    mem::pool_clear();
    let run = || {
        Join::new(Algorithm::Pro)
            .with_threads(opts.threads)
            .with_simulate(false)
            .with_alloc_policy(policy)
            .run(r, s)
            .expect("join failed")
    };
    let f0 = mem::minor_faults();
    run();
    let f1 = mem::minor_faults();
    let before = mem::stats();
    run();
    let f2 = mem::minor_faults();
    let delta = mem::stats().delta(&before);
    let sub = |a: Option<u64>, b: Option<u64>| Some(a?.saturating_sub(b?));
    ReuseProof {
        policy: policy.name(),
        faults_cold: sub(f1, f0),
        faults_warm: sub(f2, f1),
        pool_hits: delta.pool_hits,
        pool_hit_bytes: delta.pool_hit_bytes,
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut quick = false;
    let mut check = false;
    let mut out_path = "BENCH_alloc.json".to_string();
    let mut ledger_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--ledger" => match it.next() {
                Some(p) => ledger_path = Some(p.clone()),
                None => {
                    eprintln!("error: --ledger needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let counters_before = mmjoin_bench::harness::TrialCounters::snapshot();

    // A partition-heavy cell: PRO's out-of-place radix pass writes the
    // whole input twice, which is where TLB pressure and page placement
    // bite. Quick mode keeps the arenas above the 64 KiB mmap threshold
    // but finishes in seconds.
    let ((r_m, s_m), reps) = if quick { ((2, 8), 3) } else { ((16, 64), 5) };
    let (r, s) = opts.workload(r_m, s_m, 77);

    let topo = mem::host_topology();
    eprintln!(
        "alloc A/B: quick={quick} threads={} nodes={} thp={} hugepages_2m={}",
        opts.threads, topo.nodes, topo.thp_enabled, topo.free_hugepages_2m
    );

    let policies = candidate_policies();
    let runs: Vec<PolicyRun> = policies
        .iter()
        .map(|&p| bench_policy(p, &opts, &r, &s, reps))
        .collect();
    // Reuse proof under the first mapped policy (THP — always present).
    let proof = reuse_proof(AllocPolicy::THP, &opts, &r, &s);

    println!(
        "{:<16} {:>10} {:>12} {:>8} {:>10} {:>8} {:>6}",
        "policy", "e2e_ms", "dtlb_miss", "mapped", "MiB", "pool", "degr"
    );
    let base = runs[0].median_s();
    for pr in &runs {
        println!(
            "{:<16} {:>10.2} {:>12} {:>8} {:>10.1} {:>8} {:>6}",
            pr.name,
            pr.median_s() * 1e3,
            opt_u64(pr.dtlb_misses),
            pr.mapped_blocks,
            pr.mapped_bytes as f64 / (1024.0 * 1024.0),
            pr.pool_hits,
            pr.degraded_page + pr.degraded_numa + pr.heap_fallback
        );
    }
    println!(
        "pool reuse [{}]: cold {} minor faults, warm {} ({} pool hits, {:.1} MiB): {}",
        proof.policy,
        opt_u64(proof.faults_cold),
        opt_u64(proof.faults_warm),
        proof.pool_hits,
        proof.pool_hit_bytes as f64 / (1024.0 * 1024.0),
        if proof.ok() { "ok" } else { "FAILED" }
    );

    let checksums_ok = runs.iter().all(|pr| {
        let ok = pr.checksum == runs[0].checksum && pr.matches == runs[0].matches;
        if !ok {
            eprintln!(
                "checksum mismatch under {}: {:#018x} vs portable {:#018x}",
                pr.name, pr.checksum, runs[0].checksum
            );
        }
        ok
    });

    let cells: Vec<String> = runs
        .iter()
        .map(|pr| {
            format!(
                "    {{\"policy\": \"{}\", \"e2e_ms\": {:.3}, \"speedup\": {:.4}, \
                 \"dtlb_misses\": {}, \"mapped_blocks\": {}, \"mapped_bytes\": {}, \
                 \"pool_hits\": {}, \
                 \"degraded_page\": {}, \"degraded_numa\": {}, \"heap_fallback\": {}}}",
                pr.name,
                pr.median_s() * 1e3,
                base / pr.median_s().max(1e-12),
                opt_u64(pr.dtlb_misses),
                pr.mapped_blocks,
                pr.mapped_bytes,
                pr.pool_hits,
                pr.degraded_page,
                pr.degraded_numa,
                pr.heap_fallback
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"quick\": {quick},\n  \"threads\": {},\n  \
         \"checksums_ok\": {checksums_ok},\n  \"policies\": [\n{}\n  ],\n  \
         \"pool_reuse\": {{\"policy\": \"{}\", \"faults_cold\": {}, \"faults_warm\": {}, \
         \"pool_hits\": {}, \"pool_hit_bytes\": {}, \"ok\": {}}}\n}}\n",
        mmjoin_bench::harness::meta_json(),
        opts.threads,
        cells.join(",\n"),
        proof.policy,
        opt_u64(proof.faults_cold),
        opt_u64(proof.faults_warm),
        proof.pool_hits,
        proof.pool_hit_bytes,
        proof.ok()
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out_path}");

    if let Some(path) = &ledger_path {
        let workload = if quick { "quick" } else { "full" };
        // The policy goes into the cell key: samples from different
        // allocation policies must never be pooled by the sentinel.
        let samples: Vec<SampleSet> = runs
            .iter()
            .map(|pr| SampleSet {
                algorithm: format!("e2e_PRO[{}]", pr.name),
                workload: workload.to_string(),
                kernel_mode: ledger::kernel_mode_name(),
                secs: pr.secs.clone(),
            })
            .collect();
        let mut entry = ledger::Entry::stamped("alloc", opts.threads, samples);
        let delta = counters_before.delta();
        entry.retried_trials = delta.retried;
        entry.failed_trials = delta.failed;
        entry.failed_resource_trials = delta.failed_resource;
        entry.failed_io_trials = delta.failed_io;
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => {
                eprintln!("error: cannot append to ledger {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if check {
        // Gate on invariants every host can uphold: identical answers
        // under every policy, and real pool reuse on back-to-back runs.
        // Time/dTLB deltas are informational — CI boxes rarely reserve
        // hugepages or expose multiple NUMA nodes.
        if !checksums_ok {
            std::process::exit(1);
        }
        if !proof.ok() {
            eprintln!(
                "FAIL: no arena-pool reuse (cold {} faults, warm {}, {} pool hits)",
                opt_u64(proof.faults_cold),
                opt_u64(proof.faults_warm),
                proof.pool_hits
            );
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}
