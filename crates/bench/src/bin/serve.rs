//! Closed-loop load generator for the `mmjoin-serve` join service
//! (ISSUE 9 / DESIGN.md §15): hundreds of concurrent connections,
//! Zipfian relation popularity, latency tails and throughput into the
//! ledger as `serve_*` cells.
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin serve            # full
//! cargo run -p mmjoin-bench --release --bin serve -- --quick # CI smoke
//! cargo run -p mmjoin-bench --release --bin serve -- --quick --check
//! ```
//!
//! Spawns the server in-process on an ephemeral port (point it at an
//! external one with `--addr HOST:PORT`), loads a catalog of relation
//! pairs, then drives closed-loop client threads that pick pairs with
//! Zipfian popularity. One tenant is deliberately starved so the
//! degrade-to-spill path runs under fire. Every response is checked
//! against a direct `Join` execution of the same datagen workload —
//! the service must be a transparent wrapper around the embedded API.
//!
//! Emits `BENCH_serve.json` (override with `--out PATH`). With
//! `--ledger PATH`, appends per-round sample vectors: `serve_p50` /
//! `serve_p99` / `serve_p999` (per-request latency percentiles, seconds),
//! and `serve_spr` (fleet-wide seconds per request — inverse throughput,
//! so lower is better like every other cell). Cold/hot single-stream
//! cache latencies land in the JSON and the within-run gate only.
//! With `--check`, exits non-zero unless every checksum matched, the
//! fleet stayed panic- and error-free, the warmed cache measurably beat
//! the cold path, the starved tenant degraded, and no spill files were
//! orphaned — the CI `serve-smoke` gate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use mmjoin_bench::harness::HarnessOpts;
use mmjoin_bench::ledger::{self, SampleSet};
use mmjoin_core::{Algorithm, Join};
use mmjoin_serve::{Client, ServeConfig, Server};
use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::stats;
use mmjoin_util::Placement;

/// One catalog relation pair and its independently computed truth.
struct Pair {
    build: String,
    probe: String,
    build_rows: usize,
    probe_rows: usize,
    seed: u64,
    expected_matches: u64,
    expected_checksum: u64,
}

struct RoundStats {
    requests: u64,
    secs: f64,
    p50: f64,
    p99: f64,
    p999: f64,
}

#[derive(Default)]
struct FleetCounters {
    transport_errors: AtomicU64,
    checksum_mismatches: AtomicU64,
    join_errors: AtomicU64,
    degraded: AtomicU64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut quick = false;
    let mut check = false;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut ledger_path: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut clients_override: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => die("--out needs a value"),
            },
            "--ledger" => match it.next() {
                Some(p) => ledger_path = Some(p.clone()),
                None => die("--ledger needs a value"),
            },
            "--addr" => match it.next() {
                Some(p) => addr = Some(p.clone()),
                None => die("--addr needs a value"),
            },
            "--clients" => match it.next() {
                Some(p) => clients_override = p.parse().ok(),
                None => die("--clients needs a value"),
            },
            other => die(&format!("unknown flag {other}")),
        }
    }

    // Fleet shape: the acceptance bar is ≥256 concurrent connections
    // even in the CI quick mode.
    let clients = clients_override.unwrap_or(if quick { 256 } else { 384 });
    let tenants = 8usize;
    let (rounds, round_secs) = if quick { (3, 1.5) } else { (5, 4.0) };
    let n_pairs = 6usize;
    let base_rows = if quick { 16_384 } else { 65_536 };

    // Spill runs from degraded joins land here; the gate requires the
    // directory to be empty again after shutdown (no orphaned runs).
    let spill_dir =
        std::env::temp_dir().join(format!("mmjoin-serve-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");

    // In-process server unless pointed at an external one. Tenant t0 is
    // starved to a 2 MiB carve: its larger joins must degrade to SHHJ.
    let (server, target_addr) = match &addr {
        Some(a) => (None, a.clone()),
        None => {
            let mut cfg = ServeConfig::default()
                .with_runners(opts.threads)
                .with_join_threads(2)
                .with_queue_depth(clients)
                .with_spill_dir(&spill_dir)
                .with_tenant_budget("t0", 2 << 20);
            for t in 1..tenants {
                cfg = cfg.with_tenant_budget(format!("t{t}"), 512 << 20);
            }
            let server = Server::spawn(cfg).expect("spawn server");
            let a = server.addr().to_string();
            (Some(server), a)
        }
    };
    eprintln!(
        "serve loadgen: quick={quick} clients={clients} tenants={tenants} rounds={rounds}x{round_secs}s target={target_addr}"
    );

    // ----- Catalog + local ground truth ------------------------------
    let placement = Placement::Chunked { parts: 2 };
    let mut admin = Client::connect(&target_addr).expect("admin connect");
    admin.set_timeout(Some(Duration::from_secs(300))).unwrap();
    let mut pairs: Vec<Pair> = Vec::with_capacity(n_pairs);
    for i in 0..n_pairs {
        // Rank-dependent sizes: the hottest pair is also the largest,
        // so cache sharing matters where the traffic is.
        let build_rows = base_rows * (n_pairs - i) / 2;
        let probe_rows = build_rows * 4;
        let seed = 0xC0FFEE + i as u64;
        let r = mmjoin_datagen::gen_build_dense(build_rows, seed, placement);
        let s = mmjoin_datagen::gen_probe_fk(probe_rows, build_rows, seed + 1, placement);
        let truth = Join::new(Algorithm::Nop)
            .with_threads(opts.threads)
            .run(&r, &s)
            .expect("local ground truth");
        let p = Pair {
            build: format!("r{i}"),
            probe: format!("s{i}"),
            build_rows,
            probe_rows,
            seed,
            expected_matches: truth.matches,
            expected_checksum: truth.checksum,
        };
        must_ok(&admin.request(&format!(
            r#"{{"op":"load","name":"{}","rows":{},"kind":"build","seed":{}}}"#,
            p.build, p.build_rows, p.seed
        )));
        must_ok(&admin.request(&format!(
            r#"{{"op":"load","name":"{}","rows":{},"kind":"probe_fk","domain":{},"seed":{}}}"#,
            p.probe,
            p.probe_rows,
            p.build_rows,
            p.seed + 1
        )));
        pairs.push(p);
    }

    // ----- Cold vs hot single-stream latency -------------------------
    // The hottest pair, PRL (ported, so the cache path applies). Cold:
    // flush then join (miss + prepare); hot: join again (shared side).
    let reps = if quick { 5 } else { 9 };
    let mut cold_secs = Vec::with_capacity(reps);
    let mut hot_secs = Vec::with_capacity(reps);
    let hot_req = format!(
        r#"{{"op":"join","algo":"PRL","build":"{}","probe":"{}","tenant":"t1"}}"#,
        pairs[0].build, pairs[0].probe
    );
    for _ in 0..reps {
        must_ok(&admin.request(r#"{"op":"flush"}"#));
        let t = Instant::now();
        let v = admin.request(&hot_req).expect("cold join");
        cold_secs.push(t.elapsed().as_secs_f64());
        check_join(&v, &pairs[0], &FleetCounters::default());
        let t = Instant::now();
        let v = admin.request(&hot_req).expect("hot join");
        hot_secs.push(t.elapsed().as_secs_f64());
        assert_eq!(
            v.get("cached").and_then(|b| b.as_bool()),
            Some(true),
            "second identical join must hit the cache: {v:?}"
        );
        check_join(&v, &pairs[0], &FleetCounters::default());
    }

    // ----- The fleet -------------------------------------------------
    let counters = Arc::new(FleetCounters::default());
    let latencies: Arc<Vec<Mutex<Vec<f64>>>> =
        Arc::new((0..clients).map(|_| Mutex::new(Vec::new())).collect());
    let stop_round = Arc::new(AtomicBool::new(false));
    let quit = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let pairs = Arc::new(pairs);

    // Popularity: Zipf(1) over pairs — rank r drawn with weight 1/r.
    let cum: Arc<Vec<f64>> = {
        let w: Vec<f64> = (0..n_pairs).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let total: f64 = w.iter().sum();
        let mut acc = 0.0;
        Arc::new(
            w.iter()
                .map(|x| {
                    acc += x / total;
                    acc
                })
                .collect(),
        )
    };

    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let target = target_addr.clone();
        let pairs = Arc::clone(&pairs);
        let cum = Arc::clone(&cum);
        let counters = Arc::clone(&counters);
        let latencies = Arc::clone(&latencies);
        let stop_round = Arc::clone(&stop_round);
        let quit = Arc::clone(&quit);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let tenant = format!("t{}", c % 8);
            let mut rng = Xoshiro256::new(0x10AD + c as u64);
            let mut conn = connect_retry(&target);
            loop {
                barrier.wait(); // round start (or quit)
                if quit.load(Ordering::Acquire) {
                    return;
                }
                let mut local = Vec::with_capacity(1024);
                while !stop_round.load(Ordering::Acquire) {
                    let u = rng.below(1 << 24) as f64 / (1 << 24) as f64;
                    let idx = cum.iter().position(|c| u <= *c).unwrap_or(0);
                    let p = &pairs[idx];
                    let req = format!(
                        r#"{{"op":"join","algo":"PRL","build":"{}","probe":"{}","tenant":"{tenant}"}}"#,
                        p.build, p.probe
                    );
                    let t = Instant::now();
                    match conn.request(&req) {
                        Ok(v) => {
                            local.push(t.elapsed().as_secs_f64());
                            check_join(&v, p, &counters);
                        }
                        Err(_) => {
                            counters.transport_errors.fetch_add(1, Ordering::Relaxed);
                            conn = connect_retry(&target);
                        }
                    }
                }
                *latencies[c].lock().unwrap() = local;
                barrier.wait(); // round end
            }
        }));
    }

    let mut round_stats: Vec<RoundStats> = Vec::with_capacity(rounds);
    let mut pooled: Vec<f64> = Vec::new();
    for round in 0..rounds {
        stop_round.store(false, Ordering::Release);
        barrier.wait(); // release the fleet
        let t = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(round_secs));
        stop_round.store(true, Ordering::Release);
        barrier.wait(); // fleet done
        let secs = t.elapsed().as_secs_f64();
        let mut all: Vec<f64> = Vec::new();
        for m in latencies.iter() {
            all.extend(m.lock().unwrap().iter().copied());
        }
        pooled.extend_from_slice(&all);
        // One sort for all three points, not one per percentile.
        let ps = stats::percentiles(&all, &[0.50, 0.99, 0.999]);
        let rs = RoundStats {
            requests: all.len() as u64,
            secs,
            p50: ps[0],
            p99: ps[1],
            p999: ps[2],
        };
        eprintln!(
            "round {round}: {} reqs in {:.2}s  ({:.0} rps)  p50={:.2}ms p99={:.2}ms p999={:.2}ms",
            rs.requests,
            rs.secs,
            rs.requests as f64 / rs.secs,
            rs.p50 * 1e3,
            rs.p99 * 1e3,
            rs.p999 * 1e3
        );
        round_stats.push(rs);
    }
    quit.store(true, Ordering::Release);
    barrier.wait(); // release the fleet into the quit check
    for h in handles {
        let _ = h.join();
    }

    // ----- Final server-side stats, shutdown, spill-dir audit --------
    let stat = admin.request(r#"{"op":"stat"}"#).expect("final stat");
    let stat_body = stat.get("stat").expect("stat body");
    let server_degraded = stat_body
        .get("joins")
        .and_then(|j| j.get("degraded"))
        .and_then(|n| n.as_num())
        .unwrap_or(0.0) as u64;
    let cache_hits = stat_body
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(|n| n.as_num())
        .unwrap_or(0.0) as u64;
    // Server-side telemetry view of the same run (streaming histograms).
    let tel_overall = stat_body.get("telemetry").and_then(|t| t.get("overall"));
    let tel_count = tel_overall
        .and_then(|o| o.get("count"))
        .and_then(|n| n.as_num())
        .unwrap_or(-1.0) as i64;
    let tel_p99_ms = tel_overall
        .and_then(|o| o.get("p99_ms"))
        .and_then(|n| n.as_num())
        .unwrap_or(-1.0);
    drop(admin);
    if let Some(server) = server {
        server.shutdown();
    }
    let orphaned_spills = std::fs::read_dir(&spill_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&spill_dir);

    let total_requests: u64 = round_stats.iter().map(|r| r.requests).sum();
    let cold_med = stats::median(&cold_secs);
    let hot_med = stats::median(&hot_secs);
    eprintln!(
        "cold={:.2}ms hot={:.2}ms  degraded={server_degraded} cache_hits={cache_hits} \
         transport_errors={} checksum_mismatches={} orphaned_spills={orphaned_spills}",
        cold_med * 1e3,
        hot_med * 1e3,
        counters.transport_errors.load(Ordering::Relaxed),
        counters.checksum_mismatches.load(Ordering::Relaxed),
    );

    // ----- BENCH_serve.json ------------------------------------------
    let rounds_json: Vec<String> = round_stats
        .iter()
        .enumerate()
        .map(|(i, r)| {
            format!(
                "    {{\"round\": {i}, \"requests\": {}, \"secs\": {:.3}, \"rps\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}}}",
                r.requests,
                r.secs,
                r.requests as f64 / r.secs,
                r.p50 * 1e3,
                r.p99 * 1e3,
                r.p999 * 1e3
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"quick\": {quick},\n  \"clients\": {clients},\n  \
         \"tenants\": {tenants},\n  \"total_requests\": {total_requests},\n  \
         \"cold_ms\": {:.3},\n  \"hot_ms\": {:.3},\n  \"degraded\": {server_degraded},\n  \
         \"cache_hits\": {cache_hits},\n  \"transport_errors\": {},\n  \
         \"checksum_mismatches\": {},\n  \"join_errors\": {},\n  \
         \"orphaned_spills\": {orphaned_spills},\n  \"rounds\": [\n{}\n  ]\n}}\n",
        mmjoin_bench::harness::meta_json(),
        cold_med * 1e3,
        hot_med * 1e3,
        counters.transport_errors.load(Ordering::Relaxed),
        counters.checksum_mismatches.load(Ordering::Relaxed),
        counters.join_errors.load(Ordering::Relaxed),
        rounds_json.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        die(&format!("cannot write {out_path}: {e}"));
    }
    eprintln!("wrote {out_path}");

    // ----- Ledger cells ----------------------------------------------
    if let Some(path) = &ledger_path {
        let workload = if quick { "quick" } else { "full" };
        let cell = |name: &str, secs: Vec<f64>| SampleSet {
            algorithm: name.to_string(),
            workload: workload.to_string(),
            kernel_mode: "auto".to_string(),
            secs,
        };
        let samples = vec![
            cell("serve_p50", round_stats.iter().map(|r| r.p50).collect()),
            cell("serve_p99", round_stats.iter().map(|r| r.p99).collect()),
            cell("serve_p999", round_stats.iter().map(|r| r.p999).collect()),
            // Inverse throughput (seconds per request, fleet-wide) so
            // "higher is worse" holds for every serve_* cell.
            cell(
                "serve_spr",
                round_stats
                    .iter()
                    .map(|r| r.secs / (r.requests.max(1) as f64))
                    .collect(),
            ),
            // cold/hot single-stream latencies stay out of the ledger:
            // millisecond-scale and host-jitter-bound, they'd trip the
            // sentinel across runs. The hot<cold gate below compares
            // them within one run, where the jitter cancels.
        ];
        let entry = ledger::Entry::stamped("serve", opts.threads, samples);
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => die(&format!("cannot append to ledger {path}: {e}")),
        }
    }

    // ----- The gate --------------------------------------------------
    if check {
        let mut fail = false;
        let mut gate = |cond: bool, msg: &str| {
            if !cond {
                eprintln!("FAIL: {msg}");
                fail = true;
            }
        };
        gate(
            counters.checksum_mismatches.load(Ordering::Relaxed) == 0,
            "server results diverged from direct Join execution",
        );
        gate(
            counters.join_errors.load(Ordering::Relaxed) == 0,
            "joins errored under load (admission must degrade, not fail)",
        );
        gate(
            counters.transport_errors.load(Ordering::Relaxed) == 0,
            "connections died under load",
        );
        gate(total_requests > 0, "the fleet completed no requests");
        gate(
            clients >= 256,
            "acceptance requires at least 256 concurrent clients",
        );
        gate(
            hot_med < cold_med,
            &format!(
                "warmed cache ({:.2}ms) must beat the cold path ({:.2}ms)",
                hot_med * 1e3,
                cold_med * 1e3
            ),
        );
        gate(cache_hits > 0, "the build-side cache was never hit");
        gate(
            addr.is_some() || server_degraded > 0,
            "the starved tenant never degraded to SHHJ",
        );
        gate(orphaned_spills == 0, "spill files were orphaned");
        // Telemetry self-consistency (in-process server only: an
        // external one may carry joins from before this run). The
        // streaming-histogram count must reconcile exactly with joins
        // sent — fleet requests plus the admin's cold/hot probes — and
        // the telemetry p99 must agree with the bench's own
        // client-side p99 up to histogram resolution + queue/transport
        // skew (generous: half the value plus 10ms).
        if addr.is_none() {
            let joins_sent = total_requests as i64 + 2 * reps as i64;
            gate(
                tel_count == joins_sent,
                &format!("telemetry join count {tel_count} != joins sent {joins_sent}"),
            );
            let bench_p99_ms = stats::percentiles(&pooled, &[0.99])[0] * 1e3;
            gate(
                tel_p99_ms >= 0.0 && (tel_p99_ms - bench_p99_ms).abs() <= 0.5 * bench_p99_ms + 10.0,
                &format!("telemetry p99 {tel_p99_ms:.2}ms far from bench p99 {bench_p99_ms:.2}ms"),
            );
        }
        if fail {
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn must_ok(v: &std::io::Result<mmjoin_util::jsonv::Value>) {
    match v {
        Ok(v) if v.get("ok").and_then(|b| b.as_bool()) == Some(true) => {}
        other => panic!("request failed: {other:?}"),
    }
}

fn connect_retry(addr: &str) -> Client {
    for _ in 0..50 {
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.set_timeout(Some(Duration::from_secs(300)));
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("cannot connect to {addr}");
}

/// Verify one join response against the locally computed ground truth.
fn check_join(v: &mmjoin_util::jsonv::Value, p: &Pair, counters: &FleetCounters) {
    if v.get("ok").and_then(|b| b.as_bool()) != Some(true) {
        counters.join_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if v.get("degraded").and_then(|b| b.as_bool()) == Some(true) {
        counters.degraded.fetch_add(1, Ordering::Relaxed);
    }
    let matches = v.get("matches").and_then(|m| m.as_num()).unwrap_or(-1.0) as u64;
    let checksum = v
        .get("checksum")
        .and_then(|c| c.as_str())
        .and_then(|s| u64::from_str_radix(s, 16).ok());
    if matches != p.expected_matches || checksum != Some(p.expected_checksum) {
        counters.checksum_mismatches.fetch_add(1, Ordering::Relaxed);
    }
}
