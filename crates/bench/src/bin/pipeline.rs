//! Fused-pipeline perf harness: the composable operator pipeline
//! (DESIGN.md §12) against the materialized two-step baseline on a
//! two-join chain, per ported driver.
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin pipeline            # full
//! cargo run -p mmjoin-bench --release --bin pipeline -- --quick # CI smoke
//! cargo run -p mmjoin-bench --release --bin pipeline -- --quick --check
//! ```
//!
//! Emits `BENCH_pipeline.json` (override with `--out PATH`). With
//! `--check`, exits non-zero if any driver's fused checksum diverges
//! from the two-step baseline or reports zero bytes avoided — the CI
//! correctness gate. With `--ledger PATH`, appends a provenance-stamped
//! entry holding the raw repeat vectors (`fused_NOP` / `twostep_NOP`
//! cells), so `sentinel` can compare this run against history and
//! confirm fused-vs-materialized regressions statistically.

use mmjoin_bench::experiments::pipeline::{chain_workload, run_chain, ChainRun};
use mmjoin_bench::harness::HarnessOpts;
use mmjoin_bench::ledger::{self, SampleSet};
use mmjoin_core::pipeline::PORTED;
use mmjoin_core::Algorithm;

struct DriverRuns {
    alg: Algorithm,
    /// Raw repeat wall times, in run order (the ledger stores these).
    fused: Vec<f64>,
    two_step: Vec<f64>,
    bytes_avoided: u64,
    intermediate_matches: u64,
    checksum_ok: bool,
}

impl DriverRuns {
    fn fused_s(&self) -> f64 {
        mmjoin_util::stats::median(&self.fused)
    }

    fn two_step_s(&self) -> f64 {
        mmjoin_util::stats::median(&self.two_step)
    }

    /// Two-step time over fused time: > 1 means fusion wins.
    fn speedup(&self) -> f64 {
        self.two_step_s() / self.fused_s().max(1e-12)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut quick = false;
    let mut check = false;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut ledger_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--ledger" => match it.next() {
                Some(p) => ledger_path = Some(p.clone()),
                None => {
                    eprintln!("error: --ledger needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let counters_before = mmjoin_bench::harness::TrialCounters::snapshot();

    // Paper-million chain sizes, shrunk by --scale. Quick mode keeps
    // three repeats so the sentinel still sees a distribution.
    let ((r1_m, r2_m, s_m), reps) = if quick {
        ((2, 1, 8), 3)
    } else {
        ((16, 4, 64), 5)
    };
    eprintln!(
        "pipeline fused vs two-step: quick={quick} threads={}",
        opts.threads
    );
    let (r1, r2, s) = chain_workload(&opts, r1_m, r2_m, s_m, 0xF1B);

    let mut results: Vec<DriverRuns> = Vec::new();
    for alg in PORTED {
        // Warm-up run outside the timed samples (pool spin-up, faults).
        let warm = run_chain(alg, &r1, &r2, &s, opts.threads);
        let mut runs = DriverRuns {
            alg,
            fused: Vec::with_capacity(reps),
            two_step: Vec::with_capacity(reps),
            bytes_avoided: warm.bytes_avoided,
            intermediate_matches: warm.intermediate_matches,
            checksum_ok: warm.checksum_ok,
        };
        for _ in 0..reps {
            let t: ChainRun = run_chain(alg, &r1, &r2, &s, opts.threads);
            runs.fused.push(t.fused_secs);
            runs.two_step.push(t.two_step_secs);
            runs.checksum_ok &= t.checksum_ok;
        }
        results.push(runs);
    }

    println!(
        "{:<8} {:>10} {:>12} {:>9} {:>14} {:>13} {:>9}",
        "driver", "fused_ms", "twostep_ms", "speedup", "interm_tuples", "bytes_avoided", "checksum"
    );
    for r in &results {
        println!(
            "{:<8} {:>10.2} {:>12.2} {:>8.2}x {:>14} {:>13} {:>9}",
            r.alg.name(),
            r.fused_s() * 1e3,
            r.two_step_s() * 1e3,
            r.speedup(),
            r.intermediate_matches,
            r.bytes_avoided,
            if r.checksum_ok { "ok" } else { "FAILED" }
        );
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"driver\": \"{}\", \"fused_ms\": {:.3}, \"twostep_ms\": {:.3}, \"speedup\": {:.4}, \"intermediate_matches\": {}, \"bytes_avoided\": {}, \"checksum_ok\": {}}}",
                r.alg.name(),
                r.fused_s() * 1e3,
                r.two_step_s() * 1e3,
                r.speedup(),
                r.intermediate_matches,
                r.bytes_avoided,
                r.checksum_ok
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"quick\": {quick},\n  \"threads\": {},\n  \"drivers\": [\n{}\n  ]\n}}\n",
        mmjoin_bench::harness::meta_json(),
        opts.threads,
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out_path}");

    if let Some(path) = &ledger_path {
        let workload = if quick { "quick" } else { "full" };
        let samples: Vec<SampleSet> = results
            .iter()
            .flat_map(|r| {
                [
                    SampleSet {
                        algorithm: format!("fused_{}", r.alg.name()),
                        workload: workload.to_string(),
                        kernel_mode: "auto".to_string(),
                        secs: r.fused.clone(),
                    },
                    SampleSet {
                        algorithm: format!("twostep_{}", r.alg.name()),
                        workload: workload.to_string(),
                        kernel_mode: "auto".to_string(),
                        secs: r.two_step.clone(),
                    },
                ]
            })
            .collect();
        let mut entry = ledger::Entry::stamped("pipeline", opts.threads, samples);
        let delta = counters_before.delta();
        entry.retried_trials = delta.retried;
        entry.failed_trials = delta.failed;
        entry.failed_resource_trials = delta.failed_resource;
        entry.failed_io_trials = delta.failed_io;
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => {
                eprintln!("error: cannot append to ledger {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if check {
        // Gate: every driver's fused checksum must equal the two-step
        // baseline's, and every fused chain must actually have avoided
        // materializing intermediate bytes.
        let mut fail = false;
        for r in &results {
            if !r.checksum_ok {
                eprintln!(
                    "FAIL: {} fused checksum diverges from two-step",
                    r.alg.name()
                );
                fail = true;
            }
            if r.bytes_avoided == 0 {
                eprintln!("FAIL: {} avoided zero intermediate bytes", r.alg.name());
                fail = true;
            }
        }
        if fail {
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}
