//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment>... [--scale N] [--threads N] [--sim-threads N] [--json]
//!                       [--ledger PATH]
//! repro all
//! repro list
//! ```
//!
//! With `--ledger PATH`, every successful trial's wall time is recorded
//! (raw, one sample per repeat, keyed by the trial label) and the sweep
//! appends one provenance-stamped entry to the run ledger for `sentinel`
//! to compare against history (DESIGN.md §11).

use mmjoin_bench::experiments::registry;
use mmjoin_bench::harness::TrialCounters;
use mmjoin_bench::{harness, ledger, HarnessOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut ledger_path: Option<String> = None;
    let mut rest_filtered = Vec::new();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        if a == "--ledger" {
            match it.next() {
                Some(p) => ledger_path = Some(p),
                None => {
                    eprintln!("error: --ledger needs a value");
                    std::process::exit(2);
                }
            }
        } else {
            rest_filtered.push(a);
        }
    }
    let rest = rest_filtered;
    let reg = registry();

    if rest.is_empty()
        || rest
            .iter()
            .any(|a| a == "list" || a == "--help" || a == "-h")
    {
        eprintln!(
            "usage: repro <experiment>... [--scale N] [--threads N] [--sim-threads N] [--json] [--ledger PATH]"
        );
        eprintln!("experiments:");
        for (name, desc, _) in &reg {
            eprintln!("  {name:<8} {desc}");
        }
        eprintln!("  all      run everything");
        std::process::exit(if rest.is_empty() { 2 } else { 0 });
    }

    let wanted: Vec<&str> = if rest.iter().any(|a| a == "all") {
        reg.iter().map(|(n, _, _)| *n).collect()
    } else {
        rest.iter().map(String::as_str).collect()
    };

    eprintln!(
        "# mmjoin repro — scale 1/{}, {} host threads, {} simulated threads",
        opts.scale, opts.threads, opts.sim_threads
    );
    let counters_before = TrialCounters::snapshot();
    if ledger_path.is_some() {
        harness::enable_sample_log();
    }
    let mut all_tables = Vec::new();
    for name in wanted {
        let Some((_, desc, f)) = reg.iter().find(|(n, _, _)| *n == name) else {
            eprintln!("unknown experiment: {name} (try `repro list`)");
            std::process::exit(2);
        };
        eprintln!("\n=== {name}: {desc} ===");
        let start = std::time::Instant::now();
        let tables = f(&opts);
        for t in &tables {
            t.print();
        }
        eprintln!("[{name} took {:.1}s]", start.elapsed().as_secs_f64());
        all_tables.extend(tables);
    }
    let delta = counters_before.delta();
    let (retried, failed) = (delta.retried, delta.failed);
    if retried > 0 {
        eprintln!("[{retried} trial(s) retried, {failed} failed both attempts]");
    }
    if opts.json {
        println!(
            "{{\"meta\": {}, \"failed_trials\": {failed}, \"retried_trials\": {retried}, \"tables\": {}}}",
            mmjoin_bench::harness::meta_json(),
            mmjoin_bench::harness::tables_to_json(&all_tables)
        );
    }
    if let Some(path) = &ledger_path {
        let samples = ledger::sample_sets_from_log(harness::take_sample_log(), "repro");
        let mut entry = ledger::Entry::stamped("repro", opts.threads, samples);
        entry.retried_trials = retried;
        entry.failed_trials = failed;
        entry.failed_resource_trials = delta.failed_resource;
        entry.failed_io_trials = delta.failed_io;
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => {
                eprintln!("error: cannot append to ledger {path}: {e}");
                std::process::exit(2);
            }
        }
    }
}
