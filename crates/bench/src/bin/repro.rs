//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment>... [--scale N] [--threads N] [--sim-threads N] [--json]
//! repro all
//! repro list
//! ```

use mmjoin_bench::experiments::registry;
use mmjoin_bench::HarnessOpts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let reg = registry();

    if rest.is_empty()
        || rest
            .iter()
            .any(|a| a == "list" || a == "--help" || a == "-h")
    {
        eprintln!(
            "usage: repro <experiment>... [--scale N] [--threads N] [--sim-threads N] [--json]"
        );
        eprintln!("experiments:");
        for (name, desc, _) in &reg {
            eprintln!("  {name:<8} {desc}");
        }
        eprintln!("  all      run everything");
        std::process::exit(if rest.is_empty() { 2 } else { 0 });
    }

    let wanted: Vec<&str> = if rest.iter().any(|a| a == "all") {
        reg.iter().map(|(n, _, _)| *n).collect()
    } else {
        rest.iter().map(String::as_str).collect()
    };

    eprintln!(
        "# mmjoin repro — scale 1/{}, {} host threads, {} simulated threads",
        opts.scale, opts.threads, opts.sim_threads
    );
    let mut all_tables = Vec::new();
    for name in wanted {
        let Some((_, desc, f)) = reg.iter().find(|(n, _, _)| *n == name) else {
            eprintln!("unknown experiment: {name} (try `repro list`)");
            std::process::exit(2);
        };
        eprintln!("\n=== {name}: {desc} ===");
        let start = std::time::Instant::now();
        let tables = f(&opts);
        for t in &tables {
            t.print();
        }
        eprintln!("[{name} took {:.1}s]", start.elapsed().as_secs_f64());
        all_tables.extend(tables);
    }
    let failed = mmjoin_bench::harness::failed_trials();
    let retried = mmjoin_bench::harness::retried_trials();
    if retried > 0 {
        eprintln!("[{retried} trial(s) retried, {failed} failed both attempts]");
    }
    if opts.json {
        println!(
            "{{\"meta\": {}, \"failed_trials\": {failed}, \"retried_trials\": {retried}, \"tables\": {}}}",
            mmjoin_bench::harness::meta_json(),
            mmjoin_bench::harness::tables_to_json(&all_tables)
        );
    }
}
