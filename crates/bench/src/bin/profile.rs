//! Native observability harness: run any (default all 13) of the join
//! algorithms with per-worker span + PMU-counter profiling enabled, emit
//! a chrome://tracing trace and a flat metrics document, and cross-check
//! native LLC/dTLB miss counts against the trace-driven cache simulator
//! behind Table 4.
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin profile              # full
//! cargo run -p mmjoin-bench --release --bin profile -- --quick   # CI smoke
//! cargo run -p mmjoin-bench --release --bin profile -- --quick --check
//! cargo run -p mmjoin-bench --release --bin profile -- --algo CPRL
//! ```
//!
//! Emits `PROFILE_trace.json` (open in chrome://tracing or
//! ui.perfetto.dev) and `PROFILE_metrics.json`; override with
//! `--trace-out` / `--metrics-out`. With `--check`, re-reads both files
//! and validates them against the expected schema, exiting non-zero on
//! any violation — the CI gate for the exporter formats. The memsim
//! cross-check is report-only (ratios, no gate): on hosts without PMU
//! access (perf_event_paranoid, VMs, non-Linux) native columns read
//! `n/a` and the comparison is skipped.

use mmjoin_bench::harness::{self, HarnessOpts, Table};
use mmjoin_bench::jsonv::{self, Value};
use mmjoin_bench::ledger;
use mmjoin_core::instrumented::{instrument, PageConfig};
use mmjoin_core::{observe, Algorithm, Join, JoinResult, ProfileConfig};
use mmjoin_util::perf;

fn usage() -> ! {
    eprintln!(
        "usage: profile [--quick] [--check] [--algo NAME] [--no-memsim]\n\
         \x20              [--trace-out PATH] [--metrics-out PATH] [--ledger PATH]\n\
         \x20              [--scale N] [--threads N] [--sim-threads N]"
    );
    std::process::exit(2);
}

struct Opts {
    quick: bool,
    check: bool,
    memsim: bool,
    algorithms: Vec<Algorithm>,
    trace_out: String,
    metrics_out: String,
    ledger: Option<String>,
    harness: HarnessOpts,
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (hopts, rest) = HarnessOpts::parse(&argv).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage();
    });
    let mut opts = Opts {
        quick: false,
        check: false,
        memsim: true,
        algorithms: Algorithm::ALL.to_vec(),
        trace_out: "PROFILE_trace.json".to_string(),
        metrics_out: "PROFILE_metrics.json".to_string(),
        ledger: None,
        harness: hopts,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--check" => opts.check = true,
            "--no-memsim" => opts.memsim = false,
            "--algo" => {
                let name = it.next().unwrap_or_else(|| {
                    eprintln!("--algo needs a value");
                    usage();
                });
                let alg = Algorithm::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown algorithm {name:?}");
                    usage();
                });
                opts.algorithms = vec![alg];
            }
            "--trace-out" => {
                opts.trace_out = it.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a value");
                    usage();
                })
            }
            "--metrics-out" => {
                opts.metrics_out = it.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a value");
                    usage();
                })
            }
            "--ledger" => {
                opts.ledger = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--ledger needs a value");
                    usage();
                }))
            }
            other => {
                eprintln!("unknown option {other:?}");
                usage();
            }
        }
    }
    opts
}

fn fmt_opt(v: Option<u64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "n/a".to_string(),
    }
}

fn ratio(native: Option<u64>, sim: u64) -> String {
    match native {
        Some(n) if sim > 0 => format!("{:.2}", n as f64 / sim as f64),
        _ => "n/a".to_string(),
    }
}

/// Schema check for one emitted artifact; returns every violation found.
fn validate_trace(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    let Some(events) = v.as_arr() else {
        return vec!["trace: top level is not an array".to_string()];
    };
    if events.is_empty() {
        errs.push("trace: no events".to_string());
    }
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("trace event {i}");
        if e.get("name").and_then(Value::as_str).is_none() {
            errs.push(format!("{ctx}: missing string \"name\""));
        }
        let ph = e.get("ph").and_then(Value::as_str);
        if !matches!(ph, Some("X") | Some("M")) {
            errs.push(format!("{ctx}: \"ph\" must be \"X\" or \"M\""));
        }
        for key in ["pid", "tid"] {
            if e.get(key).and_then(Value::as_num).is_none() {
                errs.push(format!("{ctx}: missing numeric {key:?}"));
            }
        }
        if ph == Some("X") {
            for key in ["ts", "dur"] {
                if e.get(key).and_then(Value::as_num).is_none() {
                    errs.push(format!("{ctx}: complete event missing {key:?}"));
                }
            }
        }
    }
    errs
}

fn validate_metrics(v: &Value, expected_runs: usize) -> Vec<String> {
    let mut errs = Vec::new();
    let meta = v.get("meta");
    match meta {
        Some(m) => {
            if m.get("cpu_model").and_then(Value::as_str).is_none() {
                errs.push("metrics: meta.cpu_model missing".to_string());
            }
            if m.get("kernel_mode").and_then(Value::as_str).is_none() {
                errs.push("metrics: meta.kernel_mode missing".to_string());
            }
            if m.get("perf_counters").and_then(Value::as_bool).is_none() {
                errs.push("metrics: meta.perf_counters missing".to_string());
            }
        }
        None => errs.push("metrics: missing \"meta\"".to_string()),
    }
    let Some(runs) = v.get("runs").and_then(Value::as_arr) else {
        errs.push("metrics: missing \"runs\" array".to_string());
        return errs;
    };
    if runs.len() != expected_runs {
        errs.push(format!(
            "metrics: {} runs, expected {expected_runs}",
            runs.len()
        ));
    }
    for r in runs {
        let name = r
            .get("algorithm")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        let ctx = format!("metrics run {name}");
        if !r
            .get("checksum")
            .and_then(Value::as_str)
            .is_some_and(|c| c.starts_with("0x"))
        {
            errs.push(format!("{ctx}: checksum must be a hex string"));
        }
        if r.get("matches").and_then(Value::as_num).is_none() {
            errs.push(format!("{ctx}: missing numeric matches"));
        }
        let Some(phases) = r.get("phases").and_then(Value::as_arr) else {
            errs.push(format!("{ctx}: missing phases array"));
            continue;
        };
        if phases.is_empty() {
            errs.push(format!("{ctx}: no phases"));
        }
        for p in phases {
            let pname = p.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
            let pctx = format!("{ctx} phase {pname}");
            for key in ["wall_ms", "tasks", "steals", "idle_ms"] {
                if p.get(key).and_then(Value::as_num).is_none() {
                    errs.push(format!("{pctx}: missing numeric {key:?}"));
                }
            }
            let Some(workers) = p.get("workers").and_then(Value::as_arr) else {
                errs.push(format!("{pctx}: missing workers array"));
                continue;
            };
            if workers.is_empty() {
                errs.push(format!("{pctx}: profiling was on but no worker spans"));
            }
            for w in workers {
                for key in [
                    "cycles",
                    "instructions",
                    "llc_misses",
                    "dtlb_misses",
                    "task_clock_ns",
                ] {
                    if !w.get(key).is_some_and(Value::is_num_or_null) {
                        errs.push(format!("{pctx}: worker {key:?} must be number or null"));
                    }
                }
            }
        }
    }
    errs
}

fn main() {
    let opts = parse_opts();
    let (r_n, s_mult) = if opts.quick {
        (8_192, 10)
    } else {
        (65_536, 10)
    };
    let s_n = r_n * s_mult;
    let placement = opts.harness.placement();
    let r = mmjoin_datagen::gen_build_dense(r_n, 0x9F0F, placement);
    let s = mmjoin_datagen::gen_probe_fk(s_n, r_n, 0x9F10, placement);

    let mut cfg = opts.harness.cfg();
    cfg.profile = ProfileConfig::on();
    println!(
        "profiling {} algorithm(s): |R|={r_n} |S|={s_n} threads={} native counters: {}",
        opts.algorithms.len(),
        cfg.threads,
        if perf::available() {
            "yes"
        } else {
            "no (all-None fallback)"
        }
    );

    let results: Vec<JoinResult> = opts
        .algorithms
        .iter()
        .map(|&alg| {
            Join::new(alg)
                .with_config(cfg.clone())
                .run(&r, &s)
                .unwrap_or_else(|e| {
                    eprintln!("error: {alg} failed: {e}");
                    std::process::exit(1);
                })
        })
        .collect();

    // Correctness: identical workload, identical answer across variants.
    if let Some(first) = results.first() {
        for res in &results {
            if (res.matches, res.checksum) != (first.matches, first.checksum) {
                eprintln!(
                    "error: {} disagrees with {} (matches/checksum)",
                    res.algorithm, first.algorithm
                );
                std::process::exit(1);
            }
        }
    }

    let mut summary = Table::new(
        "profile summary (native counters; n/a = PMU unavailable)",
        &[
            "join",
            "wall ms",
            "tasks",
            "steals",
            "cycles",
            "instr",
            "LLC miss",
            "dTLB miss",
        ],
    );
    for res in &results {
        let t = res.counter_totals();
        let e = res.total_exec();
        summary.row(vec![
            res.algorithm.name().to_string(),
            format!("{:.2}", res.total_wall().as_secs_f64() * 1e3),
            e.tasks.to_string(),
            e.steals.to_string(),
            fmt_opt(t.cycles),
            fmt_opt(t.instructions),
            fmt_opt(t.llc_misses),
            fmt_opt(t.dtlb_misses),
        ]);
    }
    summary.print();

    // Table-4 cross-check: native LLC/dTLB misses vs the memsim
    // prediction for the same inputs. Report-only — the simulator
    // models the paper's machine, not this host, so the ratio is a
    // sanity band, not a gate.
    if opts.memsim {
        let scale = (opts.harness.scale * 16).max(512);
        let page = PageConfig::huge(scale);
        let mut simcfg = opts.harness.cfg();
        simcfg.topology.capacity_scale = scale;
        let bits = simcfg.bits_for_hash_tables(r_n);
        let mut cross = Table::new(
            "memsim cross-check (native / simulated; report-only)",
            &[
                "join",
                "LLC native",
                "L3 sim",
                "ratio",
                "dTLB native",
                "TLB sim",
                "ratio",
            ],
        );
        for res in &results {
            let alg = res.algorithm;
            let b = if alg == Algorithm::Prb {
                14.min(bits * 2)
            } else {
                bits
            };
            let run = instrument(alg, &r, &s, scale, page, b);
            let mut sim = run.first;
            sim.merge(&run.second);
            let native = res.counter_totals();
            cross.row(vec![
                alg.name().to_string(),
                fmt_opt(native.llc_misses),
                sim.l3_misses.to_string(),
                ratio(native.llc_misses, sim.l3_misses),
                fmt_opt(native.dtlb_misses),
                sim.tlb_misses.to_string(),
                ratio(native.dtlb_misses, sim.tlb_misses),
            ]);
        }
        if !perf::available() {
            cross.note("native counters unavailable on this host; ratios reported as n/a");
        }
        cross.print();
    }

    if let Some(path) = &opts.ledger {
        // One wall-time sample per profiled algorithm: profiling runs are
        // single-shot, so the ledger cell carries a length-1 raw vector
        // (the sentinel then compares via bootstrap intervals, degenerate
        // but deterministic).
        let workload = if opts.quick {
            "profile-quick"
        } else {
            "profile-full"
        };
        let samples: Vec<ledger::SampleSet> = results
            .iter()
            .map(|res| ledger::SampleSet {
                algorithm: res.algorithm.name().to_string(),
                workload: workload.to_string(),
                kernel_mode: ledger::kernel_mode_name(),
                secs: vec![res.total_wall().as_secs_f64()],
            })
            .collect();
        let entry = ledger::Entry::stamped("profile", cfg.threads, samples);
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => {
                eprintln!("error: cannot append to ledger {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let trace = observe::chrome_trace(&results);
    let metrics = observe::metrics(&results, Some(&harness::meta_json()));
    for (path, payload) in [(&opts.trace_out, &trace), (&opts.metrics_out, &metrics)] {
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }

    if opts.check {
        let mut errs = Vec::new();
        match jsonv::parse(&std::fs::read_to_string(&opts.trace_out).unwrap()) {
            Ok(v) => errs.extend(validate_trace(&v)),
            Err(e) => errs.push(format!("trace: parse error: {e}")),
        }
        match jsonv::parse(&std::fs::read_to_string(&opts.metrics_out).unwrap()) {
            Ok(v) => errs.extend(validate_metrics(&v, results.len())),
            Err(e) => errs.push(format!("metrics: parse error: {e}")),
        }
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("FAIL: {e}");
            }
            std::process::exit(1);
        }
        println!("check: trace + metrics schemas ok");
    }
}
