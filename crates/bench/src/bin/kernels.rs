//! Kernel A/B perf-regression harness: portable vs dispatched hardware
//! kernels on the three microkernels they accelerate (partition scatter,
//! table build, table probe) plus end-to-end PRO/NOP/CPRL runs, and a
//! correctness sweep of all thirteen algorithms under the dispatched
//! kernels.
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin kernels            # full
//! cargo run -p mmjoin-bench --release --bin kernels -- --quick # CI smoke
//! cargo run -p mmjoin-bench --release --bin kernels -- --quick --check
//! ```
//!
//! Emits `BENCH_kernels.json` (override with `--out PATH`). With
//! `--check`, exits non-zero if the dispatched kernels are more than 5%
//! slower than the portable ones on the partition microkernel, or if any
//! algorithm's checksum diverges — the CI perf-regression gate. With
//! `--ledger PATH`, also appends a provenance-stamped entry holding the
//! raw repeat vectors to the run ledger, so `sentinel` can compare this
//! run against history (DESIGN.md §11).

use std::time::Instant;

use mmjoin_bench::harness::HarnessOpts;
use mmjoin_bench::ledger::{self, SampleSet};
use mmjoin_core::reference::reference_join;
use mmjoin_core::{Algorithm, Join, KernelMode};
use mmjoin_hashtable::{IdentityHash, JoinTable, StLinearTable, TableSpec};
use mmjoin_partition::swwcb::SwwcBank;
use mmjoin_partition::RadixFn;
use mmjoin_util::alloc::AlignedBuf;
use mmjoin_util::kernels::with_mode;
use mmjoin_util::rng::Xoshiro256;
use mmjoin_util::Tuple;

struct Ab {
    name: &'static str,
    /// Raw repeat wall times, in run order (the ledger stores these).
    portable: Vec<f64>,
    simd: Vec<f64>,
}

impl Ab {
    fn portable_s(&self) -> f64 {
        mmjoin_util::stats::median(&self.portable)
    }

    fn simd_s(&self) -> f64 {
        mmjoin_util::stats::median(&self.simd)
    }

    /// Portable time over dispatched time: > 1 means the kernels win.
    fn speedup(&self) -> f64 {
        self.portable_s() / self.simd_s().max(1e-12)
    }
}

/// Raw wall times of `reps` runs of `f` under `mode`, in run order.
fn time_under<F: FnMut()>(mode: KernelMode, reps: usize, mut f: F) -> Vec<f64> {
    (0..reps)
        .map(|_| {
            with_mode(mode, || {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
        })
        .collect()
}

fn ab<F: FnMut()>(name: &'static str, reps: usize, mut f: F) -> Ab {
    // Warm-up run outside the timed samples (page faults, branch warmup).
    with_mode(KernelMode::Portable, &mut f);
    Ab {
        name,
        portable: time_under(KernelMode::Portable, reps, &mut f),
        simd: time_under(KernelMode::Simd, reps, &mut f),
    }
}

fn shuffled_dense_tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let mut v: Vec<Tuple> = (0..n).map(|i| Tuple::new(i as u32 + 1, i as u32)).collect();
    let mut rng = Xoshiro256::new(seed);
    for i in (1..v.len()).rev() {
        v.swap(i, rng.below(i as u64 + 1) as usize);
    }
    v
}

/// Partition microkernel: single-threaded SWWCB scatter into an aligned
/// destination — the code path whose full-line flushes stream.
fn bench_partition(n: usize, bits: u32, reps: usize) -> Ab {
    let input = shuffled_dense_tuples(n, 11);
    let f = RadixFn::new(bits);
    let parts = f.fanout();
    // One shared histogram (identical for both modes).
    let mut hist = vec![0usize; parts];
    for t in &input {
        hist[f.part(t.key)] += 1;
    }
    let mut offsets = vec![0usize; parts];
    let mut acc = 0;
    for p in 0..parts {
        offsets[p] = acc;
        acc += hist[p];
    }
    let mut out = AlignedBuf::<Tuple>::zeroed(n);
    ab("partition", reps, move || {
        let mut bank = SwwcBank::new(&offsets);
        let ptr = out.as_mut_ptr();
        // SAFETY: cursors come from the histogram of `input`.
        unsafe {
            for &t in &input {
                bank.push(f.part(t.key), t, ptr);
            }
            bank.flush_all(ptr);
        }
    })
}

/// Build microkernel: batched inserts into an out-of-cache linear table.
fn bench_build(n: usize, reps: usize) -> Ab {
    let tuples = shuffled_dense_tuples(n, 22);
    let spec = TableSpec::hashed(n);
    ab("build", reps, move || {
        let mut table = StLinearTable::<IdentityHash>::with_spec(&spec);
        table.insert_batch(&tuples);
    })
}

/// Probe microkernel: group-prefetched batch probes of an out-of-cache
/// linear table with a random probe order (every probe a fresh miss).
fn bench_probe(n: usize, probes: usize, reps: usize) -> Ab {
    let tuples = shuffled_dense_tuples(n, 33);
    let spec = TableSpec::hashed(n);
    let mut table = StLinearTable::<IdentityHash>::with_spec(&spec);
    table.insert_batch(&tuples);
    let mut rng = Xoshiro256::new(44);
    let probe_tuples: Vec<Tuple> = (0..probes)
        .map(|i| Tuple::new(rng.below(n as u64) as u32 + 1, i as u32))
        .collect();
    ab("probe", reps, move || {
        let mut acc = 0u64;
        table.probe_batch(&probe_tuples, true, |t, bp| {
            acc = acc.wrapping_add(t.key as u64 ^ bp as u64);
        });
        std::hint::black_box(acc);
    })
}

/// End-to-end A/B of one algorithm under forced kernel modes.
fn bench_end_to_end(alg: Algorithm, opts: &HarnessOpts, r_m: usize, s_m: usize, reps: usize) -> Ab {
    let (r, s) = opts.workload(r_m, s_m, 55);
    let run = |mode: KernelMode| {
        Join::new(alg)
            .with_threads(opts.threads)
            .with_simulate(false)
            .with_kernel_mode(mode)
            .run(&r, &s)
            .expect("join failed")
    };
    // Warm-up (pool spin-up, page faults).
    run(KernelMode::Portable);
    let time = |mode: KernelMode| -> Vec<f64> {
        (0..reps)
            .map(|_| {
                let start = Instant::now();
                run(mode);
                start.elapsed().as_secs_f64()
            })
            .collect()
    };
    let name = match alg {
        Algorithm::Pro => "e2e_PRO",
        Algorithm::Nop => "e2e_NOP",
        Algorithm::Cprl => "e2e_CPRL",
        _ => "e2e",
    };
    Ab {
        name,
        portable: time(KernelMode::Portable),
        simd: time(KernelMode::Simd),
    }
}

/// All thirteen algorithms must reproduce the reference checksum with the
/// dispatched kernels enabled.
fn checksum_sweep(opts: &HarnessOpts) -> bool {
    let n = 30_000;
    let r = mmjoin_datagen::gen_build_dense(n, 66, opts.placement());
    let s = mmjoin_datagen::gen_probe_fk(4 * n, n, 67, opts.placement());
    let expect = reference_join(&r, &s);
    let mut ok = true;
    for alg in Algorithm::ALL {
        match Join::new(alg)
            .with_threads(opts.threads)
            .with_simulate(false)
            .with_kernel_mode(KernelMode::Simd)
            .run(&r, &s)
        {
            Ok(res) if res.matches == expect.count && res.checksum == expect.digest => {}
            Ok(res) => {
                eprintln!(
                    "checksum mismatch for {alg}: {} matches vs {}",
                    res.matches, expect.count
                );
                ok = false;
            }
            Err(e) => {
                eprintln!("{alg} failed under dispatched kernels: {e}");
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut quick = false;
    let mut check = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut ledger_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--ledger" => match it.next() {
                Some(p) => ledger_path = Some(p.clone()),
                None => {
                    eprintln!("error: --ledger needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let counters_before = mmjoin_bench::harness::TrialCounters::snapshot();

    // Sizes: out-of-cache on any recent LLC. Quick mode shrinks the
    // inputs (still several MB of table) and the repetition count so the
    // CI smoke job finishes in seconds.
    let (part_n, build_n, probe_build_n, probe_n, reps, e2e) = if quick {
        // Three e2e repeats even in quick mode: the ledger's sentinel
        // can only *confirm* a regression from a repeat distribution,
        // and the runs are ~1 ms each.
        (1 << 21, 1 << 20, 1 << 21, 1 << 21, 3, (2, 8, 3))
    } else {
        (1 << 23, 1 << 22, 1 << 22, 1 << 23, 5, (16, 64, 3))
    };

    eprintln!("kernels A/B: quick={quick} threads={} ...", opts.threads);
    let mut results = vec![
        bench_partition(part_n, 10, reps),
        bench_build(build_n, reps),
        bench_probe(probe_build_n, probe_n, reps),
    ];
    for alg in [Algorithm::Pro, Algorithm::Nop, Algorithm::Cprl] {
        results.push(bench_end_to_end(alg, &opts, e2e.0, e2e.1, e2e.2));
    }
    let checksum_ok = checksum_sweep(&opts);

    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "kernel", "portable_ms", "simd_ms", "speedup"
    );
    for r in &results {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>8.2}x",
            r.name,
            r.portable_s() * 1e3,
            r.simd_s() * 1e3,
            r.speedup()
        );
    }
    println!(
        "checksums (all 13, dispatched kernels): {}",
        if checksum_ok { "ok" } else { "FAILED" }
    );

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"portable_ms\": {:.3}, \"simd_ms\": {:.3}, \"speedup\": {:.4}}}",
                r.name,
                r.portable_s() * 1e3,
                r.simd_s() * 1e3,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"quick\": {quick},\n  \"threads\": {},\n  \"checksums_ok\": {checksum_ok},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        mmjoin_bench::harness::meta_json(),
        opts.threads,
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out_path}");

    if let Some(path) = &ledger_path {
        let workload = if quick { "quick" } else { "full" };
        let samples: Vec<SampleSet> = results
            .iter()
            .flat_map(|r| {
                [
                    SampleSet {
                        algorithm: r.name.to_string(),
                        workload: workload.to_string(),
                        kernel_mode: "portable".to_string(),
                        secs: r.portable.clone(),
                    },
                    SampleSet {
                        algorithm: r.name.to_string(),
                        workload: workload.to_string(),
                        kernel_mode: "simd".to_string(),
                        secs: r.simd.clone(),
                    },
                ]
            })
            .collect();
        let mut entry = ledger::Entry::stamped("kernels", opts.threads, samples);
        let delta = counters_before.delta();
        entry.retried_trials = delta.retried;
        entry.failed_trials = delta.failed;
        entry.failed_resource_trials = delta.failed_resource;
        entry.failed_io_trials = delta.failed_io;
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => {
                eprintln!("error: cannot append to ledger {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if check {
        let partition = &results[0];
        // Gate: dispatched must not be >5% slower than portable on the
        // partition microkernel, and every checksum must match.
        let slowdown = partition.simd_s() / partition.portable_s().max(1e-12);
        if slowdown > 1.05 {
            eprintln!(
                "FAIL: dispatched partition kernel {:.1}% slower than portable",
                (slowdown - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        if !checksum_ok {
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}
