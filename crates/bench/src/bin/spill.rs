//! SHHJ graceful-degradation harness: sweep the memory budget from 2x
//! the build bytes down to 1/8 and record the spilling hybrid hash
//! join's throughput curve against an unconstrained PRO reference
//! (DESIGN.md §13).
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin spill            # full
//! cargo run -p mmjoin-bench --release --bin spill -- --quick # CI smoke
//! cargo run -p mmjoin-bench --release --bin spill -- --quick --check
//! ```
//!
//! Emits `BENCH_spill.json` (override with `--out PATH`). With
//! `--check`, exits non-zero unless every budget tier reproduces the
//! reference checksum, the starved tiers actually spilled, and the
//! classic driver aborted at 1/8 — the CI correctness gate. With
//! `--ledger PATH`, appends a provenance-stamped entry with one raw
//! repeat vector per tier (`shhj_none` .. `shhj_1_8` cells plus the
//! `pro_ref` reference), and the classic driver's expected aborts show
//! up in `failed_resource_trials`, separate from harness breakage.

use mmjoin_bench::experiments::spill::{run_at, tier_budget, tier_cell, TIERS};
use mmjoin_bench::harness::{run_trial_with, HarnessOpts, TrialCounters};
use mmjoin_bench::ledger::{self, SampleSet};
use mmjoin_core::{Algorithm, SpillCounters};

struct TierRuns {
    label: &'static str,
    budget: Option<usize>,
    /// Raw SHHJ repeat wall times, in run order.
    secs: Vec<f64>,
    spill: SpillCounters,
    checksum_ok: bool,
    /// Classic driver (PRO) outcome at this budget.
    classic: &'static str,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, rest) = match HarnessOpts::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut quick = false;
    let mut check = false;
    let mut out_path = "BENCH_spill.json".to_string();
    let mut ledger_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("error: --out needs a value");
                    std::process::exit(2);
                }
            },
            "--ledger" => match it.next() {
                Some(p) => ledger_path = Some(p.clone()),
                None => {
                    eprintln!("error: --ledger needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let counters_before = TrialCounters::snapshot();

    // Paper-million sizes shrunk by --scale; quick keeps three repeats
    // so the sentinel still sees a distribution. Quick must stay large
    // enough that 1/8 of the build bytes clears SHHJ's all-spilled
    // buffer floor, else the gate's starved tier cannot run at all.
    let ((r_m, s_m), reps) = if quick { ((8, 32), 3) } else { ((16, 64), 5) };
    let (r, s) = opts.workload(r_m, s_m, 0x5B1);
    let build_bytes = r.len() * 8;
    let tuples = (r.len() + s.len()) as f64;
    eprintln!(
        "SHHJ budget sweep: quick={quick} threads={} |R|={} ({} KiB build)",
        opts.threads,
        r.len(),
        build_bytes / 1024
    );

    // Unconstrained PRO: the correctness reference and the no-pressure
    // baseline every tier is measured against.
    let reference =
        run_at(Algorithm::Pro, &r, &s, opts.threads, None).expect("unconstrained PRO reference");
    let mut ref_secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let res = run_at(Algorithm::Pro, &r, &s, opts.threads, None)
            .expect("unconstrained PRO reference repeat");
        ref_secs.push(res.total_wall().as_secs_f64());
    }

    let mut tiers: Vec<TierRuns> = Vec::new();
    for &(label, frac) in &TIERS {
        let budget = tier_budget(build_bytes, frac);
        // Warm-up run outside the timed samples; also the counter probe.
        let warm = run_at(Algorithm::Shhj, &r, &s, opts.threads, budget)
            .unwrap_or_else(|e| panic!("SHHJ at budget {label} failed: {e}"));
        let mut runs = TierRuns {
            label,
            budget,
            secs: Vec::with_capacity(reps),
            spill: warm.spill_totals(),
            checksum_ok: warm.checksum == reference.checksum && warm.matches == reference.matches,
            classic: "",
        };
        for _ in 0..reps {
            let res = run_at(Algorithm::Shhj, &r, &s, opts.threads, budget)
                .unwrap_or_else(|e| panic!("SHHJ at budget {label} failed: {e}"));
            runs.checksum_ok &=
                res.checksum == reference.checksum && res.matches == reference.matches;
            runs.secs.push(res.total_wall().as_secs_f64());
        }
        // The classic driver at the same budget, through the harness's
        // fault-tolerant trial runner so its expected aborts are counted
        // as resource refusals, not breakage.
        let classic = run_trial_with(&format!("pro@{label}"), || {
            run_at(Algorithm::Pro, &r, &s, opts.threads, budget)
        });
        runs.classic = match classic {
            Some(_) => "ok",
            None => "abort",
        };
        tiers.push(runs);
    }

    println!(
        "{:<6} {:>9} {:>9} {:>6} {:>12} {:>6} {:>6} {:>9} {:>6}",
        "budget", "mem_KiB", "shhj_ms", "Mtps", "MiB_spilled", "parts", "depth", "checksum", "PRO"
    );
    for t in &tiers {
        let secs = mmjoin_util::stats::median(&t.secs);
        println!(
            "{:<6} {:>9} {:>9.1} {:>6.0} {:>12.2} {:>6} {:>6} {:>9} {:>6}",
            t.label,
            t.budget
                .map(|b| format!("{}", b / 1024))
                .unwrap_or_else(|| "inf".to_string()),
            secs * 1e3,
            tuples / secs.max(1e-12) / 1e6,
            t.spill.bytes_spilled as f64 / (1024.0 * 1024.0),
            t.spill.partitions_spilled,
            t.spill.recursion_depth,
            if t.checksum_ok { "ok" } else { "FAILED" },
            t.classic,
        );
    }

    let entries: Vec<String> = tiers
        .iter()
        .map(|t| {
            let secs = mmjoin_util::stats::median(&t.secs);
            format!(
                "    {{\"tier\": \"{}\", \"budget_bytes\": {}, \"shhj_ms\": {:.3}, \
                 \"mtps\": {:.2}, \"bytes_spilled\": {}, \"partitions_spilled\": {}, \
                 \"recursion_depth\": {}, \"checksum_ok\": {}, \"classic\": \"{}\"}}",
                t.label,
                t.budget
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".to_string()),
                secs * 1e3,
                tuples / secs.max(1e-12) / 1e6,
                t.spill.bytes_spilled,
                t.spill.partitions_spilled,
                t.spill.recursion_depth,
                t.checksum_ok,
                t.classic
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"meta\": {},\n  \"quick\": {quick},\n  \"threads\": {},\n  \
         \"build_bytes\": {build_bytes},\n  \"reference_ms\": {:.3},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        mmjoin_bench::harness::meta_json(),
        opts.threads,
        mmjoin_util::stats::median(&ref_secs) * 1e3,
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {out_path}");

    if let Some(path) = &ledger_path {
        let workload = if quick { "quick" } else { "full" };
        let mut samples: Vec<SampleSet> = vec![SampleSet {
            algorithm: "pro_ref".to_string(),
            workload: workload.to_string(),
            kernel_mode: "auto".to_string(),
            secs: ref_secs.clone(),
        }];
        samples.extend(tiers.iter().map(|t| SampleSet {
            algorithm: tier_cell(t.label),
            workload: workload.to_string(),
            kernel_mode: "auto".to_string(),
            secs: t.secs.clone(),
        }));
        let mut entry = ledger::Entry::stamped("spill", opts.threads, samples);
        let delta = counters_before.delta();
        entry.retried_trials = delta.retried;
        entry.failed_trials = delta.failed;
        entry.failed_resource_trials = delta.failed_resource;
        entry.failed_io_trials = delta.failed_io;
        match ledger::append(std::path::Path::new(path), &entry) {
            Ok(()) => eprintln!("ledger: appended {} to {path}", entry.describe()),
            Err(e) => {
                eprintln!("error: cannot append to ledger {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if check {
        let mut fail = false;
        for t in &tiers {
            if !t.checksum_ok {
                eprintln!(
                    "FAIL: SHHJ@{} checksum diverges from unconstrained PRO",
                    t.label
                );
                fail = true;
            }
        }
        let by = |label: &str| tiers.iter().find(|t| t.label == label).expect("tier");
        if by("none").spill.bytes_spilled != 0 {
            eprintln!("FAIL: SHHJ spilled under an unlimited budget");
            fail = true;
        }
        if by("1/8").spill.bytes_spilled == 0 {
            eprintln!("FAIL: SHHJ did not spill at 1/8 of the build bytes");
            fail = true;
        }
        if by("1/8").classic != "abort" {
            eprintln!("FAIL: classic PRO survived a 1/8 budget (gate assumes it cannot)");
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
        eprintln!("check passed");
    }
}
