//! `sentinel` — the run-ledger CLI: record provenance-stamped benchmark
//! entries and statistically compare them for regressions.
//!
//! ```text
//! sentinel record  [--ledger PATH] [--quick] [--reps N] [--algo NAME]...
//!                  [--label TEXT] [--threads N] [--scale N]
//! sentinel compare <A> <B> [--ledger PATH] [--threshold 5%] [--alpha P]
//!                  [--allow-cross-host] [--json] [--json-out PATH]
//! sentinel check   --baseline <sha|latest> [--ledger PATH] [--threshold 5%]
//!                  [--alpha P] [--allow-cross-host] [--json-out PATH]
//! sentinel list    [--ledger PATH]
//! sentinel perturb [--ledger PATH] [--factor F] [--algorithm NAME] [--mode M]
//! ```
//!
//! `<A>`/`<B>` select ledger entries: `latest`, `prev`, `#N` (0-based,
//! oldest first), or a git-sha prefix. `check` compares the newest
//! entry against the chosen baseline (`latest` = newest earlier entry
//! of the same kind on the same host fingerprint and thread count) and
//! exits non-zero on any confirmed regression — the CI gate. `perturb`
//! appends a copy of the newest entry with selected cells synthetically
//! slowed, used by the sentinel's own self-check. Exit codes: 0 pass,
//! 1 confirmed regression, 2 usage/IO/schema error.

use std::path::{Path, PathBuf};

use mmjoin_bench::harness::HarnessOpts;
use mmjoin_bench::jsonv;
use mmjoin_bench::ledger::{self, Entry};
use mmjoin_bench::sentinel::{self, CompareOpts};
use mmjoin_core::Algorithm;

fn usage() -> ! {
    eprintln!(
        "usage: sentinel <record|compare|check|list|perturb> [options]\n\
         \x20 record  [--ledger PATH] [--quick] [--reps N] [--algo NAME]... [--label TEXT]\n\
         \x20 compare <A> <B> [--ledger PATH] [--threshold 5%] [--alpha P]\n\
         \x20         [--allow-cross-host] [--json] [--json-out PATH]\n\
         \x20 check   --baseline <sha|latest> [--ledger PATH] [--threshold 5%]\n\
         \x20         [--alpha P] [--allow-cross-host] [--json-out PATH]\n\
         \x20 list    [--ledger PATH]\n\
         \x20 perturb [--ledger PATH] [--factor F] [--algorithm NAME] [--mode M]\n\
         selectors: latest | prev | #N | git-sha prefix"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Flags shared by every subcommand; returns (ledger path, leftovers).
fn split_ledger_flag(args: Vec<String>) -> (PathBuf, Vec<String>) {
    let mut path = PathBuf::from(ledger::DEFAULT_PATH);
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--ledger" {
            match it.next() {
                Some(p) => path = PathBuf::from(p),
                None => fail("--ledger needs a value"),
            }
        } else {
            rest.push(a);
        }
    }
    (path, rest)
}

fn load(path: &Path) -> Vec<Entry> {
    match ledger::read_all(path) {
        Ok(entries) => entries,
        Err(e) => fail(&e),
    }
}

/// Emit the verdict (table + optional JSON), self-validate the JSON
/// against the documented schema, and exit with the gate's code.
fn finish(verdict: &sentinel::Verdict, json_stdout: bool, json_out: Option<&str>) -> ! {
    let doc = verdict.to_json();
    match jsonv::parse(&doc) {
        Ok(v) => {
            let errs = sentinel::validate_verdict(&v);
            if !errs.is_empty() {
                for e in &errs {
                    eprintln!("FAIL: {e}");
                }
                fail("verdict JSON failed its own schema check");
            }
        }
        Err(e) => fail(&format!("verdict JSON unparseable: {e}")),
    }
    if json_stdout {
        println!("{doc}");
        eprint!("{}", verdict.table().render());
    } else {
        verdict.table().print();
    }
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
    }
    let regressions = verdict.regressions();
    let suspects = verdict.suspects();
    if !suspects.is_empty() {
        eprintln!(
            "note: {} suspect cell(s) past threshold without statistical backing; \
             rerun with more repeats",
            suspects.len()
        );
    }
    if regressions.is_empty() {
        eprintln!("sentinel: no confirmed regressions");
        std::process::exit(0);
    }
    eprintln!("sentinel: {} confirmed regression(s):", regressions.len());
    for c in &regressions {
        eprintln!(
            "  {} {:+.1}% ({:.2} -> {:.2} ms)",
            c.key(),
            c.delta * 100.0,
            c.median_baseline_s * 1e3,
            c.median_candidate_s * 1e3
        );
    }
    std::process::exit(1);
}

fn cmd_record(args: Vec<String>) -> ! {
    let (path, rest) = split_ledger_flag(args);
    let (hopts, rest) = HarnessOpts::parse(&rest).unwrap_or_else(|e| fail(&e));
    let mut quick = false;
    let mut reps = 0usize;
    let mut label = String::new();
    let mut algorithms: Vec<Algorithm> = Vec::new();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--reps needs a positive integer"))
            }
            "--label" => label = it.next().unwrap_or_else(|| fail("--label needs a value")),
            "--algo" => {
                let name = it.next().unwrap_or_else(|| fail("--algo needs a value"));
                match Algorithm::from_name(&name) {
                    Some(alg) => algorithms.push(alg),
                    None => fail(&format!("unknown algorithm {name:?}")),
                }
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    if algorithms.is_empty() {
        algorithms = vec![Algorithm::Pro, Algorithm::Nop, Algorithm::Cprl];
    }
    if reps == 0 {
        reps = if quick { 3 } else { 5 };
    }
    eprintln!(
        "sentinel record: {} algorithm(s) x {reps} reps, quick={quick}, threads={}",
        algorithms.len(),
        hopts.threads
    );
    let samples = sentinel::sample_e2e(&hopts, &algorithms, reps, quick);
    let mut entry = Entry::stamped("sentinel", hopts.threads, samples);
    entry.label = label;
    if let Err(e) = ledger::append(&path, &entry) {
        fail(&format!("cannot append to {}: {e}", path.display()));
    }
    eprintln!("recorded {} into {}", entry.describe(), path.display());
    std::process::exit(0);
}

/// Parse the comparison flags shared by `compare` and `check`.
struct GateFlags {
    opts: CompareOpts,
    json_stdout: bool,
    json_out: Option<String>,
    positional: Vec<String>,
}

fn gate_flags(args: Vec<String>) -> GateFlags {
    let mut flags = GateFlags {
        opts: CompareOpts::default(),
        json_stdout: false,
        json_out: None,
        positional: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--threshold needs a value"));
                flags.opts.threshold = sentinel::parse_threshold(&v).unwrap_or_else(|e| fail(&e));
            }
            "--alpha" => {
                let v = it.next().unwrap_or_else(|| fail("--alpha needs a value"));
                flags.opts.alpha = v
                    .parse()
                    .ok()
                    .filter(|p: &f64| (0.0..=1.0).contains(p))
                    .unwrap_or_else(|| fail("--alpha needs a probability in [0, 1]"));
            }
            "--allow-cross-host" => flags.opts.allow_cross_host = true,
            "--json" => flags.json_stdout = true,
            "--json-out" => {
                flags.json_out = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--json-out needs a value")),
                )
            }
            other => flags.positional.push(other.to_string()),
        }
    }
    flags
}

fn cmd_compare(args: Vec<String>) -> ! {
    let (path, rest) = split_ledger_flag(args);
    let flags = gate_flags(rest);
    let [a, b] = flags.positional.as_slice() else {
        fail("compare needs exactly two selectors (latest | prev | #N | sha)");
    };
    let entries = load(&path);
    let base = sentinel::select(&entries, a).unwrap_or_else(|e| fail(&e));
    let cand = sentinel::select(&entries, b).unwrap_or_else(|e| fail(&e));
    let verdict = sentinel::compare_entries(base, cand, &flags.opts).unwrap_or_else(|e| fail(&e));
    finish(&verdict, flags.json_stdout, flags.json_out.as_deref());
}

fn cmd_check(args: Vec<String>) -> ! {
    let (path, rest) = split_ledger_flag(args);
    let mut baseline_sel: Option<String> = None;
    let mut passthrough = Vec::new();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        if a == "--baseline" {
            baseline_sel = Some(
                it.next()
                    .unwrap_or_else(|| fail("--baseline needs a value")),
            );
        } else {
            passthrough.push(a);
        }
    }
    let baseline_sel =
        baseline_sel.unwrap_or_else(|| fail("check requires --baseline <sha|latest>"));
    let flags = gate_flags(passthrough);
    if !flags.positional.is_empty() {
        fail(&format!("unknown option {:?}", flags.positional[0]));
    }
    let entries = load(&path);
    if entries.is_empty() {
        fail("ledger is empty");
    }
    let candidate_idx = entries.len() - 1;
    let base = sentinel::baseline_for(
        &entries,
        candidate_idx,
        &baseline_sel,
        flags.opts.allow_cross_host,
    )
    .unwrap_or_else(|e| fail(&e));
    let verdict = sentinel::compare_entries(base, &entries[candidate_idx], &flags.opts)
        .unwrap_or_else(|e| fail(&e));
    finish(&verdict, flags.json_stdout, flags.json_out.as_deref());
}

fn cmd_list(args: Vec<String>) -> ! {
    let (path, rest) = split_ledger_flag(args);
    if !rest.is_empty() {
        fail(&format!("unknown option {:?}", rest[0]));
    }
    let entries = load(&path);
    println!(
        "{:<4} {:<40} {:>7} {:>8} {:>7} host",
        "idx", "entry", "cells", "threads", "mode"
    );
    for (i, e) in entries.iter().enumerate() {
        println!(
            "#{i:<3} {:<40} {:>7} {:>8} {:>7} {}",
            e.describe(),
            e.samples.len(),
            e.threads,
            e.kernel_mode,
            e.host.fingerprint
        );
    }
    std::process::exit(0);
}

fn cmd_perturb(args: Vec<String>) -> ! {
    let (path, rest) = split_ledger_flag(args);
    let mut factor = 2.0f64;
    let mut algorithm: Option<String> = None;
    let mut mode: Option<String> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--factor" => {
                factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f: &f64| f.is_finite() && *f > 0.0)
                    .unwrap_or_else(|| fail("--factor needs a positive number"))
            }
            "--algorithm" => {
                algorithm = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--algorithm needs a value")),
                )
            }
            "--mode" => mode = Some(it.next().unwrap_or_else(|| fail("--mode needs a value"))),
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let entries = load(&path);
    let Some(last) = entries.last() else {
        fail("ledger is empty");
    };
    let mut entry = last.clone();
    entry.timestamp += 1;
    entry.label = format!("perturbed x{factor}");
    let mut touched = 0;
    for s in &mut entry.samples {
        let wanted = algorithm.as_deref().is_none_or(|a| a == s.algorithm)
            && mode.as_deref().is_none_or(|m| m == s.kernel_mode);
        if wanted {
            for x in &mut s.secs {
                *x *= factor;
            }
            eprintln!("perturbed {} x{factor}", s.key());
            touched += 1;
        }
    }
    if touched == 0 {
        fail("no cells matched --algorithm/--mode");
    }
    if let Err(e) = ledger::append(&path, &entry) {
        fail(&format!("cannot append to {}: {e}", path.display()));
    }
    eprintln!(
        "appended synthetic entry {} ({touched} cell(s) slowed x{factor})",
        entry.describe()
    );
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "record" => cmd_record(args),
        "compare" => cmd_compare(args),
        "check" => cmd_check(args),
        "list" => cmd_list(args),
        "perturb" => cmd_perturb(args),
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage();
        }
    }
}
