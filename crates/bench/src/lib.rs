//! The experiment harness: one runnable reproduction per table and
//! figure of the paper.
//!
//! ```text
//! cargo run -p mmjoin-bench --release --bin repro -- fig1
//! cargo run -p mmjoin-bench --release --bin repro -- all --scale 256
//! ```
//!
//! Every experiment accepts `--scale N` (divide the paper's tuple counts
//! by `N`; the simulated machine's caches and pages are divided by the
//! same factor so capacity-relative crossovers are preserved — see
//! DESIGN.md), `--threads N` (host worker threads) and `--sim-threads N`
//! (thread count presented to the NUMA cost model; default 32, the
//! paper's main configuration).

pub mod experiments;
pub mod harness;
pub mod jsonv;
pub mod ledger;
pub mod sentinel;

pub use harness::{HarnessOpts, Table};
