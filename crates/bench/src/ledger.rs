//! The benchmark run ledger: an append-only JSONL store
//! (`.mmjoin/ledger.jsonl` by default, `--ledger PATH` to override)
//! where every `repro`, `kernels`, `profile`, and `sentinel record`
//! invocation appends one provenance-stamped entry. Each entry carries
//! the git sha + dirty flag, a host fingerprint, the kernel mode and
//! thread count, the sweep's retry/failure counts, and the **raw repeat
//! vectors** of every measured cell — so later comparisons (the
//! `sentinel` bin) can be distribution-aware instead of diffing two
//! medians. See DESIGN.md §11 for the schema and comparison semantics.

use std::io::Write;
use std::path::Path;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::harness::{self, json_escape};
use crate::jsonv::{self, Value};

/// Bumped when an incompatible field change lands; readers refuse newer
/// schemas instead of guessing.
pub const SCHEMA_VERSION: u64 = 1;

/// Default on-disk location, relative to the working directory.
pub const DEFAULT_PATH: &str = ".mmjoin/ledger.jsonl";

/// Raw repeat samples for one measured cell. The sentinel joins cells
/// across entries on the full `(algorithm, workload, kernel_mode)` key
/// (plus the entry-level thread count and host fingerprint).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSet {
    /// What was measured: an algorithm ("PRO"), a microkernel
    /// ("partition"), or a repro trial label ("fig2 PRO 1-pass bits=4").
    pub algorithm: String,
    /// Workload discriminator ("quick"/"full"/"repro"/...): cells from
    /// different workloads are never comparable.
    pub workload: String,
    /// Kernel mode the samples ran under ("portable"/"simd"/"auto").
    pub kernel_mode: String,
    /// Wall seconds of every repeat, in run order, no aggregation.
    pub secs: Vec<f64>,
}

impl SampleSet {
    /// The join key used by ledger comparisons, rendered for messages.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.algorithm, self.workload, self.kernel_mode)
    }
}

/// Identity of the machine an entry was recorded on.
#[derive(Clone, Debug, PartialEq)]
pub struct Host {
    /// `/proc/cpuinfo` model name (or "unknown").
    pub cpu_model: String,
    /// `available_parallelism` at record time.
    pub threads_avail: usize,
    /// Target architecture the binary ran on.
    pub arch: String,
    /// Short stable digest of the above — the cross-host comparison
    /// guard. Two entries are host-compatible iff fingerprints match.
    pub fingerprint: String,
}

impl Host {
    /// Detect the current host and stamp its fingerprint.
    pub fn detect() -> Host {
        let cpu_model = harness::cpu_model();
        let threads_avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let arch = std::env::consts::ARCH.to_string();
        let fingerprint = fingerprint_of(&cpu_model, threads_avail, &arch);
        Host {
            cpu_model,
            threads_avail,
            arch,
            fingerprint,
        }
    }
}

/// FNV-1a over the identity fields, rendered as 16 hex chars. Stable
/// across runs and across library versions (the constants are fixed by
/// the FNV spec, not by the Rust stdlib).
pub fn fingerprint_of(cpu_model: &str, threads_avail: usize, arch: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cpu_model
        .bytes()
        .chain([0u8])
        .chain(threads_avail.to_le_bytes())
        .chain([0u8])
        .chain(arch.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// One ledger line: a provenance-stamped bundle of raw samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    pub schema: u64,
    /// Producer: "kernels", "repro", "profile", "sentinel", or "cli".
    pub kind: String,
    /// Free-form annotation ("" when unused; `sentinel perturb` marks
    /// its synthetic entries here).
    pub label: String,
    /// Unix seconds at record time.
    pub timestamp: u64,
    /// `git rev-parse HEAD` of the working tree, or "unknown".
    pub git_sha: String,
    /// Whether the tree had uncommitted changes (unknown counts as
    /// dirty: numbers that can't be tied to a commit shouldn't gate).
    pub git_dirty: bool,
    pub host: Host,
    /// Worker threads the benchmark ran with (a join-key field: numbers
    /// from different thread counts are not comparable).
    pub threads: usize,
    /// Process-level kernel mode resolved at record time.
    pub kernel_mode: String,
    /// Process-level allocation policy resolved at record time
    /// ("portable", "thp", "hugetlb+bind:0", ...; see
    /// `mmjoin_util::mem::AllocPolicy`). Pre-alloc ledger lines lack the
    /// key and read as "portable" — the only path that existed then.
    pub alloc_policy: String,
    /// Trials in this sweep whose first attempt failed.
    pub retried_trials: u64,
    /// Trials in this sweep that failed both attempts (all causes).
    pub failed_trials: u64,
    /// Subset of `failed_trials` that ended in `MemoryBudgetExceeded`
    /// (absent in pre-spill ledger lines; reads as 0).
    pub failed_resource_trials: u64,
    /// Subset of `failed_trials` that ended in `JoinError::Io` (absent
    /// in pre-spill ledger lines; reads as 0).
    pub failed_io_trials: u64,
    pub samples: Vec<SampleSet>,
}

impl Entry {
    /// A fully provenance-stamped entry for the current process: git
    /// sha/dirty, host fingerprint, kernel mode, and wall-clock now.
    pub fn stamped(kind: &str, threads: usize, samples: Vec<SampleSet>) -> Entry {
        let (git_sha, git_dirty) = git_provenance();
        Entry {
            schema: SCHEMA_VERSION,
            kind: kind.to_string(),
            label: String::new(),
            timestamp: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_sha,
            git_dirty,
            host: Host::detect(),
            threads,
            kernel_mode: kernel_mode_name(),
            alloc_policy: mmjoin_util::mem::policy_name(),
            retried_trials: 0,
            failed_trials: 0,
            failed_resource_trials: 0,
            failed_io_trials: 0,
            samples,
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                let secs: Vec<String> = s.secs.iter().map(|v| json_num(*v)).collect();
                format!(
                    "{{\"algorithm\": {}, \"workload\": {}, \"kernel_mode\": {}, \"secs\": [{}]}}",
                    json_escape(&s.algorithm),
                    json_escape(&s.workload),
                    json_escape(&s.kernel_mode),
                    secs.join(", ")
                )
            })
            .collect();
        format!(
            "{{\"schema\": {}, \"kind\": {}, \"label\": {}, \"timestamp\": {}, \
             \"git_sha\": {}, \"git_dirty\": {}, \
             \"host\": {{\"cpu_model\": {}, \"threads_avail\": {}, \"arch\": {}, \"fingerprint\": {}}}, \
             \"threads\": {}, \"kernel_mode\": {}, \"alloc_policy\": {}, \
             \"retried_trials\": {}, \"failed_trials\": {}, \
             \"failed_resource_trials\": {}, \"failed_io_trials\": {}, \"samples\": [{}]}}",
            self.schema,
            json_escape(&self.kind),
            json_escape(&self.label),
            self.timestamp,
            json_escape(&self.git_sha),
            self.git_dirty,
            json_escape(&self.host.cpu_model),
            self.host.threads_avail,
            json_escape(&self.host.arch),
            json_escape(&self.host.fingerprint),
            self.threads,
            json_escape(&self.kernel_mode),
            json_escape(&self.alloc_policy),
            self.retried_trials,
            self.failed_trials,
            self.failed_resource_trials,
            self.failed_io_trials,
            samples.join(", ")
        )
    }

    /// Parse one ledger line previously produced by [`Entry::to_json`]
    /// (or by external tooling following DESIGN.md §11).
    pub fn from_value(v: &Value) -> Result<Entry, String> {
        let schema = num_field(v, "schema")? as u64;
        if schema > SCHEMA_VERSION {
            return Err(format!(
                "ledger entry has schema {schema}, this build understands <= {SCHEMA_VERSION}"
            ));
        }
        let host_v = v.get("host").ok_or("entry missing \"host\"")?;
        let host = Host {
            cpu_model: str_field(host_v, "cpu_model")?,
            threads_avail: num_field(host_v, "threads_avail")? as usize,
            arch: str_field(host_v, "arch")?,
            fingerprint: str_field(host_v, "fingerprint")?,
        };
        let mut samples = Vec::new();
        for (i, sv) in v
            .get("samples")
            .and_then(Value::as_arr)
            .ok_or("entry missing \"samples\" array")?
            .iter()
            .enumerate()
        {
            let secs_v = sv
                .get("secs")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("sample {i} missing \"secs\" array"))?;
            let mut secs = Vec::with_capacity(secs_v.len());
            for x in secs_v {
                secs.push(
                    x.as_num()
                        .ok_or_else(|| format!("sample {i} has a non-numeric second"))?,
                );
            }
            samples.push(SampleSet {
                algorithm: str_field(sv, "algorithm")?,
                workload: str_field(sv, "workload")?,
                kernel_mode: str_field(sv, "kernel_mode")?,
                secs,
            });
        }
        Ok(Entry {
            schema,
            kind: str_field(v, "kind")?,
            label: str_field(v, "label")?,
            timestamp: num_field(v, "timestamp")? as u64,
            git_sha: str_field(v, "git_sha")?,
            git_dirty: bool_field(v, "git_dirty")?,
            host,
            threads: num_field(v, "threads")? as usize,
            kernel_mode: str_field(v, "kernel_mode")?,
            // Added after schema 1 shipped; the heap allocator was the
            // only path before, so absent reads as "portable".
            alloc_policy: opt_str_field(v, "alloc_policy", "portable"),
            retried_trials: num_field(v, "retried_trials")? as u64,
            failed_trials: num_field(v, "failed_trials")? as u64,
            // Added after schema 1 shipped; old lines simply lack them.
            failed_resource_trials: opt_num_field(v, "failed_resource_trials") as u64,
            failed_io_trials: opt_num_field(v, "failed_io_trials") as u64,
            samples,
        })
    }

    /// Short human identity for tables and messages.
    pub fn describe(&self) -> String {
        let sha = self.git_sha.get(..12).unwrap_or(&self.git_sha);
        format!(
            "{}{} [{}{}] t={}",
            sha,
            if self.git_dirty { "+dirty" } else { "" },
            self.kind,
            if self.label.is_empty() {
                String::new()
            } else {
                format!(":{}", self.label)
            },
            self.timestamp
        )
    }
}

/// Append `entry` as one line, creating the file (and parent directory)
/// on first use. Appends are atomic at the line level on POSIX because
/// the file is opened in append mode and the line is written in one
/// call.
pub fn append(path: &Path, entry: &Entry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = entry.to_json();
    line.push('\n');
    f.write_all(line.as_bytes())
}

/// Read every entry in the ledger, oldest first. Blank lines are
/// skipped; a malformed line is an error (the ledger is append-only and
/// machine-written, so corruption should be loud, not silent).
pub fn read_all(path: &Path) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read ledger {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            jsonv::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        entries.push(
            Entry::from_value(&v).map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?,
        );
    }
    Ok(entries)
}

/// `(sha, dirty)` of the enclosing git work tree; `("unknown", true)`
/// when git is unavailable — unknown provenance is treated as dirty so
/// it never silently becomes a baseline.
pub fn git_provenance() -> (String, bool) {
    let sha = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    match sha {
        Some(sha) => {
            let dirty = Command::new("git")
                .args(["status", "--porcelain", "--untracked-files=no"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| !o.stdout.is_empty())
                .unwrap_or(true);
            (sha, dirty)
        }
        None => ("unknown".to_string(), true),
    }
}

/// The process-level kernel mode as a ledger string.
pub fn kernel_mode_name() -> String {
    match mmjoin_util::kernels::effective_mode() {
        mmjoin_util::kernels::KernelMode::Simd => "simd",
        mmjoin_util::kernels::KernelMode::Portable => "portable",
        mmjoin_util::kernels::KernelMode::Auto => "auto",
    }
    .to_string()
}

/// Group a drained harness sample log into `SampleSet`s: repeats of the
/// same trial label become one raw vector, insertion-ordered.
pub fn sample_sets_from_log(log: Vec<(String, f64)>, workload: &str) -> Vec<SampleSet> {
    let mode = kernel_mode_name();
    let mut sets: Vec<SampleSet> = Vec::new();
    for (label, secs) in log {
        match sets.iter_mut().find(|s| s.algorithm == label) {
            Some(s) => s.secs.push(secs),
            None => sets.push(SampleSet {
                algorithm: label,
                workload: workload.to_string(),
                kernel_mode: mode.clone(),
                secs: vec![secs],
            }),
        }
    }
    sets
}

/// A finite f64 as a JSON number; non-finite values (which a wall-clock
/// sample never is, but a division downstream could be) become null.
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// A numeric field that older ledger lines legitimately lack.
fn opt_num_field(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_num).unwrap_or(0.0)
}

/// A string field that older ledger lines legitimately lack.
fn opt_str_field(v: &Value, key: &str, default: &str) -> String {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or(default)
        .to_string()
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing boolean field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> Entry {
        Entry {
            schema: SCHEMA_VERSION,
            kind: "kernels".to_string(),
            label: String::new(),
            timestamp: 1_754_000_000,
            git_sha: "0123456789abcdef0123456789abcdef01234567".to_string(),
            git_dirty: false,
            host: Host {
                cpu_model: "Intel(R) Xeon(R) 😀 test".to_string(),
                threads_avail: 8,
                arch: "x86_64".to_string(),
                fingerprint: fingerprint_of("Intel(R) Xeon(R) 😀 test", 8, "x86_64"),
            },
            threads: 4,
            kernel_mode: "simd".to_string(),
            alloc_policy: "portable".to_string(),
            retried_trials: 1,
            failed_trials: 0,
            failed_resource_trials: 0,
            failed_io_trials: 0,
            samples: vec![
                SampleSet {
                    algorithm: "PRO".to_string(),
                    workload: "quick".to_string(),
                    kernel_mode: "portable".to_string(),
                    secs: vec![0.5, 0.25, 0.125],
                },
                SampleSet {
                    algorithm: "partition".to_string(),
                    workload: "quick".to_string(),
                    kernel_mode: "simd".to_string(),
                    secs: vec![0.75],
                },
            ],
        }
    }

    #[test]
    fn entry_round_trips_through_jsonv() {
        let e = sample_entry();
        let line = e.to_json();
        let v = jsonv::parse(&line).expect("entry serializes as valid JSON");
        let back = Entry::from_value(&v).expect("entry deserializes");
        assert_eq!(e, back);
    }

    #[test]
    fn append_and_read_all() {
        let path = std::env::temp_dir().join(format!(
            "mmjoin-ledger-test-{}-{:p}.jsonl",
            std::process::id(),
            &DEFAULT_PATH
        ));
        let _ = std::fs::remove_file(&path);
        let mut a = sample_entry();
        let mut b = sample_entry();
        b.timestamp += 10;
        b.kind = "repro".to_string();
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        let read = read_all(&path).unwrap();
        assert_eq!(read.len(), 2);
        a.schema = SCHEMA_VERSION;
        assert_eq!(read[0], a);
        assert_eq!(read[1], b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_spill_lines_read_with_zero_cause_counts() {
        // A line written before the failure-cause split has no
        // failed_resource_trials / failed_io_trials keys.
        let e = sample_entry();
        let line = e.to_json().replace(
            "\"failed_resource_trials\": 0, \"failed_io_trials\": 0, ",
            "",
        );
        assert!(!line.contains("failed_resource_trials"));
        let v = jsonv::parse(&line).unwrap();
        let back = Entry::from_value(&v).unwrap();
        assert_eq!(back.failed_resource_trials, 0);
        assert_eq!(back.failed_io_trials, 0);
        assert_eq!(back, e);
    }

    #[test]
    fn pre_alloc_lines_read_as_portable() {
        let e = sample_entry();
        let line = e.to_json().replace("\"alloc_policy\": \"portable\", ", "");
        assert!(!line.contains("alloc_policy"));
        let v = jsonv::parse(&line).unwrap();
        let back = Entry::from_value(&v).unwrap();
        assert_eq!(back.alloc_policy, "portable");
        assert_eq!(back, e);
    }

    #[test]
    fn rejects_future_schema() {
        let mut e = sample_entry();
        e.schema = SCHEMA_VERSION + 1;
        let v = jsonv::parse(&e.to_json()).unwrap();
        assert!(Entry::from_value(&v).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let f = fingerprint_of("cpu", 8, "x86_64");
        assert_eq!(f, fingerprint_of("cpu", 8, "x86_64"));
        assert_eq!(f.len(), 16);
        assert_ne!(f, fingerprint_of("cpu", 16, "x86_64"));
        assert_ne!(f, fingerprint_of("other", 8, "x86_64"));
    }

    #[test]
    fn sample_sets_group_by_label() {
        let log = vec![
            ("PRO".to_string(), 0.5),
            ("NOP".to_string(), 0.75),
            ("PRO".to_string(), 0.25),
        ];
        let sets = sample_sets_from_log(log, "repro");
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].algorithm, "PRO");
        assert_eq!(sets[0].secs, vec![0.5, 0.25]);
        assert_eq!(sets[1].algorithm, "NOP");
        assert_eq!(sets[0].workload, "repro");
    }

    #[test]
    fn git_provenance_never_panics() {
        let (sha, _dirty) = git_provenance();
        assert!(!sha.is_empty());
    }
}
