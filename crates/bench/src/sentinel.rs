//! The statistical regression sentinel: compares two run-ledger entries
//! cell by cell and issues a machine-checkable verdict.
//!
//! Cells join on `(algorithm, workload, kernel_mode)`; the entries
//! themselves must agree on thread count and host fingerprint (override
//! with `allow_cross_host` — verdicts are then advisory, and say so).
//! A cell only counts as a **confirmed regression** when the median
//! slowdown exceeds the threshold *and* the raw repeat vectors back it
//! up: either a Mann-Whitney U test at `alpha`, or — because tiny
//! repeat counts bound the U test's p-value away from any usable alpha
//! (n = 3 vs 3 cannot reach 0.05) — disjoint bootstrap confidence
//! intervals of the median. A slowdown past the threshold that clears
//! neither bar is reported as *suspect* but does not fail the check.
//! See DESIGN.md §11 for the verdict JSON schema.

use mmjoin_core::{Algorithm, Join, JoinResult};
use mmjoin_util::stats;

use crate::harness::{json_escape, HarnessOpts, Table};
use crate::jsonv::Value;
use crate::ledger::{json_num, Entry, SampleSet};

/// Knobs of one comparison.
#[derive(Clone, Debug)]
pub struct CompareOpts {
    /// Median slowdown that counts as a regression (0.05 = 5%).
    pub threshold: f64,
    /// Mann-Whitney significance level.
    pub alpha: f64,
    /// Compare entries from different hosts / thread counts anyway.
    pub allow_cross_host: bool,
    /// Bootstrap resample count per cell.
    pub boot_iters: usize,
    /// Bootstrap confidence level.
    pub confidence: f64,
    /// Bootstrap seed — fixed so re-running a verdict reproduces it.
    pub boot_seed: u64,
}

impl Default for CompareOpts {
    fn default() -> Self {
        CompareOpts {
            threshold: 0.05,
            alpha: 0.05,
            allow_cross_host: false,
            boot_iters: 2000,
            confidence: 0.95,
            boot_seed: 0x5EED_1E06,
        }
    }
}

/// Outcome of one joined cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Within threshold (or faster without clearing the improvement bar).
    Ok,
    /// Median speedup past the threshold, statistically backed.
    Improved,
    /// Median slowdown past the threshold but not statistically backed —
    /// rerun with more repeats before believing it.
    Suspect,
    /// Confirmed regression: slowdown past the threshold, statistically
    /// backed. Fails the check.
    Regressed,
}

impl CellStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Improved => "improved",
            CellStatus::Suspect => "suspect",
            CellStatus::Regressed => "regressed",
        }
    }
}

/// One joined `(algorithm, workload, kernel_mode)` comparison.
#[derive(Clone, Debug)]
pub struct Cell {
    pub algorithm: String,
    pub workload: String,
    pub kernel_mode: String,
    pub n_baseline: usize,
    pub n_candidate: usize,
    pub median_baseline_s: f64,
    pub median_candidate_s: f64,
    /// `median_candidate / median_baseline - 1` (positive = slower).
    pub delta: f64,
    /// Two-sided Mann-Whitney p over the raw vectors; `None` when either
    /// side has fewer than two samples.
    pub p_value: Option<f64>,
    pub ci_baseline_s: (f64, f64),
    pub ci_candidate_s: (f64, f64),
    pub status: CellStatus,
}

impl Cell {
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.algorithm, self.workload, self.kernel_mode)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"algorithm\": {}, \"workload\": {}, \"kernel_mode\": {}, \
             \"n_baseline\": {}, \"n_candidate\": {}, \
             \"median_baseline_s\": {}, \"median_candidate_s\": {}, \"delta\": {}, \
             \"p_value\": {}, \"ci_baseline_s\": [{}, {}], \"ci_candidate_s\": [{}, {}], \
             \"status\": {}}}",
            json_escape(&self.algorithm),
            json_escape(&self.workload),
            json_escape(&self.kernel_mode),
            self.n_baseline,
            self.n_candidate,
            json_num(self.median_baseline_s),
            json_num(self.median_candidate_s),
            json_num(self.delta),
            self.p_value.map_or("null".to_string(), json_num),
            json_num(self.ci_baseline_s.0),
            json_num(self.ci_baseline_s.1),
            json_num(self.ci_candidate_s.0),
            json_num(self.ci_candidate_s.1),
            json_escape(self.status.as_str())
        )
    }
}

/// The full result of comparing two entries.
#[derive(Clone, Debug)]
pub struct Verdict {
    pub baseline: Entry,
    pub candidate: Entry,
    pub threshold: f64,
    pub alpha: f64,
    /// True when host/thread guards were overridden.
    pub cross_host: bool,
    pub cells: Vec<Cell>,
    /// Join keys present only in the baseline entry.
    pub unmatched_baseline: Vec<String>,
    /// Join keys present only in the candidate entry.
    pub unmatched_candidate: Vec<String>,
}

impl Verdict {
    /// The confirmed regressions (the cells that fail a check).
    pub fn regressions(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Regressed)
            .collect()
    }

    pub fn suspects(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Suspect)
            .collect()
    }

    /// The machine verdict documented in DESIGN.md §11.
    pub fn to_json(&self) -> String {
        let entry_meta = |e: &Entry| {
            format!(
                "{{\"git_sha\": {}, \"git_dirty\": {}, \"timestamp\": {}, \"kind\": {}, \
                 \"label\": {}, \"threads\": {}, \"host_fingerprint\": {}}}",
                json_escape(&e.git_sha),
                e.git_dirty,
                e.timestamp,
                json_escape(&e.kind),
                json_escape(&e.label),
                e.threads,
                json_escape(&e.host.fingerprint)
            )
        };
        let cells: Vec<String> = self.cells.iter().map(Cell::to_json).collect();
        let regressions: Vec<String> = self.regressions().iter().map(|c| c.to_json()).collect();
        let str_arr = |keys: &[String]| {
            let items: Vec<String> = keys.iter().map(|k| json_escape(k)).collect();
            format!("[{}]", items.join(", "))
        };
        format!(
            "{{\"schema\": 1, \"baseline\": {}, \"candidate\": {}, \
             \"threshold\": {}, \"alpha\": {}, \"cross_host\": {}, \
             \"regressions\": [{}], \"cells\": [{}], \
             \"unmatched_baseline\": {}, \"unmatched_candidate\": {}}}",
            entry_meta(&self.baseline),
            entry_meta(&self.candidate),
            json_num(self.threshold),
            json_num(self.alpha),
            self.cross_host,
            regressions.join(", "),
            cells.join(", "),
            str_arr(&self.unmatched_baseline),
            str_arr(&self.unmatched_candidate)
        )
    }

    /// Human-readable comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "sentinel: {} -> {}",
                self.baseline.describe(),
                self.candidate.describe()
            ),
            &["cell", "n", "base ms", "cand ms", "delta", "p", "status"],
        );
        for c in &self.cells {
            t.row(vec![
                c.key(),
                format!("{}v{}", c.n_baseline, c.n_candidate),
                format!("{:.2}", c.median_baseline_s * 1e3),
                format!("{:.2}", c.median_candidate_s * 1e3),
                format!("{:+.1}%", c.delta * 100.0),
                c.p_value.map_or("n/a".to_string(), |p| format!("{p:.3}")),
                c.status.as_str().to_string(),
            ]);
        }
        for k in &self.unmatched_baseline {
            t.note(format!("only in baseline: {k}"));
        }
        for k in &self.unmatched_candidate {
            t.note(format!("only in candidate: {k}"));
        }
        if self.cross_host {
            t.note("cross-host/thread comparison forced: verdicts are advisory");
        }
        t
    }
}

/// Compare `candidate` against `baseline`. Fails fast on host or thread
/// mismatch unless `opts.allow_cross_host`; an empty join (no shared
/// cells) is also an error, since a verdict over nothing would
/// otherwise read as a pass.
pub fn compare_entries(
    baseline: &Entry,
    candidate: &Entry,
    opts: &CompareOpts,
) -> Result<Verdict, String> {
    let mut cross = false;
    if baseline.host.fingerprint != candidate.host.fingerprint {
        if !opts.allow_cross_host {
            return Err(format!(
                "host fingerprints differ ({} [{}] vs {} [{}]); numbers from different \
                 machines are not comparable — pass --allow-cross-host to force",
                baseline.host.fingerprint,
                baseline.host.cpu_model,
                candidate.host.fingerprint,
                candidate.host.cpu_model
            ));
        }
        cross = true;
    }
    if baseline.threads != candidate.threads {
        if !opts.allow_cross_host {
            return Err(format!(
                "thread counts differ ({} vs {}); pass --allow-cross-host to force",
                baseline.threads, candidate.threads
            ));
        }
        cross = true;
    }
    if baseline.alloc_policy != candidate.alloc_policy {
        if !opts.allow_cross_host {
            return Err(format!(
                "alloc policies differ ({:?} vs {:?}); huge pages and NUMA placement \
                 shift every memory-bound cell — pass --allow-cross-host to force",
                baseline.alloc_policy, candidate.alloc_policy
            ));
        }
        cross = true;
    }
    let mut cells = Vec::new();
    let mut unmatched_baseline = Vec::new();
    for a in &baseline.samples {
        let Some(b) = candidate.samples.iter().find(|b| same_key(a, b)) else {
            unmatched_baseline.push(a.key());
            continue;
        };
        cells.push(judge(a, b, opts));
    }
    let unmatched_candidate: Vec<String> = candidate
        .samples
        .iter()
        .filter(|b| !baseline.samples.iter().any(|a| same_key(a, b)))
        .map(SampleSet::key)
        .collect();
    if cells.is_empty() {
        return Err(format!(
            "entries share no (algorithm, workload, kernel_mode) cells \
             ({} baseline-only, {} candidate-only)",
            unmatched_baseline.len(),
            unmatched_candidate.len()
        ));
    }
    Ok(Verdict {
        baseline: baseline.clone(),
        candidate: candidate.clone(),
        threshold: opts.threshold,
        alpha: opts.alpha,
        cross_host: cross,
        cells,
        unmatched_baseline,
        unmatched_candidate,
    })
}

fn same_key(a: &SampleSet, b: &SampleSet) -> bool {
    a.algorithm == b.algorithm && a.workload == b.workload && a.kernel_mode == b.kernel_mode
}

/// Judge one joined cell under `opts`.
fn judge(a: &SampleSet, b: &SampleSet, opts: &CompareOpts) -> Cell {
    let median_a = stats::median(&a.secs);
    let median_b = stats::median(&b.secs);
    let delta = median_b / median_a.max(1e-12) - 1.0;
    let p_value = if a.secs.len() >= 2 && b.secs.len() >= 2 {
        Some(stats::mann_whitney(&a.secs, &b.secs).p)
    } else {
        None
    };
    let ci_a =
        stats::bootstrap_median_ci(&a.secs, opts.boot_iters, opts.confidence, opts.boot_seed);
    let ci_b =
        stats::bootstrap_median_ci(&b.secs, opts.boot_iters, opts.confidence, opts.boot_seed);
    let significant = p_value.is_some_and(|p| p <= opts.alpha);
    // A single observation has a degenerate (point) bootstrap CI; two
    // points always "separate", which is no evidence at all. CI-based
    // confirmation needs at least two repeats on both sides.
    let resampled = a.secs.len() >= 2 && b.secs.len() >= 2;
    let status = if delta > opts.threshold {
        // Slower beyond threshold: confirmed only when the distributions
        // separate (U test, or disjoint bootstrap CIs in this direction).
        if significant || (resampled && ci_b.0 > ci_a.1) {
            CellStatus::Regressed
        } else {
            CellStatus::Suspect
        }
    } else if delta < -opts.threshold && (significant || (resampled && ci_b.1 < ci_a.0)) {
        CellStatus::Improved
    } else {
        CellStatus::Ok
    };
    Cell {
        algorithm: a.algorithm.clone(),
        workload: a.workload.clone(),
        kernel_mode: a.kernel_mode.clone(),
        n_baseline: a.secs.len(),
        n_candidate: b.secs.len(),
        median_baseline_s: median_a,
        median_candidate_s: median_b,
        delta,
        p_value,
        ci_baseline_s: ci_a,
        ci_candidate_s: ci_b,
        status,
    }
}

/// Validate a verdict document (re-parsed through `jsonv`) against the
/// schema documented in DESIGN.md §11. Returns every violation found —
/// the self-check the `sentinel` bin runs before trusting its own
/// output, and the contract external tooling can rely on.
pub fn validate_verdict(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if v.get("schema").and_then(Value::as_num) != Some(1.0) {
        errs.push("verdict: schema must be 1".to_string());
    }
    for side in ["baseline", "candidate"] {
        match v.get(side) {
            Some(m) => {
                for key in ["git_sha", "kind", "label", "host_fingerprint"] {
                    if m.get(key).and_then(Value::as_str).is_none() {
                        errs.push(format!("verdict: {side}.{key} missing string"));
                    }
                }
                for key in ["timestamp", "threads"] {
                    if m.get(key).and_then(Value::as_num).is_none() {
                        errs.push(format!("verdict: {side}.{key} missing number"));
                    }
                }
                if m.get("git_dirty").and_then(Value::as_bool).is_none() {
                    errs.push(format!("verdict: {side}.git_dirty missing bool"));
                }
            }
            None => errs.push(format!("verdict: missing {side:?}")),
        }
    }
    for key in ["threshold", "alpha"] {
        if v.get(key).and_then(Value::as_num).is_none() {
            errs.push(format!("verdict: missing numeric {key:?}"));
        }
    }
    if v.get("cross_host").and_then(Value::as_bool).is_none() {
        errs.push("verdict: missing bool \"cross_host\"".to_string());
    }
    for list in ["regressions", "cells"] {
        let Some(cells) = v.get(list).and_then(Value::as_arr) else {
            errs.push(format!("verdict: missing array {list:?}"));
            continue;
        };
        for (i, c) in cells.iter().enumerate() {
            let ctx = format!("verdict: {list}[{i}]");
            for key in ["algorithm", "workload", "kernel_mode", "status"] {
                if c.get(key).and_then(Value::as_str).is_none() {
                    errs.push(format!("{ctx}.{key} missing string"));
                }
            }
            for key in [
                "n_baseline",
                "n_candidate",
                "median_baseline_s",
                "median_candidate_s",
                "delta",
            ] {
                if c.get(key).and_then(Value::as_num).is_none() {
                    errs.push(format!("{ctx}.{key} missing number"));
                }
            }
            if !c.get("p_value").is_some_and(Value::is_num_or_null) {
                errs.push(format!("{ctx}.p_value must be number or null"));
            }
            for key in ["ci_baseline_s", "ci_candidate_s"] {
                let ok = c
                    .get(key)
                    .and_then(Value::as_arr)
                    .is_some_and(|a| a.len() == 2 && a.iter().all(|x| x.as_num().is_some()));
                if !ok {
                    errs.push(format!("{ctx}.{key} must be [lo, hi]"));
                }
            }
            if let Some(status) = c.get("status").and_then(Value::as_str) {
                if !["ok", "improved", "suspect", "regressed"].contains(&status) {
                    errs.push(format!("{ctx}.status unknown value {status:?}"));
                }
            }
            if list == "regressions" && c.get("status").and_then(Value::as_str) != Some("regressed")
            {
                errs.push(format!("{ctx} listed as regression but status differs"));
            }
        }
    }
    for key in ["unmatched_baseline", "unmatched_candidate"] {
        let ok = v
            .get(key)
            .and_then(Value::as_arr)
            .is_some_and(|a| a.iter().all(|x| x.as_str().is_some()));
        if !ok {
            errs.push(format!("verdict: {key} must be an array of strings"));
        }
    }
    errs
}

/// Select one entry by a CLI selector: `latest`, `prev`, `#N` (0-based
/// index, oldest first), or a git-sha prefix (newest entry wins).
pub fn select<'a>(entries: &'a [Entry], selector: &str) -> Result<&'a Entry, String> {
    if entries.is_empty() {
        return Err("ledger is empty".to_string());
    }
    match selector {
        "latest" => Ok(entries.last().unwrap()),
        "prev" => entries
            .len()
            .checked_sub(2)
            .map(|i| &entries[i])
            .ok_or_else(|| "ledger has no previous entry".to_string()),
        s if s.starts_with('#') => {
            let idx: usize = s[1..]
                .parse()
                .map_err(|e| format!("bad index selector {s:?}: {e}"))?;
            entries
                .get(idx)
                .ok_or_else(|| format!("index {idx} out of range (ledger has {})", entries.len()))
        }
        sha => entries
            .iter()
            .rev()
            .find(|e| e.git_sha.starts_with(sha))
            .ok_or_else(|| format!("no ledger entry with git sha prefix {sha:?}")),
    }
}

/// Pick the baseline for `check`: the newest entry *before* the
/// candidate (the ledger's last entry) that is comparable to it — same
/// kind, and same host fingerprint + threads + alloc policy unless
/// `allow_cross_host`. With a sha selector, the newest pre-candidate
/// entry of that sha.
pub fn baseline_for<'a>(
    entries: &'a [Entry],
    candidate_idx: usize,
    selector: &str,
    allow_cross_host: bool,
) -> Result<&'a Entry, String> {
    let candidate = &entries[candidate_idx];
    let compatible = |e: &Entry| {
        e.kind == candidate.kind
            && (allow_cross_host
                || (e.host.fingerprint == candidate.host.fingerprint
                    && e.threads == candidate.threads
                    && e.alloc_policy == candidate.alloc_policy))
    };
    let pool = &entries[..candidate_idx];
    let found = match selector {
        "latest" => pool.iter().rev().find(|e| compatible(e)),
        sha => pool
            .iter()
            .rev()
            .find(|e| e.git_sha.starts_with(sha) && compatible(e)),
    };
    found.ok_or_else(|| {
        format!(
            "no comparable baseline (selector {selector:?}, kind {:?}, host {}) \
             among the {} earlier entries",
            candidate.kind, candidate.host.fingerprint, candidate_idx
        )
    })
}

/// Collect raw end-to-end repeat vectors for `sentinel record`: `reps`
/// timed runs per algorithm under the process kernel mode, after one
/// warm-up run (pool spin-up, page faults).
pub fn sample_e2e(
    opts: &HarnessOpts,
    algorithms: &[Algorithm],
    reps: usize,
    quick: bool,
) -> Vec<SampleSet> {
    let (r_m, s_m) = if quick { (2, 8) } else { (16, 64) };
    let (r, s) = opts.workload(r_m, s_m, 0x5E17);
    let mode = crate::ledger::kernel_mode_name();
    let workload = if quick { "quick" } else { "full" };
    algorithms
        .iter()
        .map(|&alg| {
            let run = || -> JoinResult {
                Join::new(alg)
                    .with_threads(opts.threads)
                    .with_simulate(false)
                    .run(&r, &s)
                    .expect("join failed")
            };
            run(); // warm-up
            let secs: Vec<f64> = (0..reps.max(1))
                .map(|_| {
                    let start = std::time::Instant::now();
                    run();
                    start.elapsed().as_secs_f64()
                })
                .collect();
            SampleSet {
                algorithm: alg.name().to_string(),
                workload: workload.to_string(),
                kernel_mode: mode.clone(),
                secs,
            }
        })
        .collect()
}

/// Parse a threshold argument: `5%`, `0.05`, or `5` (percent when > 1
/// or suffixed, fraction otherwise).
pub fn parse_threshold(s: &str) -> Result<f64, String> {
    let (text, percent) = match s.strip_suffix('%') {
        Some(t) => (t, true),
        None => (s, false),
    };
    let v: f64 = text
        .trim()
        .parse()
        .map_err(|e| format!("bad threshold {s:?}: {e}"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("threshold {s:?} must be a non-negative number"));
    }
    Ok(if percent || v > 1.0 { v / 100.0 } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_spellings() {
        assert_eq!(parse_threshold("5%").unwrap(), 0.05);
        assert_eq!(parse_threshold("0.05").unwrap(), 0.05);
        assert_eq!(parse_threshold("5").unwrap(), 0.05);
        assert_eq!(parse_threshold("0.5").unwrap(), 0.5);
        assert!(parse_threshold("-1").is_err());
        assert!(parse_threshold("x").is_err());
    }
}
