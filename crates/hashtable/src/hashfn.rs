//! Hash functions over 4-byte join keys.
//!
//! The study fixes the identity function modulo table size for all hash
//! joins ("Since the build relation has dense primary keys, we use the
//! identity hash function modulo the hash table size", Section 7.1) —
//! that is [`IdentityHash`]. Lang et al. additionally evaluated Murmur,
//! CRC and multiplicative hashing; we ship those too and ablate them in
//! the extra `hashfn` bench.

use mmjoin_util::tuple::Key;

/// A stateless hash function over keys. Implementations must be cheap to
/// copy (they are passed by value into hot loops).
pub trait KeyHash: Copy + Send + Sync + 'static {
    /// Full-width 32-bit hash; callers reduce modulo a power of two.
    fn hash(self, key: Key) -> u32;

    /// Reduce to a table index given a power-of-two mask.
    #[inline(always)]
    fn index(self, key: Key, mask: u32) -> u32 {
        self.hash(key) & mask
    }
}

/// Identity: dense keys spread perfectly over a power-of-two table.
#[derive(Copy, Clone, Debug, Default)]
pub struct IdentityHash;

impl KeyHash for IdentityHash {
    #[inline(always)]
    fn hash(self, key: Key) -> u32 {
        key
    }
}

/// Multiplicative (Fibonacci) hashing: `key * 2654435761 >> shift`-style.
/// We return the full product and let the caller mask; for masked
/// reduction the *high* bits carry the mixing, so we fold them down.
#[derive(Copy, Clone, Debug, Default)]
pub struct MultiplicativeHash;

impl KeyHash for MultiplicativeHash {
    #[inline(always)]
    fn hash(self, key: Key) -> u32 {
        let x = key.wrapping_mul(2_654_435_761);
        x ^ (x >> 16)
    }
}

/// MurmurHash3 32-bit finalizer — full avalanche.
#[derive(Copy, Clone, Debug, Default)]
pub struct MurmurHash;

impl KeyHash for MurmurHash {
    #[inline(always)]
    fn hash(self, key: Key) -> u32 {
        let mut h = key;
        h ^= h >> 16;
        h = h.wrapping_mul(0x85EB_CA6B);
        h ^= h >> 13;
        h = h.wrapping_mul(0xC2B2_AE35);
        h ^ (h >> 16)
    }
}

/// CRC32-C (Castagnoli) over the 4 key bytes, bitwise (portable — the
/// paper's comparators use the SSE4.2 `crc32` instruction; the function
/// computed is identical).
#[derive(Copy, Clone, Debug, Default)]
pub struct CrcHash;

impl KeyHash for CrcHash {
    #[inline]
    fn hash(self, key: Key) -> u32 {
        const POLY: u32 = 0x82F6_3B78; // reflected CRC-32C polynomial
        let mut crc = !0u32 ^ key;
        for _ in 0..32 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
        !crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread<H: KeyHash>(h: H, mask: u32) -> usize {
        // Count distinct buckets hit by 1024 dense keys.
        let mut seen = std::collections::HashSet::new();
        for k in 1..=1024u32 {
            seen.insert(h.index(k, mask));
        }
        seen.len()
    }

    #[test]
    fn identity_is_identity() {
        assert_eq!(IdentityHash.hash(12345), 12345);
        assert_eq!(IdentityHash.index(0x1_0007, 0xFFFF), 7);
    }

    #[test]
    fn dense_keys_spread_perfectly_under_identity() {
        assert_eq!(spread(IdentityHash, 1023), 1024);
        assert_eq!(spread(IdentityHash, 2047), 1024);
    }

    #[test]
    fn mixing_hashes_spread_dense_keys() {
        // A good mixer should hit a large fraction of 2048 buckets with
        // 1024 dense keys (~ 1 - e^{-0.5} ≈ 39% of buckets, i.e. ≥ 700
        // distinct).
        assert!(spread(MurmurHash, 2047) > 700);
        assert!(spread(MultiplicativeHash, 2047) > 700);
        assert!(spread(CrcHash, 2047) > 700);
    }

    #[test]
    fn crc_known_vector() {
        // CRC-32C of the 4 little-endian bytes 0x00000000 is 0x48674BC7.
        assert_eq!(CrcHash.hash(0), 0x4867_4BC7);
    }

    #[test]
    fn murmur_avalanche_bit_flip() {
        // Flipping one input bit should flip ~half the output bits.
        let a = MurmurHash.hash(0xDEAD_BEEF);
        let b = MurmurHash.hash(0xDEAD_BEEE);
        let flipped = (a ^ b).count_ones();
        assert!((8..=24).contains(&flipped), "flipped {flipped}");
    }

    #[test]
    fn deterministic() {
        for k in [0u32, 1, 7, u32::MAX] {
            assert_eq!(MurmurHash.hash(k), MurmurHash.hash(k));
            assert_eq!(CrcHash.hash(k), CrcHash.hash(k));
            assert_eq!(MultiplicativeHash.hash(k), MultiplicativeHash.hash(k));
        }
    }
}
