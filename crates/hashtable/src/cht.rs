//! Concise Hash Table (CHT) — Barber et al., "Memory-Efficient Hash
//! Joins" (PVLDB 2014); the table behind the paper's CHTJ join.
//!
//! Components (Section 3.2 of the study):
//! 1. a dense array `A` of all `n` inserted tuples with *no* empty slots,
//! 2. a hash function mapping keys into `8·n` bitmap positions,
//! 3. a bitmap of `8·n` bits marking occupied positions,
//! 4. a running population count, physically interleaved with the bitmap,
//!    so `rank(pos)` (= dense array index) costs one popcount.
//!
//! Collisions are resolved by probing a bounded window of positions; keys
//! that find no free bit within the window go to a small overflow table.
//! The structure is bulkloaded once, then read-only — ideal for joins.
//!
//! # Parallel bulkload
//!
//! Like the paper's CHTJ, the build input is partitioned by hash prefix so
//! that every thread owns a disjoint, contiguous *region* of the bitmap
//! and a disjoint, contiguous range of the dense array; no synchronization
//! is needed. Collision probing wraps around *within* a region, which
//! keeps regions truly independent (lookups reproduce the same wrapping).

use std::sync::Mutex;

use mmjoin_util::alloc::AlignedBuf;
use mmjoin_util::kernels;
use mmjoin_util::next_pow2;
use mmjoin_util::pool::{broadcast_map, ScopedPool, WorkerPool};
use mmjoin_util::tuple::{Key, Payload, Tuple};

use crate::hashfn::{KeyHash, MultiplicativeHash};
use crate::linear::StLinearTable;
use crate::PROBE_GROUP;

/// Bitmap positions per inserted tuple (the "8" in `8·n`).
const POSITIONS_PER_TUPLE: usize = 8;

/// Maximum probes inside a collision window before spilling to the
/// overflow table.
const PROBE_WINDOW: usize = 8;

/// One 64-bit bitmap group with the rank of its first position
/// interleaved (the paper's bitmap/PC interleaving, at 64-bit granularity).
#[derive(Copy, Clone, Debug, Default)]
struct Group {
    bits: u64,
    /// Number of set bits in all preceding groups.
    prefix: u32,
}

/// The concise hash table.
///
/// The default hash is multiplicative, not identity: with identity
/// hashing, dense keys `1..=n` would collapse into the lowest eighth of
/// the `8n`-position bitmap, serializing the region-parallel bulkload.
/// (Barber et al. likewise hash into the bitmap.)
pub struct ConciseHashTable<H: KeyHash = MultiplicativeHash> {
    groups: AlignedBuf<Group>,
    array: AlignedBuf<Tuple>,
    overflow: StLinearTable<H>,
    overflow_len: usize,
    /// Bitmap positions, power of two.
    positions: usize,
    /// log2 of positions per region.
    region_shift: u32,
    hash: H,
}

impl<H: KeyHash + Default> ConciseHashTable<H> {
    /// Bulkload from `tuples` using `threads` worker threads (legacy
    /// entry point: scoped threads; prefer [`Self::build_on`]).
    pub fn build(tuples: &[Tuple], threads: usize) -> Self {
        Self::build_on(tuples, &ScopedPool::new(threads))
    }

    /// Bulkload from `tuples` on a worker pool.
    pub fn build_on(tuples: &[Tuple], pool: &dyn WorkerPool) -> Self {
        let n = tuples.len();
        let positions = next_pow2((n * POSITIONS_PER_TUPLE).max(64));
        let groups_len = positions / 64;
        let threads = pool.workers().clamp(1, groups_len.max(1));
        // Regions: one contiguous group range per thread; each must hold
        // at least one probe window.
        let regions = threads;
        let hash = H::default();
        let mask = (positions - 1) as u32;
        let region_size = positions / regions.max(1);
        // Regions must be a power-of-two size for shift math; fall back to
        // one region if the division is not exact.
        let (regions, region_shift) = if region_size.is_power_of_two()
            && positions.is_multiple_of(regions)
            && region_size >= 64
        {
            (regions, region_size.trailing_zeros())
        } else {
            let rs = next_pow2(region_size.max(64));
            let rs = rs.min(positions);
            (positions / rs, rs.trailing_zeros())
        };

        // Scatter tuples by region of their home position.
        let mut region_tuples: Vec<Vec<Tuple>> = vec![Vec::new(); regions];
        for &t in tuples {
            let pos = hash.index(t.key, mask) as usize;
            region_tuples[pos >> region_shift].push(t);
        }

        // Phase 1 (parallel per region): claim bits, record positions,
        // collect overflow.
        // Group::default() is all-zero, so the policy-aware zeroed
        // buffer starts every group empty.
        let mut groups = AlignedBuf::<Group>::zeroed(groups_len);
        let region_groups = (1usize << region_shift) / 64;
        let mut placed: Vec<Vec<(u32, Tuple)>> = Vec::with_capacity(regions);
        let mut overflowed: Vec<Vec<Tuple>> = Vec::with_capacity(regions);
        {
            // Hand each worker its disjoint `&mut [Group]` region through a
            // Mutex slot: the pool's broadcast closure is `Fn`, so exclusive
            // chunks cannot be moved in directly.
            let mut group_chunks: Vec<Mutex<Option<&mut [Group]>>> = Vec::with_capacity(regions);
            let mut rest = groups.as_mut_slice();
            for _ in 0..regions {
                let (head, tail) = rest.split_at_mut(region_groups);
                group_chunks.push(Mutex::new(Some(head)));
                rest = tail;
            }
            let region_tuples = &region_tuples;
            let results = broadcast_map(pool, regions, |r| {
                let grp = group_chunks[r].lock().unwrap().take().unwrap();
                claim_region_bits(grp, &region_tuples[r], hash, mask, region_shift, r)
            });
            for (p, o) in results {
                placed.push(p);
                overflowed.push(o);
            }
        }

        // Phase 2 (serial): global prefix sums over groups.
        let mut running = 0u32;
        for g in &mut groups {
            g.prefix = running;
            running += g.bits.count_ones();
        }
        let stored = running as usize;

        // Phase 3 (parallel per region): place tuples into the dense array
        // at their rank. Each region owns the contiguous array range
        // [prefix(first group), prefix(first group) + region bit count).
        let mut array = AlignedBuf::<Tuple>::zeroed(stored);
        {
            type RegionSlice<'a> = Mutex<Option<(&'a mut [Tuple], u32)>>;
            let mut slices: Vec<RegionSlice> = Vec::with_capacity(regions);
            let mut rest = array.as_mut_slice();
            for r in 0..regions {
                let start = groups[r * region_groups].prefix;
                let end = if r + 1 < regions {
                    groups[(r + 1) * region_groups].prefix
                } else {
                    stored as u32
                };
                let (head, tail) = rest.split_at_mut((end - start) as usize);
                slices.push(Mutex::new(Some((head, start))));
                rest = tail;
            }
            let groups_ref = &groups;
            let placed_ref = &placed;
            pool.broadcast(&|r| {
                if r >= regions {
                    return;
                }
                let (slice, base) = slices[r].lock().unwrap().take().unwrap();
                for &(pos, t) in &placed_ref[r] {
                    let rank = rank_of(groups_ref, pos as usize);
                    slice[(rank - base) as usize] = t;
                }
            });
        }

        // Overflow table (serial; overflow is rare by construction).
        let all_overflow: Vec<Tuple> = overflowed.into_iter().flatten().collect();
        let mut overflow = StLinearTable::with_capacity(all_overflow.len().max(1));
        for &t in &all_overflow {
            overflow.insert(t);
        }

        ConciseHashTable {
            groups,
            array,
            overflow,
            overflow_len: all_overflow.len(),
            positions,
            region_shift,
            hash,
        }
    }
}

/// Claim bitmap bits for one region's tuples. Returns (claimed positions,
/// overflowed tuples).
fn claim_region_bits(
    grp: &mut [Group],
    tuples: &[Tuple],
    hash: impl KeyHash,
    mask: u32,
    region_shift: u32,
    region: usize,
) -> (Vec<(u32, Tuple)>, Vec<Tuple>) {
    let region_size = 1usize << region_shift;
    let region_base = region * region_size;
    let mut placed = Vec::with_capacity(tuples.len());
    let mut overflow = Vec::new();
    'tuples: for &t in tuples {
        let home = hash.index(t.key, mask) as usize;
        let local = home - region_base;
        for i in 0..PROBE_WINDOW {
            let pos = (local + i) & (region_size - 1);
            let g = pos / 64;
            let b = pos % 64;
            if grp[g].bits & (1 << b) == 0 {
                grp[g].bits |= 1 << b;
                placed.push(((region_base + pos) as u32, t));
                continue 'tuples;
            }
        }
        overflow.push(t);
    }
    (placed, overflow)
}

/// Dense-array index of the set bit at `pos`.
#[inline]
fn rank_of(groups: &[Group], pos: usize) -> u32 {
    let g = pos / 64;
    let b = pos % 64;
    let below = groups[g].bits & ((1u64 << b) - 1);
    groups[g].prefix + below.count_ones()
}

impl<H: KeyHash> ConciseHashTable<H> {
    /// Invoke `f` with every build payload matching `key`.
    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let mask = (self.positions - 1) as u32;
        let home = self.hash.index(key, mask) as usize;
        let region_size = 1usize << self.region_shift;
        let region_base = home & !(region_size - 1);
        let local = home - region_base;
        let mut window_full = true;
        for i in 0..PROBE_WINDOW {
            let pos = region_base + ((local + i) & (region_size - 1));
            let g = pos / 64;
            let b = pos % 64;
            if self.groups[g].bits & (1 << b) == 0 {
                window_full = false;
                // A later duplicate of `key` could still sit at a later
                // window slot only if this slot was free at its insert
                // time too — impossible (no deletes). Safe to stop.
                break;
            }
            let idx = rank_of(&self.groups, pos) as usize;
            let t = self.array[idx];
            if t.key == key {
                f(t.payload);
            }
        }
        if window_full && self.overflow_len > 0 {
            self.overflow.probe(key, f);
        }
    }

    /// Group-prefetched batch probe: hash a group of [`PROBE_GROUP`] keys
    /// and prefetch their home bitmap groups (the word whose bits and
    /// rank prefix every window walk starts from) one group ahead of
    /// resolution. The dense-array line is a second dependent miss that cannot
    /// be prefetched without the bitmap word; overlapping the first-level
    /// misses already halves the stall chain. `f` receives
    /// `(probe_tuple, build_payload)` per match, in probe order.
    pub fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], mut f: F) {
        if !kernels::simd_active() {
            for t in probes {
                self.probe(t.key, |p| f(t, p));
            }
            return;
        }
        let mask = (self.positions - 1) as u32;
        let mut chunks = probes.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        let prefetch = |g: &[Tuple]| {
            for t in g {
                let home = self.hash.index(t.key, mask) as usize;
                kernels::prefetch_read(&self.groups[home / 64]);
            }
        };
        prefetch(cur);
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                prefetch(g);
            }
            for t in cur {
                self.probe(t.key, |p| f(t, p));
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Number of tuples in the dense array (excludes overflow).
    pub fn dense_len(&self) -> usize {
        self.array.len()
    }

    /// Number of tuples that spilled into the overflow table.
    pub fn overflow_len(&self) -> usize {
        self.overflow_len
    }

    /// Total bytes held — the CHT's headline feature is that this is far
    /// smaller than a 50%-loaded open-addressing table.
    pub fn memory_bytes(&self) -> usize {
        self.groups.len() * std::mem::size_of::<Group>()
            + self.array.len() * std::mem::size_of::<Tuple>()
            + if self.overflow_len > 0 {
                self.overflow_len * 16
            } else {
                0
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::random_tuples;
    use crate::IdentityHash;

    fn reference(tuples: &[Tuple], key: Key) -> Vec<Payload> {
        let mut v: Vec<Payload> = tuples
            .iter()
            .filter(|t| t.key == key)
            .map(|t| t.payload)
            .collect();
        v.sort_unstable();
        v
    }

    fn check_against_reference(
        tuples: &[Tuple],
        probes: impl Iterator<Item = Key>,
        threads: usize,
    ) {
        let cht = ConciseHashTable::<MultiplicativeHash>::build(tuples, threads);
        assert_eq!(cht.dense_len() + cht.overflow_len(), tuples.len());
        for k in probes {
            let mut got = Vec::new();
            cht.probe(k, |p| got.push(p));
            got.sort_unstable();
            assert_eq!(got, reference(tuples, k), "key {k}");
        }
    }

    #[test]
    fn dense_keys_single_thread() {
        let tuples: Vec<Tuple> = (1..=1000u32).map(|k| Tuple::new(k, k + 5)).collect();
        check_against_reference(&tuples, 1..=1100u32, 1);
    }

    #[test]
    fn dense_keys_parallel_build() {
        let tuples: Vec<Tuple> = (1..=5000u32).map(|k| Tuple::new(k, k)).collect();
        for threads in [2, 4, 8] {
            check_against_reference(&tuples, 1..=5100u32, threads);
        }
    }

    #[test]
    fn random_duplicate_keys() {
        let tuples = random_tuples(2000, 400, 23);
        check_against_reference(&tuples, 1..=450u32, 4);
    }

    #[test]
    fn pathological_duplicates_overflow() {
        // 100 copies of one key can never fit an 8-probe window: most must
        // overflow, and all must be found.
        let tuples: Vec<Tuple> = (0..100u32).map(|i| Tuple::new(77, i)).collect();
        let cht = ConciseHashTable::<MultiplicativeHash>::build(&tuples, 2);
        assert!(cht.overflow_len() >= 100 - PROBE_WINDOW);
        let mut got = Vec::new();
        cht.probe(77, |p| got.push(p));
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn batch_kernels_match_scalar() {
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let tuples = random_tuples(3000, 600, 41);
        let cht = ConciseHashTable::<MultiplicativeHash>::build(&tuples, 2);
        let probes: Vec<Tuple> = (0..800u32).map(|i| Tuple::new(i % 650 + 1, i)).collect();
        let mut scalar = Vec::new();
        for p in &probes {
            cht.probe(p.key, |bp| scalar.push((p.payload, bp)));
        }
        for mode in [KernelMode::Portable, KernelMode::Simd] {
            with_mode(mode, || {
                let mut got = Vec::new();
                cht.probe_batch(&probes, |p, bp| got.push((p.payload, bp)));
                assert_eq!(got, scalar, "{mode:?}");
            });
        }
    }

    #[test]
    fn empty_build() {
        let cht = ConciseHashTable::<MultiplicativeHash>::build(&[], 4);
        let mut got = Vec::new();
        cht.probe(1, |p| got.push(p));
        assert!(got.is_empty());
    }

    #[test]
    fn identity_hash_clusters_but_stays_correct() {
        let tuples: Vec<Tuple> = (1..=3000u32).map(|k| Tuple::new(k, k * 2)).collect();
        let cht = ConciseHashTable::<IdentityHash>::build(&tuples, 4);
        for k in (1..=3000u32).step_by(7) {
            let mut got = Vec::new();
            cht.probe(k, |p| got.push(p));
            assert_eq!(got, vec![k * 2]);
        }
    }

    #[test]
    fn memory_is_concise() {
        // CHT must use far less memory than a 50%-loaded linear table
        // (16 bytes/tuple): around 8 (array) + ~2 (bitmap+prefix).
        let tuples: Vec<Tuple> = (1..=100_000u32).map(|k| Tuple::new(k, k)).collect();
        let cht = ConciseHashTable::<MultiplicativeHash>::build(&tuples, 4);
        let linear_bytes = 16 * 2 * 100_000 / 2; // next_pow2(2n) slots * 8B ≈ 16n..32n
        assert!(
            cht.memory_bytes() < linear_bytes,
            "cht {} vs linear {}",
            cht.memory_bytes(),
            linear_bytes
        );
    }

    #[test]
    fn rank_of_counts_correctly() {
        let mut groups = vec![Group::default(); 2];
        groups[0].bits = 0b1011; // ranks: pos0->0, pos1->1, pos3->2
        groups[0].prefix = 0;
        groups[1].bits = 0b1;
        groups[1].prefix = 3;
        assert_eq!(rank_of(&groups, 0), 0);
        assert_eq!(rank_of(&groups, 1), 1);
        assert_eq!(rank_of(&groups, 3), 2);
        assert_eq!(rank_of(&groups, 64), 3);
    }
}
