//! Array "hash tables" (Section 5.2, "Arrays").
//!
//! For dense, unique key domains (`ID INTEGER PRIMARY KEY AUTOINCREMENT`)
//! the key itself can index an array holding only the payload — no keys
//! stored, no collisions, one cache line touched per probe. This yields
//! the NOPA/PRA/CPRA/PRAiS variants.
//!
//! Presence is encoded with the payload sentinel [`EMPTY`]; payloads in
//! the study are row ids `< 2^31`, so `u32::MAX` is free. Appendix C
//! ("holes in the key range") uses the same structure over a domain `k`
//! times larger than the relation.

use std::sync::atomic::{AtomicU32, Ordering};

use mmjoin_util::alloc::AlignedBuf;
use mmjoin_util::kernels;
use mmjoin_util::tuple::{Key, Payload, Tuple};

use crate::{JoinTable, TableSpec, PROBE_GROUP};

/// Sentinel payload marking an unoccupied slot.
pub const EMPTY: u32 = u32::MAX;

/// Single-threaded array table for one co-partition join (PRA/CPRA).
///
/// Keys of a radix partition share their low `key_shift` bits, so
/// `key >> key_shift` indexes densely.
pub struct ArrayTable {
    payloads: AlignedBuf<u32>,
    key_shift: u32,
}

impl ArrayTable {
    pub fn new(array_len: usize, key_shift: u32) -> Self {
        ArrayTable {
            payloads: AlignedBuf::filled(array_len, EMPTY),
            key_shift,
        }
    }

    #[inline]
    fn slot(&self, key: Key) -> usize {
        (key >> self.key_shift) as usize
    }

    #[inline]
    pub fn insert(&mut self, t: Tuple) {
        debug_assert_ne!(t.payload, EMPTY, "payload sentinel collision");
        let s = self.slot(t.key);
        debug_assert_eq!(
            self.payloads[s], EMPTY,
            "array join requires unique keys (slot {s} taken)"
        );
        self.payloads[s] = t.payload;
    }

    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        if let Some(&p) = self.payloads.get(self.slot(key)) {
            if p != EMPTY {
                f(p);
            }
        }
    }

    /// Group-prefetched batch insert: prefetch the target slots of group
    /// `k+1` with write intent while storing group `k`. Same table state
    /// as inserting in order.
    pub fn insert_batch(&mut self, tuples: &[Tuple]) {
        if !kernels::simd_active() {
            for &t in tuples {
                self.insert(t);
            }
            return;
        }
        let mut chunks = tuples.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            if let Some(p) = self.payloads.get(self.slot(t.key)) {
                kernels::prefetch_write(p);
            }
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    if let Some(p) = self.payloads.get(self.slot(t.key)) {
                        kernels::prefetch_write(p);
                    }
                }
            }
            for &t in cur {
                self.insert(t);
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Group-prefetched batch probe. An array probe touches exactly one
    /// line, so prefetching group `k+1` while resolving group `k`
    /// overlaps the misses of random out-of-cache lookups. `f` receives
    /// `(probe_tuple, build_payload)` per match, in probe order.
    pub fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], mut f: F) {
        if !kernels::simd_active() {
            for t in probes {
                self.probe(t.key, |p| f(t, p));
            }
            return;
        }
        let mut chunks = probes.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            if let Some(p) = self.payloads.get(self.slot(t.key)) {
                kernels::prefetch_read(p);
            }
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    if let Some(p) = self.payloads.get(self.slot(t.key)) {
                        kernels::prefetch_read(p);
                    }
                }
            }
            for t in cur {
                self.probe(t.key, |p| f(t, p));
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// [`ArrayTable::insert`] with memory-access tracing (Table 4).
    pub fn insert_traced<T: mmjoin_util::trace::MemTracer>(&mut self, t: Tuple, tr: &mut T) {
        let s = self.slot(t.key);
        tr.ops(2);
        tr.write(&self.payloads[s] as *const u32 as usize, 4);
        self.payloads[s] = t.payload;
    }

    /// [`ArrayTable::probe`] with memory-access tracing (Table 4).
    pub fn probe_traced<T: mmjoin_util::trace::MemTracer, F: FnMut(Payload)>(
        &self,
        key: Key,
        tr: &mut T,
        mut f: F,
    ) {
        tr.ops(2);
        let s = self.slot(key);
        if let Some(&p) = self.payloads.get(s) {
            tr.read(&self.payloads[s] as *const u32 as usize, 4);
            if p != EMPTY {
                f(p);
            }
        }
    }
}

impl JoinTable for ArrayTable {
    fn with_spec(spec: &TableSpec) -> Self {
        ArrayTable::new(spec.array_len, spec.key_shift)
    }

    #[inline]
    fn insert(&mut self, t: Tuple) {
        ArrayTable::insert(self, t)
    }

    #[inline]
    fn probe<F: FnMut(Payload)>(&self, key: Key, f: F) {
        ArrayTable::probe(self, key, f)
    }

    #[inline]
    fn insert_batch(&mut self, tuples: &[Tuple]) {
        ArrayTable::insert_batch(self, tuples)
    }

    #[inline]
    fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], _unique: bool, f: F) {
        // Array slots hold at most one payload; unique is implied.
        ArrayTable::probe_batch(self, probes, f)
    }

    fn memory_bytes(&self) -> usize {
        self.payloads.len() * 4
    }
}

/// Concurrent global array table (NOPA).
///
/// The build relation's keys are unique, so concurrent inserts target
/// distinct slots; relaxed atomic stores suffice (the build/probe barrier
/// publishes them).
pub struct ConcurrentArrayTable {
    payloads: AlignedBuf<AtomicU32>,
    /// Smallest key in the domain (1 for the canonical workload).
    base: Key,
}

impl ConcurrentArrayTable {
    /// Table over the key domain `[base, base + len)`.
    pub fn new(len: usize, base: Key) -> Self {
        let payloads = AlignedBuf::<AtomicU32>::zeroed(len);
        for slot in payloads.as_slice() {
            slot.store(EMPTY, Ordering::Relaxed);
        }
        ConcurrentArrayTable { payloads, base }
    }

    #[inline]
    pub fn insert(&self, t: Tuple) {
        debug_assert_ne!(t.payload, EMPTY);
        let slot = (t.key - self.base) as usize;
        self.payloads[slot].store(t.payload, Ordering::Relaxed);
    }

    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let Some(slot) = key.checked_sub(self.base).map(|s| s as usize) else {
            return;
        };
        if let Some(p) = self.payloads.get(slot) {
            let p = p.load(Ordering::Relaxed);
            if p != EMPTY {
                f(p);
            }
        }
    }

    #[inline]
    fn prefetch_slot(&self, key: Key, write: bool) {
        if let Some(slot) = key.checked_sub(self.base) {
            if let Some(p) = self.payloads.get(slot as usize) {
                if write {
                    kernels::prefetch_write(p);
                } else {
                    kernels::prefetch_read(p);
                }
            }
        }
    }

    /// Group-prefetched batch insert (build phase of NOPA): prefetch the
    /// target slots of group `k+1` with write intent while storing group
    /// `k`.
    pub fn insert_batch(&self, tuples: &[Tuple]) {
        if !kernels::simd_active() {
            for &t in tuples {
                self.insert(t);
            }
            return;
        }
        let mut chunks = tuples.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            self.prefetch_slot(t.key, true);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    self.prefetch_slot(t.key, true);
                }
            }
            for &t in cur {
                self.insert(t);
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Group-prefetched batch probe (probe phase of NOPA, after the build
    /// barrier): prefetch one group ahead of resolution. `f` receives
    /// `(probe_tuple, build_payload)` per match.
    pub fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], mut f: F) {
        if !kernels::simd_active() {
            for t in probes {
                self.probe(t.key, |p| f(t, p));
            }
            return;
        }
        let mut chunks = probes.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            self.prefetch_slot(t.key, false);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    self.prefetch_slot(t.key, false);
                }
            }
            for t in cur {
                self.probe(t.key, |p| f(t, p));
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    pub fn capacity(&self) -> usize {
        self.payloads.len()
    }

    pub fn memory_bytes(&self) -> usize {
        self.payloads.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_insert_probe() {
        let mut t = ArrayTable::new(101, 0);
        for k in 1..=100u32 {
            t.insert(Tuple::new(k, k + 7));
        }
        for k in 1..=100u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k + 7]);
        }
    }

    #[test]
    fn st_miss_on_hole_and_out_of_range() {
        let mut t = ArrayTable::new(10, 0);
        t.insert(Tuple::new(3, 30));
        let mut hits = Vec::new();
        t.probe(4, |p| hits.push(p)); // hole
        t.probe(4000, |p| hits.push(p)); // out of range
        assert!(hits.is_empty());
    }

    #[test]
    fn st_shifted_partition_keys() {
        // Radix partition with 4 low bits = 0b0101: keys 5, 21, 37 ...
        let shift = 4;
        let mut t = ArrayTable::new(16, shift);
        for i in 0..10u32 {
            let key = (i << shift) | 0b0101;
            t.insert(Tuple::new(key, i));
        }
        for i in 0..10u32 {
            let key = (i << shift) | 0b0101;
            let mut hits = Vec::new();
            t.probe(key, |p| hits.push(p));
            assert_eq!(hits, vec![i]);
        }
    }

    #[test]
    fn batch_kernels_match_scalar() {
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let mut st = ArrayTable::new(1000, 0);
        let ct = ConcurrentArrayTable::new(1000, 1);
        for k in (1..1000u32).step_by(3) {
            st.insert(Tuple::new(k, k * 2));
            ct.insert(Tuple::new(k, k * 2));
        }
        // Probes include hits, holes, key 0, and out-of-range keys.
        let mut probes: Vec<Tuple> = (0..600u32).map(|i| Tuple::new(i, i)).collect();
        probes.push(Tuple::new(1_200, 600));
        probes.push(Tuple::new(u32::MAX, 601));
        let mut scalar = Vec::new();
        for p in &probes {
            st.probe(p.key, |bp| scalar.push((p.payload, bp)));
        }
        for mode in [KernelMode::Portable, KernelMode::Simd] {
            with_mode(mode, || {
                let mut got = Vec::new();
                st.probe_batch(&probes, |p, bp| got.push((p.payload, bp)));
                assert_eq!(got, scalar, "st {mode:?}");
                let mut got = Vec::new();
                ct.probe_batch(&probes, |p, bp| got.push((p.payload, bp)));
                assert_eq!(got, scalar, "ct {mode:?}");
            });
        }
    }

    #[test]
    fn concurrent_parallel_build_probe() {
        let n = 10_000;
        let t = ConcurrentArrayTable::new(n, 1);
        std::thread::scope(|s| {
            for th in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for i in (th..n).step_by(4) {
                        t.insert(Tuple::new(i as u32 + 1, i as u32));
                    }
                });
            }
        });
        for k in 1..=n as u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k - 1]);
        }
    }

    #[test]
    fn concurrent_probe_below_base_is_miss() {
        let t = ConcurrentArrayTable::new(10, 5);
        t.insert(Tuple::new(5, 0));
        let mut hits = Vec::new();
        t.probe(2, |p| hits.push(p));
        assert!(hits.is_empty());
        t.probe(5, |p| hits.push(p));
        assert_eq!(hits, vec![0]);
    }
}
