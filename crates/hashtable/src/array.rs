//! Array "hash tables" (Section 5.2, "Arrays").
//!
//! For dense, unique key domains (`ID INTEGER PRIMARY KEY AUTOINCREMENT`)
//! the key itself can index an array holding only the payload — no keys
//! stored, no collisions, one cache line touched per probe. This yields
//! the NOPA/PRA/CPRA/PRAiS variants.
//!
//! Presence is encoded with the payload sentinel [`EMPTY`]; payloads in
//! the study are row ids `< 2^31`, so `u32::MAX` is free. Appendix C
//! ("holes in the key range") uses the same structure over a domain `k`
//! times larger than the relation.

use std::sync::atomic::{AtomicU32, Ordering};

use mmjoin_util::tuple::{Key, Payload, Tuple};

use crate::{JoinTable, TableSpec};

/// Sentinel payload marking an unoccupied slot.
pub const EMPTY: u32 = u32::MAX;

/// Single-threaded array table for one co-partition join (PRA/CPRA).
///
/// Keys of a radix partition share their low `key_shift` bits, so
/// `key >> key_shift` indexes densely.
pub struct ArrayTable {
    payloads: Vec<u32>,
    key_shift: u32,
}

impl ArrayTable {
    pub fn new(array_len: usize, key_shift: u32) -> Self {
        ArrayTable {
            payloads: vec![EMPTY; array_len],
            key_shift,
        }
    }

    #[inline]
    fn slot(&self, key: Key) -> usize {
        (key >> self.key_shift) as usize
    }

    #[inline]
    pub fn insert(&mut self, t: Tuple) {
        debug_assert_ne!(t.payload, EMPTY, "payload sentinel collision");
        let s = self.slot(t.key);
        debug_assert_eq!(
            self.payloads[s], EMPTY,
            "array join requires unique keys (slot {s} taken)"
        );
        self.payloads[s] = t.payload;
    }

    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        if let Some(&p) = self.payloads.get(self.slot(key)) {
            if p != EMPTY {
                f(p);
            }
        }
    }

    /// [`ArrayTable::insert`] with memory-access tracing (Table 4).
    pub fn insert_traced<T: mmjoin_util::trace::MemTracer>(&mut self, t: Tuple, tr: &mut T) {
        let s = self.slot(t.key);
        tr.ops(2);
        tr.write(&self.payloads[s] as *const u32 as usize, 4);
        self.payloads[s] = t.payload;
    }

    /// [`ArrayTable::probe`] with memory-access tracing (Table 4).
    pub fn probe_traced<T: mmjoin_util::trace::MemTracer, F: FnMut(Payload)>(
        &self,
        key: Key,
        tr: &mut T,
        mut f: F,
    ) {
        tr.ops(2);
        let s = self.slot(key);
        if let Some(&p) = self.payloads.get(s) {
            tr.read(&self.payloads[s] as *const u32 as usize, 4);
            if p != EMPTY {
                f(p);
            }
        }
    }
}

impl JoinTable for ArrayTable {
    fn with_spec(spec: &TableSpec) -> Self {
        ArrayTable::new(spec.array_len, spec.key_shift)
    }

    #[inline]
    fn insert(&mut self, t: Tuple) {
        ArrayTable::insert(self, t)
    }

    #[inline]
    fn probe<F: FnMut(Payload)>(&self, key: Key, f: F) {
        ArrayTable::probe(self, key, f)
    }

    fn memory_bytes(&self) -> usize {
        self.payloads.len() * 4
    }
}

/// Concurrent global array table (NOPA).
///
/// The build relation's keys are unique, so concurrent inserts target
/// distinct slots; relaxed atomic stores suffice (the build/probe barrier
/// publishes them).
pub struct ConcurrentArrayTable {
    payloads: Box<[AtomicU32]>,
    /// Smallest key in the domain (1 for the canonical workload).
    base: Key,
}

impl ConcurrentArrayTable {
    /// Table over the key domain `[base, base + len)`.
    pub fn new(len: usize, base: Key) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU32::new(EMPTY));
        ConcurrentArrayTable {
            payloads: v.into_boxed_slice(),
            base,
        }
    }

    #[inline]
    pub fn insert(&self, t: Tuple) {
        debug_assert_ne!(t.payload, EMPTY);
        let slot = (t.key - self.base) as usize;
        self.payloads[slot].store(t.payload, Ordering::Relaxed);
    }

    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let Some(slot) = key.checked_sub(self.base).map(|s| s as usize) else {
            return;
        };
        if let Some(p) = self.payloads.get(slot) {
            let p = p.load(Ordering::Relaxed);
            if p != EMPTY {
                f(p);
            }
        }
    }

    pub fn capacity(&self) -> usize {
        self.payloads.len()
    }

    pub fn memory_bytes(&self) -> usize {
        self.payloads.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn st_insert_probe() {
        let mut t = ArrayTable::new(101, 0);
        for k in 1..=100u32 {
            t.insert(Tuple::new(k, k + 7));
        }
        for k in 1..=100u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k + 7]);
        }
    }

    #[test]
    fn st_miss_on_hole_and_out_of_range() {
        let mut t = ArrayTable::new(10, 0);
        t.insert(Tuple::new(3, 30));
        let mut hits = Vec::new();
        t.probe(4, |p| hits.push(p)); // hole
        t.probe(4000, |p| hits.push(p)); // out of range
        assert!(hits.is_empty());
    }

    #[test]
    fn st_shifted_partition_keys() {
        // Radix partition with 4 low bits = 0b0101: keys 5, 21, 37 ...
        let shift = 4;
        let mut t = ArrayTable::new(16, shift);
        for i in 0..10u32 {
            let key = (i << shift) | 0b0101;
            t.insert(Tuple::new(key, i));
        }
        for i in 0..10u32 {
            let key = (i << shift) | 0b0101;
            let mut hits = Vec::new();
            t.probe(key, |p| hits.push(p));
            assert_eq!(hits, vec![i]);
        }
    }

    #[test]
    fn concurrent_parallel_build_probe() {
        let n = 10_000;
        let t = ConcurrentArrayTable::new(n, 1);
        std::thread::scope(|s| {
            for th in 0..4 {
                let t = &t;
                s.spawn(move || {
                    for i in (th..n).step_by(4) {
                        t.insert(Tuple::new(i as u32 + 1, i as u32));
                    }
                });
            }
        });
        for k in 1..=n as u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k - 1]);
        }
    }

    #[test]
    fn concurrent_probe_below_base_is_miss() {
        let t = ConcurrentArrayTable::new(10, 5);
        t.insert(Tuple::new(5, 0));
        let mut hits = Vec::new();
        t.probe(2, |p| hits.push(p));
        assert!(hits.is_empty());
        t.probe(5, |p| hits.push(p));
        assert_eq!(hits, vec![0]);
    }
}
