//! Bucket-chained hash table (Balkesen et al.'s cache-efficient layout).
//!
//! Each bucket is half a cache line and stores tuples *inline* — the
//! "single array for both locks and tuples, no head pointers" improvement
//! over the Blanas et al. linked-list table that the paper credits to [5].
//! Overflow buckets come from a bump-allocated arena (index-linked, no
//! pointer chasing across allocations).
//!
//! Only the single-threaded variant is provided: in the PRB/PRO join
//! phase every co-partition table is built and probed by one thread, so
//! the per-bucket latch of the original degenerates to nothing.

use mmjoin_util::alloc::AlignedVec;
use mmjoin_util::kernels;
use mmjoin_util::next_pow2;
use mmjoin_util::tuple::{Key, Payload, Tuple};

use crate::hashfn::{IdentityHash, KeyHash};
use crate::{JoinTable, TableSpec, PROBE_GROUP};

/// Tuples stored inline per bucket (2 × 8 B tuples + metadata = 32 B,
/// two buckets per cache line, as in the original implementation).
const BUCKET_CAP: usize = 2;

/// Sentinel "no overflow bucket".
const NIL: u32 = u32::MAX;

#[derive(Copy, Clone)]
#[repr(align(32))] // half a cache line, matching the original's bucket_t
struct Bucket {
    count: u32,
    next: u32,
    tuples: [Tuple; BUCKET_CAP],
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        count: 0,
        next: NIL,
        tuples: [Tuple::new(0, 0); BUCKET_CAP],
    };
}

/// Single-threaded chained table for one co-partition join (PRB/PRO).
pub struct StChainedTable<H: KeyHash = IdentityHash> {
    /// Primary buckets followed by overflow buckets.
    buckets: AlignedVec<Bucket>,
    mask: u32,
    hash: H,
    len: usize,
    /// Keys are hashed as `key >> shift` (radix-partition tables).
    shift: u32,
}

impl<H: KeyHash + Default> StChainedTable<H> {
    /// Table sized for `n` tuples: one primary bucket per two tuples
    /// (matching the original's `nbuckets = n / 2` sizing).
    pub fn with_capacity(n: usize) -> Self {
        Self::with_capacity_shift(n, 0)
    }

    /// Table whose keys share their low `shift` bits (one radix
    /// partition): hash on the distinguishing high bits.
    pub fn with_capacity_shift(n: usize, shift: u32) -> Self {
        let nbuckets = next_pow2(n.div_ceil(BUCKET_CAP));
        let mut buckets = AlignedVec::with_capacity(nbuckets + nbuckets / 2);
        buckets.resize(nbuckets, Bucket::EMPTY);
        StChainedTable {
            buckets,
            mask: (nbuckets - 1) as u32,
            hash: H::default(),
            len: 0,
            shift,
        }
    }
}

impl<H: KeyHash> StChainedTable<H> {
    #[inline]
    fn home(&self, key: Key) -> usize {
        self.hash.index(key >> self.shift, self.mask) as usize
    }

    #[inline]
    pub fn insert(&mut self, t: Tuple) {
        let mut idx = self.home(t.key);
        loop {
            let b = &mut self.buckets[idx];
            if (b.count as usize) < BUCKET_CAP {
                b.tuples[b.count as usize] = t;
                b.count += 1;
                self.len += 1;
                return;
            }
            if b.next == NIL {
                // Allocate a fresh overflow bucket at the arena tail and
                // link it in front of the chain tail.
                let new_idx = self.buckets.len() as u32;
                self.buckets[idx].next = new_idx;
                let mut fresh = Bucket::EMPTY;
                fresh.tuples[0] = t;
                fresh.count = 1;
                self.buckets.push(fresh);
                self.len += 1;
                return;
            }
            idx = self.buckets[idx].next as usize;
        }
    }

    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let mut idx = self.home(key);
        loop {
            let b = &self.buckets[idx];
            for i in 0..b.count as usize {
                if b.tuples[i].key == key {
                    f(b.tuples[i].payload);
                }
            }
            if b.next == NIL {
                return;
            }
            idx = b.next as usize;
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Group-prefetched batch insert: prefetch the home buckets of group
    /// `k+1` with write intent while inserting group `k`. Same table
    /// state as inserting in order.
    pub fn insert_batch(&mut self, tuples: &[Tuple]) {
        if !kernels::simd_active() {
            for &t in tuples {
                self.insert(t);
            }
            return;
        }
        let mut chunks = tuples.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            kernels::prefetch_write(&self.buckets[self.home(t.key)]);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    kernels::prefetch_write(&self.buckets[self.home(t.key)]);
                }
            }
            for &t in cur {
                self.insert(t);
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Group-prefetched batch probe: prefetch the home buckets of group
    /// `k+1` while walking the chains of group `k`. `f` receives
    /// `(probe_tuple, build_payload)` per match, in probe order.
    pub fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], mut f: F) {
        if !kernels::simd_active() {
            for t in probes {
                self.probe(t.key, |p| f(t, p));
            }
            return;
        }
        let mut chunks = probes.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            kernels::prefetch_read(&self.buckets[self.home(t.key)]);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    kernels::prefetch_read(&self.buckets[self.home(t.key)]);
                }
            }
            for t in cur {
                self.probe(t.key, |p| f(t, p));
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// [`StChainedTable::insert`] with memory-access tracing (Table 4).
    pub fn insert_traced<T: mmjoin_util::trace::MemTracer>(&mut self, t: Tuple, tr: &mut T) {
        let mut idx = self.home(t.key);
        tr.ops(3);
        loop {
            tr.read(&self.buckets[idx] as *const Bucket as usize, 32);
            let b = &mut self.buckets[idx];
            if (b.count as usize) < BUCKET_CAP {
                tr.write(&self.buckets[idx] as *const Bucket as usize, 12);
                tr.ops(2);
                let b = &mut self.buckets[idx];
                b.tuples[b.count as usize] = t;
                b.count += 1;
                self.len += 1;
                return;
            }
            if b.next == NIL {
                let new_idx = self.buckets.len() as u32;
                self.buckets[idx].next = new_idx;
                let mut fresh = Bucket::EMPTY;
                fresh.tuples[0] = t;
                fresh.count = 1;
                self.buckets.push(fresh);
                tr.write(self.buckets.last().unwrap() as *const Bucket as usize, 32);
                tr.ops(4);
                self.len += 1;
                return;
            }
            tr.ops(1);
            idx = self.buckets[idx].next as usize;
        }
    }

    /// [`StChainedTable::probe`] with memory-access tracing (Table 4).
    pub fn probe_traced<T: mmjoin_util::trace::MemTracer, F: FnMut(Payload)>(
        &self,
        key: Key,
        tr: &mut T,
        mut f: F,
    ) {
        let mut idx = self.home(key);
        tr.ops(3);
        loop {
            tr.read(&self.buckets[idx] as *const Bucket as usize, 32);
            let b = &self.buckets[idx];
            tr.ops(b.count as u64 + 1);
            for i in 0..b.count as usize {
                if b.tuples[i].key == key {
                    f(b.tuples[i].payload);
                }
            }
            if b.next == NIL {
                return;
            }
            idx = b.next as usize;
        }
    }

    /// Length of the chain for `key`'s bucket (diagnostics / tests).
    pub fn chain_len(&self, key: Key) -> usize {
        let mut idx = self.home(key);
        let mut n = 1;
        while self.buckets[idx].next != NIL {
            idx = self.buckets[idx].next as usize;
            n += 1;
        }
        n
    }
}

impl<H: KeyHash + Default> JoinTable for StChainedTable<H> {
    fn with_spec(spec: &TableSpec) -> Self {
        Self::with_capacity_shift(spec.capacity, spec.key_shift)
    }

    #[inline]
    fn insert(&mut self, t: Tuple) {
        StChainedTable::insert(self, t)
    }

    #[inline]
    fn probe<F: FnMut(Payload)>(&self, key: Key, f: F) {
        StChainedTable::probe(self, key, f)
    }

    #[inline]
    fn insert_batch(&mut self, tuples: &[Tuple]) {
        StChainedTable::insert_batch(self, tuples)
    }

    #[inline]
    fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], _unique: bool, f: F) {
        // Chains hold all duplicates inline; the unique hint saves nothing.
        StChainedTable::probe_batch(self, probes, f)
    }

    fn memory_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Bucket>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_join_table, random_tuples};

    #[test]
    fn bucket_is_half_cache_line() {
        assert_eq!(std::mem::size_of::<Bucket>(), 32);
    }

    #[test]
    fn insert_probe_unique() {
        let mut t = StChainedTable::<IdentityHash>::with_capacity(1000);
        for k in 1..=1000u32 {
            t.insert(Tuple::new(k, k * 3));
        }
        assert_eq!(t.len(), 1000);
        for k in 1..=1000u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k * 3]);
        }
    }

    #[test]
    fn heavy_duplicates_chain_and_find_all() {
        let mut t = StChainedTable::<IdentityHash>::with_capacity(16);
        for i in 0..100u32 {
            t.insert(Tuple::new(3, i));
        }
        assert!(t.chain_len(3) >= 100 / BUCKET_CAP);
        let mut hits = Vec::new();
        t.probe(3, |p| hits.push(p));
        hits.sort_unstable();
        assert_eq!(hits, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn matches_reference_on_random_input() {
        let tuples = random_tuples(800, 150, 17);
        let probes: Vec<u32> = (1..=170).collect();
        let spec = TableSpec::hashed(tuples.len());
        check_join_table::<StChainedTable<IdentityHash>>(&spec, &tuples, &probes);
        check_join_table::<StChainedTable<crate::MultiplicativeHash>>(&spec, &tuples, &probes);
    }

    #[test]
    fn empty_table_probes_miss() {
        let t = StChainedTable::<IdentityHash>::with_capacity(10);
        let mut hits = Vec::new();
        t.probe(1, |p| hits.push(p));
        assert!(hits.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn batch_kernels_match_portable() {
        use crate::test_support::check_batch_kernels;
        let random = random_tuples(700, 130, 31);
        let skewed: Vec<Tuple> = (0..80u32).map(|i| Tuple::new(9, i)).collect();
        for tuples in [&random, &skewed] {
            let probes: Vec<Tuple> = (0..250u32).map(|i| Tuple::new(i % 150 + 1, i)).collect();
            let spec = TableSpec::hashed(tuples.len());
            check_batch_kernels::<StChainedTable<IdentityHash>>(&spec, tuples, &probes);
        }
    }

    #[test]
    fn tiny_capacity_ok() {
        let mut t = StChainedTable::<IdentityHash>::with_capacity(0);
        t.insert(Tuple::new(9, 9));
        let mut hits = Vec::new();
        t.probe(9, |p| hits.push(p));
        assert_eq!(hits, vec![9]);
    }
}
