//! Linear-probing hash tables.
//!
//! * [`StLinearTable`] — the single-threaded open-addressing table used in
//!   the join phase of PRL/PRLiS/CPRL ("CPRL uses the same linear probing
//!   hash table as PRL", Section 6.1).
//! * [`ConcurrentLinearTable`] — the lock-free table of the NOP join (Lang
//!   et al.): inserts claim slots with a compare-and-swap, probes are
//!   entirely synchronization-free.
//!
//! Both reserve the packed value 0 (key 0) as the EMPTY sentinel, exactly
//! like the original NOP implementation; the workload generators produce
//! keys ≥ 1.

use std::sync::atomic::{AtomicU64, Ordering};

use mmjoin_util::alloc::AlignedBuf;
use mmjoin_util::kernels;
use mmjoin_util::tuple::{Key, Payload, Tuple};
use mmjoin_util::{next_pow2, CACHE_LINE};

use crate::hashfn::{IdentityHash, KeyHash};
use crate::{JoinTable, TableSpec, PROBE_GROUP};

/// Slots per tuple: capacity = next_pow2(2 * n) gives a load factor ≤ 50%,
/// the configuration used by Lang et al.'s NOP.
const OVERALLOC: usize = 2;

/// Minimum slot count: one cache line of slots. Guards the `n = 0` case
/// (an empty build relation must still produce a probeable table with an
/// empty-slot terminator) and keeps every table at least one flush granule.
const MIN_SLOTS: usize = CACHE_LINE / std::mem::size_of::<u64>();

/// Single-threaded linear-probing table (join phase of the PR*/CPR*
/// linear variants).
pub struct StLinearTable<H: KeyHash = IdentityHash> {
    slots: AlignedBuf<u64>,
    mask: u32,
    hash: H,
    len: usize,
    /// Keys are hashed as `key >> shift` (radix-partition tables pass the
    /// partition bits here so identity hashing spreads again).
    shift: u32,
}

impl<H: KeyHash + Default> StLinearTable<H> {
    pub fn with_capacity(n: usize) -> Self {
        Self::with_capacity_shift(n, 0)
    }

    /// Table whose keys share their low `shift` bits (one radix
    /// partition): hash on the distinguishing high bits.
    pub fn with_capacity_shift(n: usize, shift: u32) -> Self {
        let size = next_pow2((n * OVERALLOC).max(MIN_SLOTS));
        StLinearTable {
            slots: AlignedBuf::zeroed(size),
            mask: (size - 1) as u32,
            hash: H::default(),
            len: 0,
            shift,
        }
    }
}

impl<H: KeyHash> StLinearTable<H> {
    #[inline]
    fn home(&self, key: Key) -> usize {
        self.hash.index(key >> self.shift, self.mask) as usize
    }

    #[inline]
    pub fn insert(&mut self, t: Tuple) {
        debug_assert_ne!(t.key, 0, "key 0 is the EMPTY sentinel");
        assert!(self.len < self.slots.len(), "table full");
        let mut idx = self.home(t.key);
        loop {
            if self.slots[idx] == 0 {
                self.slots[idx] = t.pack();
                self.len += 1;
                return;
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let mut idx = self.home(key);
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                return;
            }
            let t = Tuple::unpack(slot);
            if t.key == key {
                f(t.payload);
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    /// Probe assuming *unique* build keys (the study's PK assumption):
    /// stops at the first match instead of scanning the whole collision
    /// run for duplicates.
    #[inline]
    pub fn probe_first<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let mut idx = self.home(key);
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                return;
            }
            let t = Tuple::unpack(slot);
            if t.key == key {
                f(t.payload);
                return;
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Group-prefetched batch insert: prefetch the home slots of group
    /// `k+1` while inserting group `k`, so each prefetch has a full
    /// group's worth of work to hide its DRAM miss behind. Same table
    /// state as inserting in order.
    pub fn insert_batch(&mut self, tuples: &[Tuple]) {
        if !kernels::simd_active() {
            for &t in tuples {
                self.insert(t);
            }
            return;
        }
        let mut chunks = tuples.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            kernels::prefetch_write(&self.slots[self.home(t.key)]);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    kernels::prefetch_write(&self.slots[self.home(t.key)]);
                }
            }
            for &t in cur {
                self.insert(t);
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Group-prefetched batch probe: hash a group of [`PROBE_GROUP`] keys
    /// and prefetch their home slots one group *ahead* of resolution, so
    /// resolving group `k` overlaps the misses of group `k+1`. `f`
    /// receives `(probe_tuple, build_payload)` per match, in probe order.
    pub fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, mut f: F) {
        if !kernels::simd_active() {
            if unique {
                for t in probes {
                    self.probe_first(t.key, |p| f(t, p));
                }
            } else {
                for t in probes {
                    self.probe(t.key, |p| f(t, p));
                }
            }
            return;
        }
        let mut chunks = probes.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            kernels::prefetch_read(&self.slots[self.home(t.key)]);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    kernels::prefetch_read(&self.slots[self.home(t.key)]);
                }
            }
            if unique {
                for t in cur {
                    self.probe_first(t.key, |p| f(t, p));
                }
            } else {
                for t in cur {
                    self.probe(t.key, |p| f(t, p));
                }
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// [`StLinearTable::insert`] with memory-access tracing (Table 4).
    pub fn insert_traced<T: mmjoin_util::trace::MemTracer>(&mut self, t: Tuple, tr: &mut T) {
        debug_assert_ne!(t.key, 0);
        let mut idx = self.home(t.key);
        tr.ops(3);
        loop {
            tr.read(&self.slots[idx] as *const u64 as usize, 8);
            if self.slots[idx] == 0 {
                tr.write(&self.slots[idx] as *const u64 as usize, 8);
                tr.ops(2);
                self.slots[idx] = t.pack();
                self.len += 1;
                return;
            }
            tr.ops(1);
            idx = (idx + 1) & self.mask as usize;
        }
    }

    /// [`StLinearTable::probe`] with memory-access tracing (Table 4).
    pub fn probe_traced<T: mmjoin_util::trace::MemTracer, F: FnMut(Payload)>(
        &self,
        key: Key,
        tr: &mut T,
        mut f: F,
    ) {
        let mut idx = self.home(key);
        tr.ops(3);
        loop {
            tr.read(&self.slots[idx] as *const u64 as usize, 8);
            let slot = self.slots[idx];
            if slot == 0 {
                return;
            }
            let t = Tuple::unpack(slot);
            tr.ops(2);
            if t.key == key {
                f(t.payload);
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    /// [`StLinearTable::probe_first`] with memory-access tracing.
    pub fn probe_first_traced<T: mmjoin_util::trace::MemTracer, F: FnMut(Payload)>(
        &self,
        key: Key,
        tr: &mut T,
        mut f: F,
    ) {
        let mut idx = self.home(key);
        tr.ops(3);
        loop {
            tr.read(&self.slots[idx] as *const u64 as usize, 8);
            let slot = self.slots[idx];
            if slot == 0 {
                return;
            }
            let t = Tuple::unpack(slot);
            tr.ops(2);
            if t.key == key {
                f(t.payload);
                return;
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }
}

impl<H: KeyHash + Default> JoinTable for StLinearTable<H> {
    fn with_spec(spec: &TableSpec) -> Self {
        Self::with_capacity_shift(spec.capacity, spec.key_shift)
    }

    #[inline]
    fn insert(&mut self, t: Tuple) {
        StLinearTable::insert(self, t)
    }

    #[inline]
    fn probe<F: FnMut(Payload)>(&self, key: Key, f: F) {
        StLinearTable::probe(self, key, f)
    }

    #[inline]
    fn probe_unique<F: FnMut(Payload)>(&self, key: Key, f: F) {
        StLinearTable::probe_first(self, key, f)
    }

    #[inline]
    fn insert_batch(&mut self, tuples: &[Tuple]) {
        StLinearTable::insert_batch(self, tuples)
    }

    #[inline]
    fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, f: F) {
        StLinearTable::probe_batch(self, probes, unique, f)
    }

    fn memory_bytes(&self) -> usize {
        self.slots.len() * 8
    }
}

/// Lock-free concurrent linear-probing table (the NOP global table).
///
/// Inserts CAS the whole packed `<key,payload>` word into an empty slot —
/// equivalent to (and race-free like) the original's CAS-on-key followed
/// by a plain payload store, because the packed word is claimed and
/// published in a single atomic operation.
///
/// Probes use `Relaxed` loads: the join driver separates build and probe
/// phases with a barrier (thread join / `std::sync::Barrier`), which
/// provides the necessary happens-before edge for all inserted entries.
pub struct ConcurrentLinearTable<H: KeyHash = IdentityHash> {
    slots: AlignedBuf<AtomicU64>,
    mask: u32,
    hash: H,
}

impl<H: KeyHash + Default> ConcurrentLinearTable<H> {
    pub fn with_capacity(n: usize) -> Self {
        let size = next_pow2((n * OVERALLOC).max(MIN_SLOTS));
        // A zeroed AtomicU64 is the EMPTY sentinel, so the policy-aware
        // zeroed buffer is already a valid empty table.
        ConcurrentLinearTable {
            slots: AlignedBuf::zeroed(size),
            mask: (size - 1) as u32,
            hash: H::default(),
        }
    }
}

impl<H: KeyHash> ConcurrentLinearTable<H> {
    /// Insert from any thread.
    ///
    /// Panics as soon as the probe loop wraps all the way back to the
    /// key's home slot without claiming anything: at that point every slot
    /// has been observed occupied (there are no deletes), so the table is
    /// full and further probing could spin forever.
    #[inline]
    pub fn insert(&self, t: Tuple) {
        debug_assert_ne!(t.key, 0, "key 0 is the EMPTY sentinel");
        let packed = t.pack();
        let home = self.hash.index(t.key, self.mask) as usize;
        let mut idx = home;
        loop {
            let slot = &self.slots[idx];
            if slot.load(Ordering::Relaxed) == 0
                && slot
                    .compare_exchange(0, packed, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            idx = (idx + 1) & self.mask as usize;
            assert!(idx != home, "concurrent linear table full");
        }
    }

    /// Group-prefetched batch insert (build phase of NOP): prefetch the
    /// home slots of group `k+1` with write intent while inserting group
    /// `k`.
    pub fn insert_batch(&self, tuples: &[Tuple]) {
        if !kernels::simd_active() {
            for &t in tuples {
                self.insert(t);
            }
            return;
        }
        let mut chunks = tuples.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            kernels::prefetch_write(&self.slots[self.hash.index(t.key, self.mask) as usize]);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    kernels::prefetch_write(
                        &self.slots[self.hash.index(t.key, self.mask) as usize],
                    );
                }
            }
            for &t in cur {
                self.insert(t);
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Group-prefetched batch probe (probe phase of NOP, after the build
    /// barrier): prefetch one group ahead of resolution. `f` receives
    /// `(probe_tuple, build_payload)` per match.
    pub fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, mut f: F) {
        if !kernels::simd_active() {
            if unique {
                for t in probes {
                    self.probe_first(t.key, |p| f(t, p));
                }
            } else {
                for t in probes {
                    self.probe(t.key, |p| f(t, p));
                }
            }
            return;
        }
        let mut chunks = probes.chunks(PROBE_GROUP);
        let mut cur = match chunks.next() {
            Some(g) => g,
            None => return,
        };
        for t in cur {
            kernels::prefetch_read(&self.slots[self.hash.index(t.key, self.mask) as usize]);
        }
        loop {
            let next = chunks.next();
            if let Some(g) = next {
                for t in g {
                    kernels::prefetch_read(&self.slots[self.hash.index(t.key, self.mask) as usize]);
                }
            }
            if unique {
                for t in cur {
                    self.probe_first(t.key, |p| f(t, p));
                }
            } else {
                for t in cur {
                    self.probe(t.key, |p| f(t, p));
                }
            }
            match next {
                Some(g) => cur = g,
                None => return,
            }
        }
    }

    /// Probe after the build barrier, scanning the full collision run
    /// (supports duplicate build keys). With *dense unique* keys and
    /// identity hashing the occupied slots form one giant run, making
    /// this O(|R|) per probe — use [`Self::probe_first`] for the study's
    /// unique-PK workloads.
    #[inline]
    pub fn probe<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let mut idx = self.hash.index(key, self.mask) as usize;
        loop {
            let slot = self.slots[idx].load(Ordering::Relaxed);
            if slot == 0 {
                return;
            }
            let t = Tuple::unpack(slot);
            if t.key == key {
                f(t.payload);
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    /// Probe assuming unique build keys: stop at the first match (the
    /// original NOP's lookup semantics for primary-key builds).
    #[inline]
    pub fn probe_first<F: FnMut(Payload)>(&self, key: Key, mut f: F) {
        let mut idx = self.hash.index(key, self.mask) as usize;
        loop {
            let slot = self.slots[idx].load(Ordering::Relaxed);
            if slot == 0 {
                return;
            }
            let t = Tuple::unpack(slot);
            if t.key == key {
                f(t.payload);
                return;
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    /// Number of slots (for traffic accounting).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * 8
    }

    /// Cache lines touched per random probe — 1 for a ≤50% loaded table
    /// hit within a line; used by the cost model.
    pub fn lines_per_probe(&self) -> f64 {
        1.0 + 8.0 / CACHE_LINE as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_join_table, random_tuples};

    #[test]
    fn st_insert_probe_unique_keys() {
        let mut t = StLinearTable::<IdentityHash>::with_capacity(100);
        for k in 1..=100u32 {
            t.insert(Tuple::new(k, k * 10));
        }
        for k in 1..=100u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k * 10]);
        }
        let mut miss = Vec::new();
        t.probe(101, |p| miss.push(p));
        assert!(miss.is_empty());
    }

    #[test]
    fn st_duplicates_all_found() {
        let mut t = StLinearTable::<IdentityHash>::with_capacity(10);
        t.insert(Tuple::new(5, 1));
        t.insert(Tuple::new(5, 2));
        t.insert(Tuple::new(5, 3));
        let mut hits = Vec::new();
        t.probe(5, |p| hits.push(p));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn st_matches_reference_on_random_input() {
        let tuples = random_tuples(500, 100, 42);
        let probes: Vec<u32> = (1..=120).collect();
        let spec = TableSpec::hashed(tuples.len());
        check_join_table::<StLinearTable<IdentityHash>>(&spec, &tuples, &probes);
        check_join_table::<StLinearTable<crate::MurmurHash>>(&spec, &tuples, &probes);
    }

    #[test]
    fn concurrent_single_thread_semantics() {
        let t = ConcurrentLinearTable::<IdentityHash>::with_capacity(100);
        for k in 1..=100u32 {
            t.insert(Tuple::new(k, k));
        }
        for k in 1..=100u32 {
            let mut hits = Vec::new();
            t.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k]);
        }
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let n = 10_000usize;
        let table = ConcurrentLinearTable::<IdentityHash>::with_capacity(n);
        let threads = 8;
        std::thread::scope(|s| {
            for th in 0..threads {
                let table = &table;
                s.spawn(move || {
                    for i in (th..n).step_by(threads) {
                        table.insert(Tuple::new(i as u32 + 1, i as u32));
                    }
                });
            }
        });
        // Every key present exactly once.
        for k in 1..=n as u32 {
            let mut hits = Vec::new();
            table.probe(k, |p| hits.push(p));
            assert_eq!(hits, vec![k - 1], "key {k}");
        }
    }

    #[test]
    fn concurrent_contended_duplicate_keys() {
        // All threads insert the SAME key: every insert must land.
        let table = ConcurrentLinearTable::<IdentityHash>::with_capacity(1000);
        std::thread::scope(|s| {
            for th in 0..8u32 {
                let table = &table;
                s.spawn(move || {
                    for i in 0..100u32 {
                        table.insert(Tuple::new(7, th * 1000 + i));
                    }
                });
            }
        });
        let mut hits = Vec::new();
        table.probe(7, |p| hits.push(p));
        assert_eq!(hits.len(), 800);
        hits.sort_unstable();
        hits.dedup();
        assert_eq!(hits.len(), 800, "all payloads distinct");
    }

    #[test]
    #[should_panic(expected = "table full")]
    fn st_overflow_panics() {
        let mut t = StLinearTable::<IdentityHash>::with_capacity(1);
        for k in 1..=10u32 {
            t.insert(Tuple::new(k, 0));
        }
    }

    #[test]
    #[should_panic(expected = "concurrent linear table full")]
    fn concurrent_full_table_panics_on_first_wraparound() {
        let t = ConcurrentLinearTable::<IdentityHash>::with_capacity(4);
        assert_eq!(t.capacity(), 8);
        for k in 1..=9u32 {
            t.insert(Tuple::new(k, 0));
        }
    }

    #[test]
    fn zero_capacity_tables_probe_safely() {
        // An empty build relation must still yield a probeable table with
        // at least one empty slot terminating every probe run.
        let st = StLinearTable::<IdentityHash>::with_capacity(0);
        let mut hits = Vec::new();
        st.probe(1, |p| hits.push(p));
        st.probe_first(7, |p| hits.push(p));
        let ct = ConcurrentLinearTable::<IdentityHash>::with_capacity(0);
        ct.probe(1, |p| hits.push(p));
        ct.probe_first(7, |p| hits.push(p));
        assert!(hits.is_empty());
        assert!(st.memory_bytes() >= CACHE_LINE);
        assert!(ct.memory_bytes() >= CACHE_LINE);
    }

    #[test]
    fn st_batch_kernels_match_portable() {
        use crate::test_support::check_batch_kernels;
        let random = random_tuples(600, 120, 7);
        let skewed: Vec<Tuple> = (0..64u32).map(|i| Tuple::new(5, i)).collect();
        let dups = random_tuples(400, 40, 8);
        for tuples in [&random, &skewed, &dups] {
            let probes: Vec<Tuple> = (0..200u32).map(|i| Tuple::new(i % 140 + 1, i)).collect();
            let spec = TableSpec::hashed(tuples.len());
            check_batch_kernels::<StLinearTable<IdentityHash>>(&spec, tuples, &probes);
            check_batch_kernels::<StLinearTable<crate::MurmurHash>>(&spec, tuples, &probes);
        }
    }

    #[test]
    fn concurrent_batch_from_many_threads() {
        // Batched build from 4 threads, then batched probes from 4
        // threads — the pattern NOP runs under the executor. Exercised
        // under TSan in CI with the prefetch kernels forced on.
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let n = 8_000usize;
        let tuples: Vec<Tuple> = (0..n).map(|i| Tuple::new(i as u32 + 1, i as u32)).collect();
        let table = ConcurrentLinearTable::<IdentityHash>::with_capacity(n);
        with_mode(KernelMode::Simd, || {
            std::thread::scope(|s| {
                for chunk in tuples.chunks(n / 4) {
                    let table = &table;
                    s.spawn(move || table.insert_batch(chunk));
                }
            });
            let total: usize = std::thread::scope(|s| {
                let handles: Vec<_> = tuples
                    .chunks(n / 4)
                    .map(|chunk| {
                        let table = &table;
                        s.spawn(move || {
                            let mut cnt = 0usize;
                            table.probe_batch(chunk, true, |p, bp| {
                                assert_eq!(p.payload, bp);
                                cnt += 1;
                            });
                            cnt
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, n);
        });
    }

    #[test]
    fn concurrent_batch_matches_scalar_in_both_modes() {
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let tuples = random_tuples(500, 200, 9);
        let probes: Vec<Tuple> = (0..300u32).map(|i| Tuple::new(i % 220 + 1, i)).collect();
        let scalar = {
            let t = ConcurrentLinearTable::<IdentityHash>::with_capacity(tuples.len());
            for &b in &tuples {
                t.insert(b);
            }
            let mut got = Vec::new();
            for p in &probes {
                t.probe(p.key, |bp| got.push((p.key, p.payload, bp)));
            }
            got
        };
        for mode in [KernelMode::Portable, KernelMode::Simd] {
            let got = with_mode(mode, || {
                let t = ConcurrentLinearTable::<IdentityHash>::with_capacity(tuples.len());
                t.insert_batch(&tuples);
                let mut got = Vec::new();
                t.probe_batch(&probes, false, |p, bp| got.push((p.key, p.payload, bp)));
                got
            });
            assert_eq!(got, scalar, "{mode:?}");
        }
    }
}
