//! The hash-table zoo of the join study.
//!
//! Section 5.2 of the paper ("Choice of Hash Method") shows that the
//! *same* join skeleton with different tables (chained vs. linear probing
//! vs. concise vs. plain array) produces the PRO/PRL/PRA and NOP/NOPA
//! variants. This crate provides all of them:
//!
//! | Type | Used by | Concurrency |
//! |------|---------|-------------|
//! | [`StChainedTable`] | PRB/PRO join phase (per partition) | single writer |
//! | [`StLinearTable`] | PRL/CPRL join phase | single writer |
//! | [`ArrayTable`] | PRA/CPRA join phase | single writer |
//! | [`ConcurrentLinearTable`] | NOP global table | lock-free CAS inserts |
//! | [`ConcurrentArrayTable`] | NOPA global table | atomic stores |
//! | [`ConciseHashTable`] | CHTJ | bulkloaded, then read-only |
//!
//! Per-partition tables implement [`JoinTable`], which is what makes the
//! partitioned join phase generic over the hash method.
//!
//! Hash functions live in [`hashfn`]; like the paper (Section 7.1) the
//! default for dense primary keys is the identity function modulo table
//! size.

pub mod array;
pub mod chained;
pub mod cht;
pub mod hashfn;
pub mod linear;

pub use array::{ArrayTable, ConcurrentArrayTable};
pub use chained::StChainedTable;
pub use cht::ConciseHashTable;
pub use hashfn::{CrcHash, IdentityHash, KeyHash, MultiplicativeHash, MurmurHash};
pub use linear::{ConcurrentLinearTable, StLinearTable};

use mmjoin_util::tuple::{Key, Payload, Tuple};

/// Probes hashed and prefetched per group in the batched build/probe
/// paths (group prefetching à la Chen et al.): large enough to cover the
/// ~10 in-flight line fills current cores sustain, small enough that all
/// G home slots stay resident between the prefetch and the resolve pass.
pub const PROBE_GROUP: usize = 16;

/// Construction parameters for per-partition join tables.
#[derive(Copy, Clone, Debug)]
pub struct TableSpec {
    /// Number of tuples the table must hold.
    pub capacity: usize,
    /// Keys in a radix partition share their low `key_shift` bits; tables
    /// must hash/index on `key >> key_shift` or every key collides into
    /// one bucket (the original radix-join code's HASH_BIT_MODULO uses
    /// exactly this shift). Arrays index densely with it.
    pub key_shift: u32,
    /// For [`ArrayTable`]: number of addressable slots.
    pub array_len: usize,
}

impl TableSpec {
    /// Spec for hash-based tables over un-partitioned input.
    pub fn hashed(capacity: usize) -> Self {
        TableSpec {
            capacity,
            key_shift: 0,
            array_len: 0,
        }
    }

    /// Spec for hash-based tables over one radix partition of
    /// `radix_bits` low bits.
    pub fn hashed_partition(capacity: usize, radix_bits: u32) -> Self {
        TableSpec {
            capacity,
            key_shift: radix_bits,
            array_len: 0,
        }
    }

    /// Spec for array tables over a radix partition: keys of partition `p`
    /// under `radix_bits` low bits satisfy `key & mask == p`, so
    /// `key >> radix_bits` is dense within the partition.
    pub fn array(radix_bits: u32, domain: usize) -> Self {
        let array_len = (domain >> radix_bits) + 2;
        TableSpec {
            capacity: array_len,
            key_shift: radix_bits,
            array_len,
        }
    }

    /// Upper-bound allocation footprint of a table built from this spec.
    /// Lets callers charge a memory budget *before* construction; the
    /// estimate covers the largest of the table kinds the spec can build
    /// (chained: 32 B buckets at 2 tuples each; linear: pow2(2n) 8 B
    /// slots; array: 4 B payload + occupancy bit per slot).
    pub fn table_bytes(&self) -> usize {
        if self.array_len > 0 {
            self.array_len * 5
        } else {
            (2 * self.capacity.max(1)).next_power_of_two() * 8
        }
    }
}

/// A single-threaded build/probe table for one co-partition join.
pub trait JoinTable: Sized {
    /// Allocate an empty table per `spec`.
    fn with_spec(spec: &TableSpec) -> Self;

    /// Insert one build tuple.
    fn insert(&mut self, t: Tuple);

    /// Invoke `f` with the payload of every build tuple matching `key`.
    fn probe<F: FnMut(Payload)>(&self, key: Key, f: F);

    /// Probe under the study's unique-build-key assumption: may stop at
    /// the first match. Defaults to [`JoinTable::probe`]; linear probing
    /// overrides it (scanning a dense partition's whole collision run
    /// for duplicates that cannot exist costs O(partition) per probe).
    fn probe_unique<F: FnMut(Payload)>(&self, key: Key, f: F) {
        self.probe(key, f)
    }

    /// Insert a batch of build tuples. The default is the scalar loop;
    /// hash tables override it with a group-prefetched pipeline (hash a
    /// group of [`PROBE_GROUP`] keys, prefetch their home slots, then
    /// insert). Semantically identical to inserting one by one in order.
    fn insert_batch(&mut self, tuples: &[Tuple]) {
        for &t in tuples {
            self.insert(t);
        }
    }

    /// Probe a batch of tuples, invoking `f(probe_tuple, build_payload)`
    /// for every match, in probe order. `unique` selects
    /// [`JoinTable::probe_unique`] semantics per probe. The default is the
    /// scalar loop; hash tables override it with a group-prefetched
    /// pipeline. Semantically identical to probing one by one in order.
    fn probe_batch<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, mut f: F) {
        if unique {
            for t in probes {
                self.probe_unique(t.key, |p| f(t, p));
            }
        } else {
            for t in probes {
                self.probe(t.key, |p| f(t, p));
            }
        }
    }

    /// Bytes of memory held (for the memory-footprint comparisons).
    fn memory_bytes(&self) -> usize;
}

/// The batched probe interface of the operator pipeline
/// (`mmjoin_core::pipeline`): one vocabulary over every table in the
/// zoo, single-threaded or concurrent. A probe operator receives a
/// cache-resident batch of `(key, rid)` tuples and invokes
/// `f(probe_tuple, build_payload)` per match — payload gathering is the
/// *sink's* job (late materialization), so implementations must not
/// assume the tuple's payload is a real attribute.
///
/// `unique` requests first-match probes (the study's PK assumption);
/// tables that physically cannot hold duplicate keys (arrays, the CHT)
/// ignore it.
pub trait ProbeOperator {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, f: F);
}

impl<H: KeyHash + Default> ProbeOperator for StChainedTable<H> {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, f: F) {
        JoinTable::probe_batch(self, probes, unique, f)
    }
}

impl<H: KeyHash + Default> ProbeOperator for StLinearTable<H> {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, f: F) {
        JoinTable::probe_batch(self, probes, unique, f)
    }
}

impl ProbeOperator for ArrayTable {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, f: F) {
        JoinTable::probe_batch(self, probes, unique, f)
    }
}

impl<H: KeyHash> ProbeOperator for ConcurrentLinearTable<H> {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], unique: bool, f: F) {
        self.probe_batch(probes, unique, f)
    }
}

impl ProbeOperator for ConcurrentArrayTable {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], _unique: bool, f: F) {
        // An array slot holds at most one payload: probes are unique by
        // construction.
        self.probe_batch(probes, f)
    }
}

impl<H: KeyHash> ProbeOperator for ConciseHashTable<H> {
    fn probe_op<F: FnMut(&Tuple, Payload)>(&self, probes: &[Tuple], _unique: bool, f: F) {
        // The bulkloaded CHT keeps one entry per distinct key.
        self.probe_batch(probes, f)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use mmjoin_util::rng::Xoshiro256;

    /// Reference semantics: multiset of payloads per key.
    pub fn reference_probe(tuples: &[Tuple], key: Key) -> Vec<Payload> {
        let mut v: Vec<Payload> = tuples
            .iter()
            .filter(|t| t.key == key)
            .map(|t| t.payload)
            .collect();
        v.sort_unstable();
        v
    }

    /// Exercise any `JoinTable` against reference semantics with random
    /// (possibly duplicate) keys.
    pub fn check_join_table<T: JoinTable>(spec: &TableSpec, tuples: &[Tuple], probes: &[Key]) {
        let mut table = T::with_spec(spec);
        for &t in tuples {
            table.insert(t);
        }
        for &k in probes {
            let mut got = Vec::new();
            table.probe(k, |p| got.push(p));
            got.sort_unstable();
            assert_eq!(got, reference_probe(tuples, k), "key {k}");
        }
    }

    pub fn random_tuples(n: usize, key_range: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Xoshiro256::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.below(key_range as u64) as u32 + 1, i as u32))
            .collect()
    }

    /// Differential kernel check: build with `insert_batch` and probe with
    /// `probe_batch` under forced-portable and forced-SIMD modes; both
    /// must be bit-identical to each other and (for non-unique probes) to
    /// reference semantics.
    pub fn check_batch_kernels<T: JoinTable>(spec: &TableSpec, tuples: &[Tuple], probes: &[Tuple]) {
        use mmjoin_util::kernels::{with_mode, KernelMode};
        let run = |mode: KernelMode, unique: bool| {
            with_mode(mode, || {
                let mut table = T::with_spec(spec);
                table.insert_batch(tuples);
                let mut got: Vec<(Key, Payload, Payload)> = Vec::new();
                table.probe_batch(probes, unique, |t, p| got.push((t.key, t.payload, p)));
                got
            })
        };
        for unique in [false, true] {
            let portable = run(KernelMode::Portable, unique);
            let simd = run(KernelMode::Simd, unique);
            assert_eq!(portable, simd, "unique={unique}");
        }
        // Non-unique batch probing must also match reference semantics.
        let got = run(KernelMode::Simd, false);
        for probe in probes {
            let mut hits: Vec<Payload> = got
                .iter()
                .filter(|(k, pp, _)| *k == probe.key && *pp == probe.payload)
                .map(|(_, _, bp)| *bp)
                .collect();
            hits.sort_unstable();
            assert_eq!(
                hits,
                reference_probe(tuples, probe.key),
                "key {}",
                probe.key
            );
        }
    }
}
