//! SHHJ — spilling hybrid hash join (this repo's 14th driver, not one
//! of the paper's thirteen; DESIGN.md §13).
//!
//! The paper's joins assume both relations fit in memory: under a
//! `JoinConfig::mem_limit`, a build side larger than the budget trips
//! [`JoinError::MemoryBudgetExceeded`] and the query fails. SHHJ turns
//! that cliff into a gradient, in the lineage of Grace/hybrid hash
//! joins:
//!
//! 1. **partition** — radix-partition R (same substrate as PRO, but
//!    with a budget-aware fanout). A residency plan charges the budget
//!    for every partition's tuples + hash table; each refused
//!    reservation *evicts* the largest still-resident partition to a
//!    disk run instead of failing the join. Resident partitions build
//!    their tables now.
//! 2. **probe** — stream S once: tuples of resident partitions probe
//!    immediately; tuples of evicted partitions are appended to S-side
//!    runs.
//! 3. **spill** — join each evicted partition pair from disk. The
//!    *smaller* side becomes the build side (role reversal); a pair
//!    whose smaller side still exceeds the budget is recursively
//!    repartitioned on the next-higher key bits (skew-safe) up to
//!    [`SPILL_RECURSION_LIMIT`], past which the typed
//!    [`JoinError::SpillRecursionLimit`] is returned.
//!
//! All spill files live in one [`SpillDir`] whose `Drop` removes them —
//! cancel/deadline/error paths cannot leak temp files. Cancellation and
//! deadlines are checked per morsel in the scans and per page inside
//! the spill I/O loops; spill file I/O failures surface as
//! [`JoinError::Io`].

use std::io;
use std::sync::Mutex;
use std::time::Instant;

use mmjoin_hashtable::{IdentityHash, JoinTable, StLinearTable, TableSpec};
use mmjoin_partition::histogram::histogram;
use mmjoin_partition::RadixFn;
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::pool::lock_recover;
use mmjoin_util::spill::{SpillDir, SpillRun, SpillWriter, READER_BYTES, WRITER_BYTES};
use mmjoin_util::tuple::Tuple;
use mmjoin_util::Relation;

use crate::config::JoinConfig;
use crate::exec::{merge_checksums, parallel_chunks, MORSEL};
use crate::executor::QueuePolicy;
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::stats::{JoinResult, SpillCounters};
use crate::Algorithm;

/// Maximum recursive repartitioning passes over one spilled partition
/// before giving up with [`JoinError::SpillRecursionLimit`]. With
/// [`SPILL_SUB_BITS`] fresh bits per pass this separates any key set
/// that is separable at all within 32-bit keys.
pub const SPILL_RECURSION_LIMIT: u32 = 6;

/// Radix bits consumed per recursive repartitioning pass (16-way).
const SPILL_SUB_BITS: u32 = 4;

/// Worker-local staging tuples per evicted partition before taking the
/// shared writer lock (one flush per 8 cache lines of tuples).
const STAGE_TUPLES: usize = 64;

/// Budget-aware fanout: classic hybrid-hash sizing. Small enough that
/// the per-spilled-partition writer buffers stay a fraction of the
/// budget, large enough that an average partition (tuples + table) has
/// a chance to fit; recursion handles what doesn't.
fn shhj_bits(cfg: &JoinConfig, r_len: usize) -> u32 {
    if let Some(b) = cfg.radix_bits {
        return b;
    }
    let default = cfg.bits_for_hash_tables(r_len);
    let Some(budget) = cfg.mem_limit else {
        return default;
    };
    let build_bytes = r_len * 8;
    // Partition cost ≈ tuples + linear table ≈ 5x slice bytes; want one
    // partition within ~half the budget.
    let want_fanout = (10 * build_bytes) / budget.max(1);
    // Two run writers per evicted partition; cap their buffers at ~1/4
    // of the budget.
    let max_fanout = budget / (8 * WRITER_BYTES);
    let fanout = want_fanout.clamp(2, max_fanout.max(2)).next_power_of_two();
    fanout
        .trailing_zeros()
        .clamp(1, crate::plan::MAX_RADIX_BITS)
}

fn io_error(ctx: &FaultCtx, e: &io::Error) -> JoinError {
    JoinError::Io {
        phase: ctx.phase(),
        source: e.to_string(),
    }
}

/// Fine-grained spill failpoints (`SHHJ.spill.write` / `.read` /
/// `.recurse`), resolved on the submitting thread where the sequential
/// spill phase runs — `arm_local` works. Worker-side loops are covered
/// by the per-phase keys (`SHHJ.partition` etc.) through
/// [`FaultCtx::tick`] like every other driver.
#[cfg(feature = "failpoints")]
fn spill_failpoint(point: &str) {
    use crate::fault::failpoints::{active, FailAction};
    match active(&format!("SHHJ.spill.{point}")) {
        Some(FailAction::Panic) => panic!("failpoint SHHJ.spill.{point} fired"),
        Some(FailAction::Sleep(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        None => {}
    }
}

#[cfg(not(feature = "failpoints"))]
fn spill_failpoint(_point: &str) {}

/// Spilling hybrid hash join driver.
pub fn join_shhj(r: &Relation, s: &Relation, cfg: &JoinConfig) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Shhj, cfg);
    let mut result = JoinResult::new(Algorithm::Shhj);
    let bits = shhj_bits(cfg, r.len());
    result.radix_bits = Some(bits);
    let f = RadixFn::new(bits);
    let parts = f.fanout();
    let unique = cfg.unique_build_keys;

    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // ---- partition phase: histogram, residency plan, scatter, build --
    ctx.enter_phase("partition");
    let start = Instant::now();
    let locals: Vec<Vec<usize>> =
        parallel_chunks(&cpool, r.tuples(), |_, chunk| histogram(chunk, f));
    let mut hist = vec![0usize; parts];
    for l in &locals {
        for (p, n) in l.iter().enumerate() {
            hist[p] += n;
        }
    }

    // Residency plan: charge tuples + table for every resident
    // partition, plus fixed spill overhead (two run writers and the
    // workers' staging buffers) per evicted one. Each refused
    // reservation evicts the costliest resident partition and retries.
    let part_cost: Vec<usize> = hist
        .iter()
        .map(|&n| {
            if n == 0 {
                0
            } else {
                n * 8 + TableSpec::hashed_partition(n, bits).table_bytes()
            }
        })
        .collect();
    let overhead_per_spilled = 2 * WRITER_BYTES + cfg.threads * STAGE_TUPLES * 8;
    let mut resident = vec![true; parts];
    let (resident_bytes, overhead_bytes) = loop {
        let resident_bytes: usize = (0..parts)
            .filter(|&p| resident[p])
            .map(|p| part_cost[p])
            .sum();
        let spilled = (0..parts).filter(|&p| !resident[p]).count();
        let overhead_bytes = spilled * overhead_per_spilled;
        match ctx.budget().try_reserve(resident_bytes + overhead_bytes) {
            Ok(()) => break (resident_bytes, overhead_bytes),
            Err(be) => {
                let victim = if cfg.spill {
                    (0..parts)
                        .filter(|&p| resident[p] && hist[p] > 0)
                        .max_by_key(|&p| part_cost[p])
                } else {
                    None
                };
                match victim {
                    Some(v) => resident[v] = false,
                    // Spilling disabled, or even the all-spilled
                    // overhead exceeds the budget: classic abort.
                    None => return Err(ctx.budget_error(resident_bytes + overhead_bytes, be)),
                }
            }
        }
    };
    let spilled_parts: Vec<usize> = (0..parts).filter(|&p| !resident[p]).collect();

    let spilldir = if spilled_parts.is_empty() {
        None
    } else {
        Some(SpillDir::create(cfg.spill_dir.as_deref()).map_err(|e| {
            ctx.budget().release(resident_bytes + overhead_bytes);
            io_error(&ctx, &e)
        })?)
    };
    let mut r_writers: Vec<Option<Mutex<SpillWriter>>> = (0..parts).map(|_| None).collect();
    let mut s_writers: Vec<Option<Mutex<SpillWriter>>> = (0..parts).map(|_| None).collect();
    if let Some(dir) = &spilldir {
        for &p in &spilled_parts {
            let rw = dir
                .writer(&format!("r-{p}"))
                .map_err(|e| io_error(&ctx, &e))?;
            let sw = dir
                .writer(&format!("s-{p}"))
                .map_err(|e| io_error(&ctx, &e))?;
            r_writers[p] = Some(Mutex::new(rw));
            s_writers[p] = Some(Mutex::new(sw));
        }
    }

    // Scatter R: resident tuples into chunk-local vectors (gathered as
    // slices at build time, like CPR), evicted tuples staged and
    // appended to the partition's run under its writer lock.
    let chunk_outs: Vec<Vec<Vec<Tuple>>> = parallel_chunks(&cpool, r.tuples(), |w, chunk| {
        let mut local: Vec<Vec<Tuple>> = (0..parts)
            .map(|p| {
                if resident[p] {
                    Vec::with_capacity(locals[w][p])
                } else {
                    Vec::with_capacity(STAGE_TUPLES.min(locals[w][p]))
                }
            })
            .collect();
        for block in chunk.chunks(MORSEL) {
            if ctx.tick() {
                return local;
            }
            for t in block {
                let p = f.part(t.key);
                local[p].push(*t);
                if !resident[p] && local[p].len() >= STAGE_TUPLES {
                    if let Err(e) = flush_stage(&r_writers[p], &mut local[p]) {
                        ctx.trip(io_error(&ctx, &e));
                        return local;
                    }
                }
            }
        }
        for &p in &spilled_parts {
            if let Err(e) = flush_stage(&r_writers[p], &mut local[p]) {
                ctx.trip(io_error(&ctx, &e));
                return local;
            }
        }
        local
    });

    // Build the resident partitions' tables (task-queue parallel).
    let build_order: Vec<usize> = (0..parts).filter(|&p| resident[p] && hist[p] > 0).collect();
    let built: Vec<(usize, StLinearTable<IdentityHash>)> =
        crate::exec::morsel_map(&pool, &build_order, parts, QueuePolicy::Shared, |p| {
            let spec = TableSpec::hashed_partition(hist[p].max(1), bits);
            let mut table = StLinearTable::<IdentityHash>::with_spec(&spec);
            if !ctx.tick() {
                for out in &chunk_outs {
                    table.insert_batch(&out[p]);
                }
            }
            (p, table)
        });
    let mut tables: Vec<Option<StLinearTable<IdentityHash>>> = (0..parts).map(|_| None).collect();
    for (p, t) in built {
        tables[p] = Some(t);
    }
    let r_spilled_bytes: u64 = spilled_parts
        .iter()
        .map(|&p| {
            r_writers[p]
                .as_ref()
                .map_or(0, |w| lock_recover(w).tuples() * 8)
        })
        .sum();
    result.push_phase_pool_spill(
        "partition",
        start.elapsed(),
        0.0,
        &pool,
        SpillCounters {
            bytes_spilled: r_spilled_bytes,
            partitions_spilled: spilled_parts.len() as u64,
            recursion_depth: 0,
        },
    );
    ctx.checkpoint(&result)?;

    // ---- probe phase: one pass over S ---------------------------------
    ctx.enter_phase("probe");
    let start = Instant::now();
    let probe_outs: Vec<JoinChecksum> = parallel_chunks(&cpool, s.tuples(), |_, chunk| {
        let mut c = JoinChecksum::new();
        let mut stage: Vec<Vec<Tuple>> = (0..parts).map(|_| Vec::new()).collect();
        for block in chunk.chunks(MORSEL) {
            if ctx.tick() {
                return c;
            }
            for t in block {
                let p = f.part(t.key);
                if resident[p] {
                    if let Some(table) = &tables[p] {
                        table.probe_batch(std::slice::from_ref(t), unique, |t, bp| {
                            c.add(t.key, bp, t.payload)
                        });
                    }
                } else {
                    stage[p].push(*t);
                    if stage[p].len() >= STAGE_TUPLES {
                        if let Err(e) = flush_stage(&s_writers[p], &mut stage[p]) {
                            ctx.trip(io_error(&ctx, &e));
                            return c;
                        }
                    }
                }
            }
        }
        for &p in &spilled_parts {
            if let Err(e) = flush_stage(&s_writers[p], &mut stage[p]) {
                ctx.trip(io_error(&ctx, &e));
                return c;
            }
        }
        c
    });
    let mut checksum = merge_checksums(probe_outs);
    let s_spilled_bytes: u64 = spilled_parts
        .iter()
        .map(|&p| {
            s_writers[p]
                .as_ref()
                .map_or(0, |w| lock_recover(w).tuples() * 8)
        })
        .sum();
    result.push_phase_pool_spill(
        "probe",
        start.elapsed(),
        0.0,
        &pool,
        SpillCounters {
            bytes_spilled: s_spilled_bytes,
            partitions_spilled: 0,
            recursion_depth: 0,
        },
    );
    ctx.checkpoint(&result)?;

    // ---- spill phase: join the evicted partitions from disk ----------
    ctx.enter_phase("spill");
    let start = Instant::now();
    // The resident tables and slices are done; hand their bytes back so
    // the recursion below can use the whole budget.
    drop(tables);
    drop(chunk_outs);
    ctx.budget().release(resident_bytes);
    let mut spill_counters = SpillCounters::default();
    if let Some(dir) = &spilldir {
        let mut pairs: Vec<(usize, SpillRun, SpillRun)> = Vec::with_capacity(spilled_parts.len());
        for &p in &spilled_parts {
            let rw = r_writers[p].take().expect("writer for spilled partition");
            let sw = s_writers[p].take().expect("writer for spilled partition");
            // The initial eviction bytes were counted in the partition
            // and probe phases; this phase counts only recursion writes.
            let r_run = into_inner_writer(rw)
                .finish()
                .map_err(|e| io_error(&ctx, &e))?;
            let s_run = into_inner_writer(sw)
                .finish()
                .map_err(|e| io_error(&ctx, &e))?;
            pairs.push((p, r_run, s_run));
        }
        // Writers are finished; their buffers are gone.
        ctx.budget().release(overhead_bytes);
        for (p, r_run, s_run) in pairs {
            if ctx.tick() {
                break;
            }
            let c = join_spilled(
                &ctx,
                dir,
                r_run,
                s_run,
                bits,
                0,
                p,
                unique,
                &mut spill_counters,
            )?;
            checksum.merge(c);
        }
    } else {
        ctx.budget().release(overhead_bytes);
    }
    result.set_checksum(checksum);
    result.push_phase_pool_spill("spill", start.elapsed(), 0.0, &pool, spill_counters);
    ctx.checkpoint(&result)?;
    Ok(result)
}

/// Append a worker's staged tuples to the partition's run under its
/// writer lock.
fn flush_stage(writer: &Option<Mutex<SpillWriter>>, stage: &mut Vec<Tuple>) -> io::Result<()> {
    if stage.is_empty() {
        return Ok(());
    }
    let Some(w) = writer else {
        stage.clear();
        return Ok(());
    };
    let res = lock_recover(w).push_slice(stage);
    stage.clear();
    res
}

fn into_inner_writer(m: Mutex<SpillWriter>) -> SpillWriter {
    m.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Join one spilled partition pair: load the smaller side if it fits
/// (role reversal), else recursively repartition both runs on the next
/// [`SPILL_SUB_BITS`] key bits.
#[allow(clippy::too_many_arguments)]
fn join_spilled(
    ctx: &FaultCtx,
    dir: &SpillDir,
    r_run: SpillRun,
    s_run: SpillRun,
    consumed_bits: u32,
    depth: u32,
    partition: usize,
    unique: bool,
    counters: &mut SpillCounters,
) -> Result<JoinChecksum, JoinError> {
    counters.recursion_depth = counters.recursion_depth.max(depth);
    let mut c = JoinChecksum::new();
    if r_run.is_empty() || s_run.is_empty() || ctx.should_stop() {
        return Ok(c);
    }

    // Role reversal: build from whichever side is smaller. The checksum
    // is (key, R payload, S payload) regardless of orientation, and a
    // reversed build side (S) can hold duplicate keys even under the
    // PK assumption, so reversed probes always scan all matches.
    let reverse = s_run.tuples() < r_run.tuples();
    let (build_run, probe_run) = if reverse {
        (&s_run, &r_run)
    } else {
        (&r_run, &s_run)
    };
    let build_len = build_run.tuples() as usize;
    let spec = TableSpec::hashed_partition(build_len, consumed_bits.min(31));
    let need = build_len * 8 + spec.table_bytes() + 2 * READER_BYTES;
    if ctx.budget().try_reserve(need).is_ok() {
        let res = (|| -> Result<(), JoinError> {
            spill_failpoint("read");
            let build = build_run.read_all().map_err(|e| io_error(ctx, &e))?;
            let mut table = StLinearTable::<IdentityHash>::with_spec(&spec);
            table.insert_batch(&build);
            let probe_unique = if reverse { false } else { unique };
            let mut reader = probe_run.reader().map_err(|e| io_error(ctx, &e))?;
            while let Some(page) = reader.next_page().map_err(|e| io_error(ctx, &e))? {
                if ctx.tick() {
                    break;
                }
                if reverse {
                    table.probe_batch(page, probe_unique, |t, bp| c.add(t.key, t.payload, bp));
                } else {
                    table.probe_batch(page, probe_unique, |t, bp| c.add(t.key, bp, t.payload));
                }
            }
            Ok(())
        })();
        ctx.budget().release(need);
        res?;
        return Ok(c);
    }

    // Too big to load: recursively repartition on fresh key bits.
    if depth >= SPILL_RECURSION_LIMIT || consumed_bits >= 32 {
        return Err(JoinError::SpillRecursionLimit {
            partition,
            depth,
            limit: SPILL_RECURSION_LIMIT,
        });
    }
    spill_failpoint("recurse");
    // Sub-fanout the budget can afford: 2 run writers per sub-partition
    // plus the parent reader must fit. Floor of 2 (below that the
    // charge fails loudly); ceiling of SPILL_SUB_BITS.
    let limit = ctx.budget().limit();
    let affordable = limit
        .saturating_sub(READER_BYTES)
        .checked_div(2 * WRITER_BYTES)
        .unwrap_or(0)
        .max(2);
    let afford_bits = usize::BITS - 1 - affordable.leading_zeros();
    let sub_bits = SPILL_SUB_BITS
        .min(afford_bits)
        .max(1)
        .min(32 - consumed_bits);
    let f = RadixFn::pass(sub_bits, consumed_bits);
    let overhead = 2 * f.fanout() * WRITER_BYTES + READER_BYTES;
    let _ov = ctx.charge(overhead)?;
    counters.partitions_spilled += 1;
    let sub_r = repartition(
        ctx,
        dir,
        &r_run,
        f,
        &format!("p{partition}-d{depth}-r"),
        counters,
    )?;
    let sub_s = repartition(
        ctx,
        dir,
        &s_run,
        f,
        &format!("p{partition}-d{depth}-s"),
        counters,
    )?;
    // Parent runs delete their files now; sub-runs replace them, so the
    // disk high-water mark stays ~2x the spilled data per level.
    drop(r_run);
    drop(s_run);
    drop(_ov);
    for (rr, ss) in sub_r.into_iter().zip(sub_s) {
        if ctx.should_stop() {
            break;
        }
        let sub = join_spilled(
            ctx,
            dir,
            rr,
            ss,
            consumed_bits + sub_bits,
            depth + 1,
            partition,
            unique,
            counters,
        )?;
        c.merge(sub);
    }
    Ok(c)
}

/// Split one run into `f.fanout()` sub-runs on the pass's key bits.
fn repartition(
    ctx: &FaultCtx,
    dir: &SpillDir,
    run: &SpillRun,
    f: RadixFn,
    tag: &str,
    counters: &mut SpillCounters,
) -> Result<Vec<SpillRun>, JoinError> {
    let fanout = f.fanout();
    let mut writers: Vec<SpillWriter> = Vec::with_capacity(fanout);
    for i in 0..fanout {
        writers.push(
            dir.writer(&format!("{tag}-{i}"))
                .map_err(|e| io_error(ctx, &e))?,
        );
    }
    let mut reader = run.reader().map_err(|e| io_error(ctx, &e))?;
    while let Some(page) = reader.next_page().map_err(|e| io_error(ctx, &e))? {
        if ctx.tick() {
            break;
        }
        spill_failpoint("write");
        for t in page {
            writers[f.part(t.key)]
                .push(*t)
                .map_err(|e| io_error(ctx, &e))?;
        }
    }
    let mut runs = Vec::with_capacity(fanout);
    for w in writers {
        let r = w.finish().map_err(|e| io_error(ctx, &e))?;
        counters.bytes_spilled += r.bytes();
        runs.push(r);
    }
    Ok(runs)
}
