//! Thread-parallel execution helpers shared by all joins.
//!
//! Every helper here runs on a [`WorkerPool`] — in practice the
//! persistent [`Executor`](crate::executor::Executor) obtained from
//! [`JoinConfig::executor`](crate::config::JoinConfig::executor) — so a
//! join's phases share one set of worker threads instead of spawning
//! their own.
//!
//! The pool's `broadcast` return is the **phase barrier**: it carries
//! release/acquire semantics, so all writes performed inside a phase
//! happen-before anything the caller does afterwards. The lock-free
//! tables' relaxed probes are correct only under that edge (build phase
//! barrier before probe phase); see `mmjoin_core::executor` for how the
//! persistent pool provides it without a thread join.

use std::sync::Mutex;

use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::chunk_range;
use mmjoin_util::pool::{broadcast_map, into_inner_recover, lock_recover, WorkerPool};
use mmjoin_util::tuple::Tuple;

use crate::executor::{build_queues, Executor, QueuePolicy};

/// Tuples processed between cancellation/deadline checks inside a
/// worker's chunk — shared by every chunk-parallel driver phase and the
/// fused pipeline's probe loop.
pub(crate) const MORSEL: usize = 4096;

/// Run `f(worker_idx, chunk)` over equal chunks of `items` on the pool;
/// collect the per-worker results in worker order.
pub fn parallel_chunks<R, F>(pool: &dyn WorkerPool, items: &[Tuple], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &[Tuple]) -> R + Sync,
{
    let active = pool.workers().clamp(1, items.len().max(1));
    broadcast_map(pool, active, |t| {
        f(t, &items[chunk_range(items.len(), active, t)])
    })
}

/// Merge per-worker checksums.
pub fn merge_checksums(parts: Vec<JoinChecksum>) -> JoinChecksum {
    let mut total = JoinChecksum::new();
    for p in parts {
        total.merge(p);
    }
    total
}

/// Run `worker(worker_idx)` on every pool worker and merge their
/// checksums — the shape of every task-queue join phase.
pub fn parallel_workers<F>(pool: &dyn WorkerPool, worker: F) -> JoinChecksum
where
    F: Fn(usize) -> JoinChecksum + Sync,
{
    merge_checksums(broadcast_map(pool, pool.workers(), worker))
}

/// Run a co-partition join phase as a morsel queue on the executor:
/// `order` lists the partitions to join (already filtered of skewed
/// ones), `parts` is the total fanout (for NUMA-node mapping), and
/// `f(p)` joins one partition and returns its checksum. `policy` decides
/// queue assignment — [`QueuePolicy::Shared`] reproduces the original
/// sequential scheduling, [`QueuePolicy::NumaLocal`] the *iS variants'
/// NUMA-aware scheduling with work stealing.
pub fn join_morsels<F>(
    pool: &Executor,
    order: &[usize],
    parts: usize,
    policy: QueuePolicy,
    f: F,
) -> JoinChecksum
where
    F: Fn(usize) -> JoinChecksum + Sync,
{
    let queues = build_queues(order, parts, policy);
    let slots: Vec<Mutex<JoinChecksum>> = (0..pool.workers())
        .map(|_| Mutex::new(JoinChecksum::new()))
        .collect();
    pool.run_morsels(&queues, &|w, p| {
        let c = f(p);
        lock_recover(&slots[w]).merge(c);
    });
    merge_checksums(slots.into_iter().map(into_inner_recover).collect())
}

/// Morsel-queue phase collecting one arbitrary result per task (used by
/// phases that materialize per-partition data, e.g. MWAY's sort phase).
/// Result order is unspecified — callers sort by partition id.
pub fn morsel_map<R, F>(
    pool: &Executor,
    order: &[usize],
    parts: usize,
    policy: QueuePolicy,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let queues = build_queues(order, parts, policy);
    let slots: Vec<Mutex<Vec<R>>> = (0..pool.workers())
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    pool.run_morsels(&queues, &|w, p| {
        let r = f(p);
        lock_recover(&slots[w]).push(r);
    });
    slots.into_iter().flat_map(into_inner_recover).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use mmjoin_util::pool::ScopedPool;

    #[test]
    fn chunks_cover_all_items() {
        let items: Vec<Tuple> = (0..1000).map(|i| Tuple::new(i + 1, i)).collect();
        let exec = Executor::new(7);
        let counts = parallel_chunks(&exec, &items, |_, chunk| chunk.len());
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert_eq!(counts.len(), 7);
    }

    #[test]
    fn results_in_thread_order() {
        let items: Vec<Tuple> = (0..100).map(|i| Tuple::new(i + 1, i)).collect();
        let pool = ScopedPool::new(4);
        let firsts = parallel_chunks(&pool, &items, |_, chunk| chunk[0].key);
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn workers_merge() {
        let exec = Executor::new(8);
        let total = parallel_workers(&exec, |t| {
            let mut c = JoinChecksum::new();
            c.add(t as u32 + 1, 0, 0);
            c
        });
        assert_eq!(total.count, 8);
    }

    #[test]
    fn empty_items() {
        let exec = Executor::new(4);
        let out = parallel_chunks(&exec, &[], |_, chunk| chunk.len());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn morsels_join_every_partition_once() {
        let exec = Executor::new(4);
        let order: Vec<usize> = (0..37).collect();
        for policy in [QueuePolicy::Shared, QueuePolicy::NumaLocal { nodes: 4 }] {
            let total = join_morsels(&exec, &order, 37, policy, |p| {
                let mut c = JoinChecksum::new();
                c.add(p as u32 + 1, 0, 0);
                c
            });
            assert_eq!(total.count, 37, "{policy:?}");
        }
    }

    #[test]
    fn morsel_map_collects_all() {
        let exec = Executor::new(3);
        let order: Vec<usize> = (0..20).collect();
        let mut got = morsel_map(
            &exec,
            &order,
            20,
            QueuePolicy::NumaLocal { nodes: 2 },
            |p| p,
        );
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
