//! Thread-parallel execution helpers shared by all joins.

use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::chunk_range;
use mmjoin_util::tuple::Tuple;

/// Run `f(thread_idx, chunk)` over equal chunks of `items` on `threads`
/// scoped threads; collect the per-thread results in thread order.
///
/// The scope join is the phase barrier that publishes all writes — the
/// happens-before edge the lock-free tables' relaxed probes rely on.
pub fn parallel_chunks<R, F>(items: &[Tuple], threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &[Tuple]) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let chunk = &items[chunk_range(items.len(), threads, t)];
                let f = &f;
                s.spawn(move || f(t, chunk))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Merge per-thread checksums.
pub fn merge_checksums(parts: Vec<JoinChecksum>) -> JoinChecksum {
    let mut total = JoinChecksum::new();
    for p in parts {
        total.merge(p);
    }
    total
}

/// Run `worker(thread_idx)` on `threads` scoped threads and merge their
/// checksums — the shape of every task-queue join phase.
pub fn parallel_workers<F>(threads: usize, worker: F) -> JoinChecksum
where
    F: Fn(usize) -> JoinChecksum + Sync,
{
    let threads = threads.max(1);
    let parts: Vec<JoinChecksum> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let worker = &worker;
                s.spawn(move || worker(t))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    merge_checksums(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_items() {
        let items: Vec<Tuple> = (0..1000).map(|i| Tuple::new(i + 1, i)).collect();
        let counts = parallel_chunks(&items, 7, |_, chunk| chunk.len());
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert_eq!(counts.len(), 7);
    }

    #[test]
    fn results_in_thread_order() {
        let items: Vec<Tuple> = (0..100).map(|i| Tuple::new(i + 1, i)).collect();
        let firsts = parallel_chunks(&items, 4, |_, chunk| chunk[0].key);
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn workers_merge() {
        let total = parallel_workers(8, |t| {
            let mut c = JoinChecksum::new();
            c.add(t as u32 + 1, 0, 0);
            c
        });
        assert_eq!(total.count, 8);
    }

    #[test]
    fn empty_items() {
        let out = parallel_chunks(&[], 4, |_, chunk| chunk.len());
        assert_eq!(out, vec![0]);
    }
}
