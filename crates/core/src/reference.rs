//! Reference join for correctness verification.
//!
//! A deliberately boring single-threaded hash join over `std` collections:
//! every one of the thirteen algorithms must produce exactly this
//! checksum and match count on every workload.

use std::collections::HashMap;

use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::Relation;

/// Join `r ⋈ s` on key and return the verification checksum.
pub fn reference_join(r: &Relation, s: &Relation) -> JoinChecksum {
    let mut table: HashMap<u32, Vec<u32>> = HashMap::with_capacity(r.len());
    for t in r.tuples() {
        table.entry(t.key).or_default().push(t.payload);
    }
    let mut c = JoinChecksum::new();
    for t in s.tuples() {
        if let Some(payloads) = table.get(&t.key) {
            for &bp in payloads {
                c.add(t.key, bp, t.payload);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_util::{Placement, Tuple};

    #[test]
    fn counts_cross_products() {
        let r = Relation::from_tuples(
            &[Tuple::new(1, 10), Tuple::new(1, 11), Tuple::new(2, 20)],
            Placement::Interleaved,
        );
        let s = Relation::from_tuples(
            &[Tuple::new(1, 100), Tuple::new(1, 101), Tuple::new(3, 300)],
            Placement::Interleaved,
        );
        let c = reference_join(&r, &s);
        assert_eq!(c.count, 4); // 2 build × 2 probe matches on key 1
    }

    #[test]
    fn empty_sides() {
        let empty = Relation::from_tuples(&[], Placement::Interleaved);
        let r = Relation::from_tuples(&[Tuple::new(1, 0)], Placement::Interleaved);
        assert_eq!(reference_join(&empty, &r).count, 0);
        assert_eq!(reference_join(&r, &empty).count, 0);
    }
}
