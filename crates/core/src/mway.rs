//! MWAY — the multi-way sort-merge join (Balkesen et al. 2013).
//!
//! Pipeline: (1) one radix pass with SWWCB into a *small* number of
//! partitions; (2) each partition's build and probe sides are sorted
//! independently — runs formed and merged with sorting networks, combined
//! with a bandwidth-saving multiway (loser-tree) merge; (3) co-partitions
//! are merge-joined.
//!
//! The original requires a power-of-two thread count; this implementation
//! has no such restriction (tasks come from a queue), but the harness
//! mirrors the paper and caps MWAY at 32 threads in Figure 1-style runs.

use std::time::Instant;

use mmjoin_partition::{partition_parallel_on, task_order, RadixFn, ScatterMode, ScheduleOrder};
use mmjoin_sort::{sort_packed, LoserTree};
use mmjoin_util::alloc::AlignedVec;
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::tuple::Tuple;
use mmjoin_util::{next_pow2, Relation};

use crate::config::JoinConfig;
use crate::exec::{join_morsels, morsel_map};
use crate::executor::QueuePolicy;
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::spec::{self, ops, PartitionLayout, PartitionWrites};
use crate::stats::JoinResult;
use crate::Algorithm;

/// Sub-runs sorted independently and combined by the multiway merge.
const MERGE_WAYS: usize = 4;

/// MWAY join.
pub fn join_mway(r: &Relation, s: &Relation, cfg: &JoinConfig) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Mway, cfg);
    let mut result = JoinResult::new(Algorithm::Mway);
    // Few partitions: enough for task parallelism, not cache-sized.
    let parts = next_pow2(cfg.threads * 4).max(4);
    let bits = parts.trailing_zeros();
    result.radix_bits = Some(bits);
    let f = RadixFn::new(bits);

    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // Phase 1: partition both inputs (single pass, SWWCB).
    ctx.enter_phase("partition");
    // Partitioned copies of both inputs (8 B/tuple) plus the per-worker
    // SWWCB pools (one cache line per partition per worker).
    let _part_charge = ctx.charge((r.len() + s.len()) * 8 + cfg.threads * parts * 64)?;
    let start = Instant::now();
    let pr = partition_parallel_on(r.tuples(), f, &cpool, ScatterMode::Swwcb);
    let ps = partition_parallel_on(s.tuples(), f, &cpool, ScatterMode::Swwcb);
    let part_wall = start.elapsed();
    let mut part_sim = 0.0;
    for (rel, len) in [(r, r.len()), (s, s.len())] {
        let specs = spec::partition_pass_specs(
            cfg,
            len,
            rel.placement(),
            parts,
            true,
            PartitionWrites::GlobalInterleaved,
        );
        let order: Vec<usize> = (0..specs.len()).collect();
        part_sim += spec::run_phase(cfg, &specs, &order).0;
    }
    result.push_phase_pool("partition", part_wall, part_sim, &pool);
    ctx.checkpoint(&result)?;

    // Phase 2: sort every partition of both sides (morsel per partition).
    ctx.enter_phase("sort");
    // Packed sort runs: both sides copied into u64 arrays.
    let _sort_charge = ctx.charge((r.len() + s.len()) * 8)?;
    let start = Instant::now();
    let sort_order: Vec<usize> = (0..parts).collect();
    let sorted: Vec<(usize, AlignedVec<u64>, AlignedVec<u64>)> = {
        let mut slots = morsel_map(&pool, &sort_order, parts, QueuePolicy::Shared, |p| {
            if ctx.tick() {
                return (p, AlignedVec::new(), AlignedVec::new());
            }
            let mut scratch = AlignedVec::new();
            (
                p,
                sort_partition(pr.partition(p), &mut scratch),
                sort_partition(ps.partition(p), &mut scratch),
            )
        });
        slots.sort_by_key(|(p, _, _)| *p);
        slots
    };
    let sort_wall = start.elapsed();
    let sort_specs = sort_phase_specs(cfg, &pr, &ps);
    let order = task_order(parts, ScheduleOrder::Sequential);
    let (sort_sim, _) = spec::run_phase(cfg, &sort_specs, &order);
    result.push_phase_pool("sort", sort_wall, sort_sim, &pool);
    ctx.checkpoint(&result)?;

    // Phase 3: merge-join co-partitions.
    ctx.enter_phase("join");
    let start = Instant::now();
    let sorted_ref = &sorted;
    let checksum = join_morsels(&pool, &sort_order, parts, QueuePolicy::Shared, |p| {
        let mut c = JoinChecksum::new();
        if ctx.tick() {
            return c;
        }
        let (_, ref rs, ref ss) = sorted_ref[p];
        merge_join_sorted(rs, ss, &mut c);
        c
    });
    let join_wall = start.elapsed();
    result.set_checksum(checksum);
    let r_sizes: Vec<usize> = (0..parts).map(|p| pr.part_len(p)).collect();
    let s_sizes: Vec<usize> = (0..parts).map(|p| ps.part_len(p)).collect();
    let tasks = spec::join_task_specs(
        cfg,
        &r_sizes,
        &s_sizes,
        PartitionLayout::Contiguous,
        ops::MERGE_JOIN,
        ops::MERGE_JOIN,
        0.0, // no table: pure streaming merge
    );
    let (join_sim, _) = spec::run_phase(cfg, &tasks, &order);
    result.push_phase_pool("join", join_wall, join_sim, &pool);
    ctx.checkpoint(&result)?;
    Ok(result)
}

/// Sort one partition: pack tuples, sort MERGE_WAYS sub-runs with the
/// network mergesort, combine with the loser-tree multiway merge.
fn sort_partition(tuples: &[Tuple], scratch: &mut AlignedVec<u64>) -> AlignedVec<u64> {
    let mut packed = AlignedVec::with_capacity(tuples.len());
    for t in tuples {
        packed.push(t.pack());
    }
    let n = packed.len();
    if n <= 1 {
        return packed;
    }
    if n < MERGE_WAYS * 8 {
        sort_packed(&mut packed, scratch);
        return packed;
    }
    let run_len = n.div_ceil(MERGE_WAYS);
    for chunk in packed.chunks_mut(run_len) {
        sort_packed(chunk, scratch);
    }
    let runs: Vec<&[u64]> = packed.chunks(run_len).collect();
    let mut merged = AlignedVec::with_capacity(n);
    for v in LoserTree::new(runs) {
        merged.push(v);
    }
    merged
}

/// Merge-join two key-sorted packed arrays (duplicates expand to the
/// cross product, like every hash variant).
fn merge_join_sorted(rs: &[u64], ss: &[u64], c: &mut JoinChecksum) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < rs.len() && j < ss.len() {
        let rk = (rs[i] >> 32) as u32;
        let sk = (ss[j] >> 32) as u32;
        if rk < sk {
            i += 1;
        } else if sk < rk {
            j += 1;
        } else {
            let i_end = rs[i..]
                .iter()
                .take_while(|&&v| (v >> 32) as u32 == rk)
                .count()
                + i;
            let j_end = ss[j..]
                .iter()
                .take_while(|&&v| (v >> 32) as u32 == rk)
                .count()
                + j;
            for &rv in &rs[i..i_end] {
                for &sv in &ss[j..j_end] {
                    c.add(rk, rv as u32, sv as u32);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// Cost specs for the sort phase: each partition streams its bytes ~3×
/// (run formation + one multiway pass) and pays n·log2(n) compares.
fn sort_phase_specs(
    cfg: &JoinConfig,
    pr: &mmjoin_partition::PartitionedRelation,
    ps: &mmjoin_partition::PartitionedRelation,
) -> Vec<mmjoin_numamodel::TaskSpec> {
    let parts = pr.parts();
    let nodes = cfg.topology.nodes;
    (0..parts)
        .map(|p| {
            let n = (pr.part_len(p) + ps.part_len(p)) as f64;
            let bytes = n * 8.0;
            let mut spec = mmjoin_numamodel::TaskSpec::new(nodes);
            let node = mmjoin_partition::task::node_of_partition(p, parts, nodes);
            spec.stream(node, bytes * 3.0);
            spec.cpu(n * (n.max(2.0)).log2() * ops::SORT_CMP);
            spec.tlb(spec::seq_tlb_misses(bytes * 3.0, cfg));
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};
    use mmjoin_util::Placement;

    #[test]
    fn mway_matches_reference() {
        let n = 5_000;
        let r = gen_build_dense(n, 31, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(20_000, n, 32, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        for threads in [1, 3, 4, 8] {
            let mut cfg = JoinConfig::new(threads);
            cfg.simulate = false;
            let res = join_mway(&r, &s, &cfg).unwrap();
            assert_eq!(res.matches, expect.count, "threads={threads}");
            assert_eq!(res.checksum, expect.digest);
        }
    }

    #[test]
    fn mway_duplicates_cross_product() {
        let n = 500;
        let r = gen_build_dense(n, 33, Placement::Interleaved);
        let s = gen_probe_zipf(5_000, n, 0.99, 34, Placement::Interleaved);
        let expect = reference_join(&r, &s);
        let mut cfg = JoinConfig::new(4);
        cfg.simulate = false;
        let res = join_mway(&r, &s, &cfg).unwrap();
        assert_eq!(res.matches, expect.count);
        assert_eq!(res.checksum, expect.digest);
    }

    #[test]
    fn merge_join_cross_products() {
        let rs = vec![(5u64 << 32) | 1, (5u64 << 32) | 2, (7u64 << 32) | 3];
        let ss = vec![(5u64 << 32) | 10, (5u64 << 32) | 11, (6u64 << 32) | 12];
        let mut c = JoinChecksum::new();
        merge_join_sorted(&rs, &ss, &mut c);
        assert_eq!(c.count, 4);
    }

    #[test]
    fn mway_phases() {
        let r = gen_build_dense(1_000, 1, Placement::Interleaved);
        let s = gen_probe_fk(2_000, 1_000, 2, Placement::Interleaved);
        let cfg = JoinConfig::new(2);
        let res = join_mway(&r, &s, &cfg).unwrap();
        let names: Vec<&str> = res.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["partition", "sort", "join"]);
    }
}
