//! NOP and NOPA — the no-partitioning joins.
//!
//! NOP (Lang et al.): all threads concurrently insert their chunk of the
//! build relation into one global lock-free linear-probing table
//! (interleaved over all NUMA nodes), then probe their chunk of the probe
//! relation. Simultaneous multi-threading and out-of-order execution are
//! left to hide the cache misses — no hardware knowledge needed.
//!
//! NOPA (this paper): same skeleton, but the "table" is a plain payload
//! array indexed by the (dense) key.

use std::time::Instant;

use mmjoin_hashtable::{ConcurrentArrayTable, ConcurrentLinearTable, IdentityHash};
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::Relation;

use crate::config::JoinConfig;
use crate::exec::{merge_checksums, parallel_chunks, MORSEL};
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::spec::{self, ops};
use crate::stats::JoinResult;
use crate::Algorithm;

/// NOP: lock-free linear-probing global table.
pub fn join_nop(r: &Relation, s: &Relation, cfg: &JoinConfig) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Nop, cfg);
    let mut result = JoinResult::new(Algorithm::Nop);
    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    // Build phase.
    ctx.enter_phase("build");
    // The global table: capacity rounds |R| up to the next power of two
    // at 2x load headroom, 8 B per slot.
    let _table_charge = ctx.charge((2 * r.len().max(1)).next_power_of_two() * 8)?;
    let table = ConcurrentLinearTable::<IdentityHash>::with_capacity(r.len());
    let table_bytes = table.memory_bytes() as f64;
    let start = Instant::now();
    parallel_chunks(&cpool, r.tuples(), |_, chunk| {
        for block in chunk.chunks(MORSEL) {
            if ctx.should_stop() {
                return;
            }
            table.insert_batch(block);
        }
    });
    let build_wall = start.elapsed();
    let build_specs =
        spec::global_build_specs(cfg, r.len(), r.placement(), table_bytes, ops::BUILD);
    let order: Vec<usize> = (0..build_specs.len()).collect();
    let (build_sim, build_phase) = spec::run_phase(cfg, &build_specs, &order);
    result.push_phase_pool("build", build_wall, build_sim, &pool);
    if cfg.keep_timelines {
        result.timelines.push(("build", build_phase));
    }
    ctx.checkpoint(&result)?;

    // Probe phase.
    ctx.enter_phase("probe");
    let start = Instant::now();
    let checksums = parallel_chunks(&cpool, s.tuples(), |_, chunk| {
        let mut c = JoinChecksum::new();
        for block in chunk.chunks(MORSEL) {
            if ctx.should_stop() {
                return c;
            }
            table.probe_batch(block, cfg.unique_build_keys, |t, bp| {
                c.add(t.key, bp, t.payload)
            });
        }
        c
    });
    let probe_wall = start.elapsed();
    result.set_checksum(merge_checksums(checksums));
    let probe_specs =
        spec::global_probe_specs(cfg, s.len(), s.placement(), table_bytes, 1.0, ops::PROBE);
    let order: Vec<usize> = (0..probe_specs.len()).collect();
    let (probe_sim, probe_phase) = spec::run_phase(cfg, &probe_specs, &order);
    result.push_phase_pool("probe", probe_wall, probe_sim, &pool);
    if cfg.keep_timelines {
        result.timelines.push(("probe", probe_phase));
    }
    ctx.checkpoint(&result)?;
    Ok(result)
}

/// NOPA: global payload array over the key domain.
pub fn join_nopa(r: &Relation, s: &Relation, cfg: &JoinConfig) -> Result<JoinResult, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Nopa, cfg);
    let mut result = JoinResult::new(Algorithm::Nopa);
    let pool = cfg.executor();
    pool.start_recording(cfg.profile.enabled);
    let cpool = CtxPool::new(pool.as_ref(), &ctx);

    ctx.enter_phase("build");
    let domain = cfg.domain(r.len());
    // The payload array: one 8 B slot per domain value.
    let _table_charge = ctx.charge((domain + 1) * 8)?;
    let table = ConcurrentArrayTable::new(domain + 1, 1);
    let table_bytes = table.memory_bytes() as f64;

    let start = Instant::now();
    parallel_chunks(&cpool, r.tuples(), |_, chunk| {
        for block in chunk.chunks(MORSEL) {
            if ctx.should_stop() {
                return;
            }
            table.insert_batch(block);
        }
    });
    let build_wall = start.elapsed();
    let build_specs =
        spec::global_build_specs(cfg, r.len(), r.placement(), table_bytes, ops::ARRAY);
    let order: Vec<usize> = (0..build_specs.len()).collect();
    let (build_sim, _) = spec::run_phase(cfg, &build_specs, &order);
    result.push_phase_pool("build", build_wall, build_sim, &pool);
    ctx.checkpoint(&result)?;

    ctx.enter_phase("probe");
    let start = Instant::now();
    let checksums = parallel_chunks(&cpool, s.tuples(), |_, chunk| {
        let mut c = JoinChecksum::new();
        for block in chunk.chunks(MORSEL) {
            if ctx.should_stop() {
                return c;
            }
            table.probe_batch(block, |t, bp| c.add(t.key, bp, t.payload));
        }
        c
    });
    let probe_wall = start.elapsed();
    result.set_checksum(merge_checksums(checksums));
    let probe_specs =
        spec::global_probe_specs(cfg, s.len(), s.placement(), table_bytes, 1.0, ops::ARRAY);
    let order: Vec<usize> = (0..probe_specs.len()).collect();
    let (probe_sim, _) = spec::run_phase(cfg, &probe_specs, &order);
    result.push_phase_pool("probe", probe_wall, probe_sim, &pool);
    ctx.checkpoint(&result)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
    use mmjoin_util::Placement;

    fn workload(n: usize) -> (Relation, Relation) {
        let r = gen_build_dense(n, 1, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(n * 4, n, 2, Placement::Chunked { parts: 4 });
        (r, s)
    }

    #[test]
    fn nop_matches_reference() {
        let (r, s) = workload(5_000);
        let expect = reference_join(&r, &s);
        for threads in [1, 2, 8] {
            let mut cfg = JoinConfig::new(threads);
            cfg.simulate = false;
            let got = join_nop(&r, &s, &cfg).unwrap();
            assert_eq!(got.matches, expect.count, "threads={threads}");
            assert_eq!(got.checksum, expect.digest);
        }
    }

    #[test]
    fn nopa_matches_reference() {
        let (r, s) = workload(5_000);
        let expect = reference_join(&r, &s);
        let mut cfg = JoinConfig::new(4);
        cfg.simulate = false;
        let got = join_nopa(&r, &s, &cfg).unwrap();
        assert_eq!(got.matches, expect.count);
        assert_eq!(got.checksum, expect.digest);
    }

    #[test]
    fn phases_recorded() {
        let (r, s) = workload(1_000);
        let cfg = JoinConfig::new(2);
        let res = join_nop(&r, &s, &cfg).unwrap();
        assert_eq!(res.phases.len(), 2);
        assert!(res.total_sim() > 0.0, "simulation produced time");
    }

    #[test]
    fn empty_probe() {
        let r = gen_build_dense(100, 1, Placement::Interleaved);
        let s = Relation::from_tuples(&[], Placement::Interleaved);
        let cfg = JoinConfig::new(2);
        assert_eq!(join_nop(&r, &s, &cfg).unwrap().matches, 0);
        assert_eq!(join_nopa(&r, &s, &cfg).unwrap().matches, 0);
    }
}
