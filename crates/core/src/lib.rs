//! The thirteen relational equi-joins of Schuh, Chen & Dittrich,
//! "An Experimental Comparison of Thirteen Relational Equi-Joins in Main
//! Memory" (SIGMOD 2016) — reimplemented in Rust.
//!
//! # The algorithms (Table 2 of the paper)
//!
//! | Variant | Family | Partitioning | Table | Scheduling |
//! |---------|--------|--------------|-------|------------|
//! | [`Algorithm::Prb`]   | partitioned | 2-pass, no SWWCB | chained | sequential |
//! | [`Algorithm::Nop`]   | no-partition | — | lock-free linear | — |
//! | [`Algorithm::Chtj`]  | no-partition | (build bulkload only) | concise HT | — |
//! | [`Algorithm::Mway`]  | sort-merge | 1-pass + SWWCB | sort networks | per-partition |
//! | [`Algorithm::Nopa`]  | no-partition | — | array | — |
//! | [`Algorithm::Pro`]   | partitioned | 1-pass + SWWCB | chained | sequential |
//! | [`Algorithm::Prl`]   | partitioned | 1-pass + SWWCB | linear | sequential |
//! | [`Algorithm::Pra`]   | partitioned | 1-pass + SWWCB | array | sequential |
//! | [`Algorithm::Cprl`]  | partitioned | chunked + SWWCB | linear | sequential |
//! | [`Algorithm::Cpra`]  | partitioned | chunked + SWWCB | array | sequential |
//! | [`Algorithm::ProIs`] | partitioned | 1-pass + SWWCB | chained | NUMA round-robin |
//! | [`Algorithm::PrlIs`] | partitioned | 1-pass + SWWCB | linear | NUMA round-robin |
//! | [`Algorithm::PraIs`] | partitioned | 1-pass + SWWCB | array | NUMA round-robin |
//!
//! # Quickstart
//!
//! Plan a join with the fluent [`Join`] builder; misconfigurations come
//! back as typed [`JoinError`]s instead of panicking mid-phase:
//!
//! ```
//! use mmjoin_core::{Algorithm, Join};
//! use mmjoin_datagen::{gen_build_dense, gen_probe_fk};
//! use mmjoin_util::Placement;
//!
//! let r = gen_build_dense(10_000, 42, Placement::Chunked { parts: 4 });
//! let s = gen_probe_fk(100_000, 10_000, 43, Placement::Chunked { parts: 4 });
//! let result = Join::new(Algorithm::Cprl)
//!     .with_threads(4)
//!     .run(&r, &s)
//!     .expect("valid plan");
//! assert_eq!(result.matches, 100_000); // every FK finds its PK
//! ```
//!
//! Shared knobs live on [`JoinConfig`], built the same way
//! (`JoinConfig::builder().with_threads(8).with_zipf(0.75).build()?`)
//! and reusable across plans via [`Join::with_config`].
//! [`Algorithm::descriptor`] exposes
//! each variant's Table-2 classification (family, table, scheduling,
//! partitioning) without running it.
//!
//! Every algorithm is genuinely multi-threaded: all phases run as morsels
//! on one persistent NUMA-aware worker pool (see [`executor`]), created
//! lazily per thread count and reused across joins. In addition, each
//! phase is described to the NUMA cost model (`mmjoin-numamodel`), so a
//! [`JoinResult`] carries measured wall time, simulated time on the
//! paper's 4-socket machine, and per-phase executor counters (tasks,
//! steals, idle time) — see DESIGN.md for the substitution rationale.

pub mod chtj;
pub mod config;
pub mod exec;
pub mod executor;
pub mod fault;
pub mod instrumented;
pub mod materialize;
pub mod mway;
pub mod nop;
pub mod observe;
pub mod pipeline;
pub mod plan;
pub mod prb;
pub mod pro;
pub mod reference;
pub mod shhj;
pub mod skew;
pub mod spec;
pub mod stats;

pub use config::{JoinConfig, ProfileConfig, TableKind};
pub use executor::{Executor, QueuePolicy};
pub use fault::{CancelToken, MemBudget};
pub use mmjoin_util::kernels::KernelMode;
pub use mmjoin_util::perf::CounterDelta;
pub use mmjoin_util::pool::WorkerPhaseStat;
pub use pipeline::{BuildSide, BuildSideStats, OperatorKind, Pipeline, PipelineResult};
pub use plan::{
    AlgorithmDescriptor, Family, Join, JoinConfigBuilder, JoinError, Partitioning, Scheduling,
    TableFlavor,
};
pub use stats::{JoinResult, PhaseStat, SpillCounters};

/// The public join API in one import: everything an embedder — the
/// `mmjoin-serve` front-end, an experiment harness, an application —
/// needs to plan, configure, run, cache, and observe joins.
///
/// The service layer consumes *only* this module; an item it needs that
/// isn't here is a missing-public-API bug to fix in this prelude, never
/// a `pub(crate)` workaround (DESIGN.md §15).
pub mod prelude {
    pub use crate::config::{JoinConfig, ProfileConfig};
    pub use crate::fault::{CancelToken, MemBudget};
    pub use crate::observe;
    pub use crate::pipeline::{
        is_ported, BuildPhaseCounters, BuildSide, BuildSideStats, OperatorKind, Pipeline,
        PipelineResult, PORTED,
    };
    pub use crate::plan::{
        AlgorithmDescriptor, Family, Join, JoinConfigBuilder, JoinError, Partitioning, Scheduling,
        TableFlavor,
    };
    pub use crate::stats::{JoinResult, PhaseStat, SpillCounters};
    pub use crate::Algorithm;
    pub use mmjoin_util::kernels::KernelMode;
    pub use mmjoin_util::tuple::{Key, Payload, Placement, Relation, Tuple};
}

/// The thirteen join algorithms of the study.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Basic two-pass parallel radix join, no SWWCB (Balkesen et al.).
    Prb,
    /// No-partitioning hash join, lock-free linear table (Lang et al.).
    Nop,
    /// Concise-hash-table join (Barber et al.).
    Chtj,
    /// Multi-way sort-merge join (Balkesen et al.).
    Mway,
    /// NOP with an array table (this paper).
    Nopa,
    /// One-pass optimized parallel radix join, chained table.
    Pro,
    /// PRO with linear probing.
    Prl,
    /// PRO with array tables.
    Pra,
    /// Chunked parallel radix join, linear probing (this paper).
    Cprl,
    /// Chunked parallel radix join, array tables (this paper).
    Cpra,
    /// PRO with NUMA-round-robin task scheduling.
    ProIs,
    /// PRL with improved scheduling.
    PrlIs,
    /// PRA with improved scheduling.
    PraIs,
    /// Spilling hybrid hash join (this repo's extension, DESIGN.md §13):
    /// degrades gracefully under a memory budget by evicting build
    /// partitions to disk and recursively repartitioning, instead of
    /// aborting with `MemoryBudgetExceeded`.
    Shhj,
}

impl Algorithm {
    /// All thirteen, in the paper's Figure 8 order.
    pub const ALL: [Algorithm; 13] = [
        Algorithm::Mway,
        Algorithm::Chtj,
        Algorithm::Prb,
        Algorithm::Nop,
        Algorithm::Nopa,
        Algorithm::Pro,
        Algorithm::Prl,
        Algorithm::Pra,
        Algorithm::Cprl,
        Algorithm::Cpra,
        Algorithm::ProIs,
        Algorithm::PrlIs,
        Algorithm::PraIs,
    ];

    /// The paper's thirteen plus this repo's extensions (currently the
    /// spilling hybrid hash join). CLI parsing and fault-matrix tests
    /// iterate this; paper-figure experiments stay on [`Algorithm::ALL`].
    pub const WITH_EXTENSIONS: [Algorithm; 14] = [
        Algorithm::Mway,
        Algorithm::Chtj,
        Algorithm::Prb,
        Algorithm::Nop,
        Algorithm::Nopa,
        Algorithm::Pro,
        Algorithm::Prl,
        Algorithm::Pra,
        Algorithm::Cprl,
        Algorithm::Cpra,
        Algorithm::ProIs,
        Algorithm::PrlIs,
        Algorithm::PraIs,
        Algorithm::Shhj,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Prb => "PRB",
            Algorithm::Nop => "NOP",
            Algorithm::Chtj => "CHTJ",
            Algorithm::Mway => "MWAY",
            Algorithm::Nopa => "NOPA",
            Algorithm::Pro => "PRO",
            Algorithm::Prl => "PRL",
            Algorithm::Pra => "PRA",
            Algorithm::Cprl => "CPRL",
            Algorithm::Cpra => "CPRA",
            Algorithm::ProIs => "PROiS",
            Algorithm::PrlIs => "PRLiS",
            Algorithm::PraIs => "PRAiS",
            Algorithm::Shhj => "SHHJ",
        }
    }

    /// Partition-based (PR*/CPR*) vs no-partitioning/sort families.
    pub fn is_partitioned(self) -> bool {
        !matches!(
            self,
            Algorithm::Nop | Algorithm::Nopa | Algorithm::Chtj | Algorithm::Mway
        )
    }

    /// Requires a dense (or at least bounded) key domain.
    pub fn needs_dense_domain(self) -> bool {
        matches!(
            self,
            Algorithm::Nopa | Algorithm::Pra | Algorithm::Cpra | Algorithm::PraIs
        )
    }

    pub fn from_name(name: &str) -> Option<Algorithm> {
        Algorithm::WITH_EXTENSIONS
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }

    /// The barrier-delimited phases this algorithm executes, in order —
    /// the labels that appear in `PhaseStat::name`, in `JoinError`'s
    /// runtime variants, and in failpoint names (`"<ALG>.<phase>"`).
    pub fn phases(self) -> &'static [&'static str] {
        match self {
            Algorithm::Nop | Algorithm::Nopa | Algorithm::Chtj => &["build", "probe"],
            Algorithm::Mway => &["partition", "sort", "join"],
            Algorithm::Shhj => &["partition", "probe", "spill"],
            _ => &["partition", "join"],
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_algorithms() {
        assert_eq!(Algorithm::ALL.len(), 13);
        let names: std::collections::HashSet<&str> =
            Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 13);
        // Extensions extend the paper's list, never replace entries.
        assert_eq!(Algorithm::WITH_EXTENSIONS.len(), 14);
        assert_eq!(&Algorithm::WITH_EXTENSIONS[..13], &Algorithm::ALL[..]);
        assert!(!Algorithm::ALL.contains(&Algorithm::Shhj));
    }

    #[test]
    fn name_round_trip() {
        for a in Algorithm::WITH_EXTENSIONS {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
            assert_eq!(Algorithm::from_name(&a.name().to_lowercase()), Some(a));
        }
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn family_classification() {
        assert!(!Algorithm::Nop.is_partitioned());
        assert!(!Algorithm::Mway.is_partitioned());
        assert!(Algorithm::Prb.is_partitioned());
        assert!(Algorithm::Cprl.is_partitioned());
        assert!(Algorithm::Nopa.needs_dense_domain());
        assert!(!Algorithm::Prl.needs_dense_domain());
    }
}
