//! Cost-model descriptions of the joins' phases.
//!
//! Every barrier-delimited phase of every algorithm is summarized as
//! [`TaskSpec`]s for the NUMA simulator (see `mmjoin-numamodel`). The
//! builders here encode the paper's own analysis of each algorithm:
//!
//! * NOP builds/probes are *random* accesses into an interleaved global
//!   table; they hit DRAM once the table outgrows the aggregate LLC
//!   (Section 7.3's explanation of Figure 10).
//! * PRO's scatter writes go to *all* nodes (3/4 remote on 4 sockets);
//!   CPRL's scatter is node-local, its join-phase reads are spread over
//!   all nodes (Section 6.1, Figure 4).
//! * Without SWWCB, scattering to more partitions than there are TLB
//!   entries misses the TLB per tuple; SWWCB divides that by the tuples
//!   per cache line (Section 5.1) — and huge pages shrink the TLB to 32
//!   entries, which is exactly why PRB degrades with huge pages (Fig. 8).

use mmjoin_numamodel::{simulate_phase, PhaseSim, TaskSpec};
use mmjoin_partition::task::node_of_partition;
use mmjoin_util::{Placement, TUPLES_PER_CACHELINE};

use crate::config::JoinConfig;

/// CPU operation counts per tuple, per kernel. These are coarse but only
/// their *ratios* matter for the qualitative results.
pub mod ops {
    /// Scan + histogram update.
    pub const HISTOGRAM: f64 = 2.0;
    /// Hash + buffer bookkeeping + write per scattered tuple.
    pub const SCATTER: f64 = 4.0;
    /// Hash-table insert.
    pub const BUILD: f64 = 5.0;
    /// Hash-table probe (including the compare).
    pub const PROBE: f64 = 5.0;
    /// Array-table insert/probe (no key compare, no collision path).
    pub const ARRAY: f64 = 2.0;
    /// Per-element, per-merge-level cost of merge sorting. Calibrated so
    /// MWAY lands at the bottom of the Figure 1 field like the paper's
    /// AVX implementation does relative to the hash joins (sorting's
    /// n·log n term has no hash-join counterpart).
    pub const SORT_CMP: f64 = 12.0;
    /// Merge-join advance.
    pub const MERGE_JOIN: f64 = 3.0;
    /// CHT probe does a bitmap test + popcount + array compare.
    pub const CHT_PROBE: f64 = 8.0;
}

/// Fraction of sequential-scan TLB walk cost that is *not* hidden by the
/// hardware page walkers / prefetchers. Calibrated against Figure 8's
/// observed huge-page gains for the streaming-bound algorithms (~5-15%).
const SEQ_TLB_EXPOSURE: f64 = 1.0;

const TUPLE_BYTES: f64 = 8.0;

/// Probability that a random access into a structure of `bytes` misses a
/// cache of `cache_bytes` (fraction of the structure that cannot be
/// resident, floored at a small residual conflict rate).
pub fn miss_probability(bytes: f64, cache_bytes: f64) -> f64 {
    miss_probability_zipf(bytes, cache_bytes, 0.0)
}

/// Miss probability under a Zipf(θ)-skewed access distribution: the
/// cache-resident fraction `f` of the structure captures roughly
/// `f^(1-θ)` of the probability mass (the top-`m`-of-`n` mass of a Zipf
/// distribution) — at high skew the caches become effective even for
/// giant tables, which is why the NOP family catches up beyond θ ≈ 0.9
/// (Appendix A).
pub fn miss_probability_zipf(bytes: f64, cache_bytes: f64, theta: f64) -> f64 {
    if bytes <= 0.0 {
        return 0.0;
    }
    let resident = (cache_bytes / bytes).clamp(0.0, 1.0);
    let hit_mass = resident.powf((1.0 - theta).clamp(0.01, 1.0));
    (1.0 - hit_mass).clamp(0.02, 1.0)
}

/// Probability that a random access into `bytes` misses the TLB.
pub fn tlb_miss_probability(bytes: f64, cfg: &JoinConfig) -> f64 {
    let coverage = (cfg.topology.tlb_entries() * cfg.topology.page_bytes()) as f64;
    if bytes <= 0.0 {
        return 0.0;
    }
    (1.0 - coverage / bytes).clamp(0.0, 1.0)
}

/// TLB misses charged to a sequential stream of `bytes`.
///
/// Uses the *unscaled* page size: sequential-miss counts are
/// pages-touched counts, which stay constant when data and page size are
/// scaled down together — charging them against scaled pages would
/// inflate the TLB share of scaled runs by the scale factor. (Random
/// accesses don't have this issue: their count scales with the data and
/// their miss probability is coverage-relative.)
pub fn seq_tlb_misses(bytes: f64, cfg: &JoinConfig) -> f64 {
    bytes / cfg.topology.page_size.bytes() as f64 * SEQ_TLB_EXPOSURE
}

/// Relative page-walk cost: 4 KB pages need a deeper walk (4 levels,
/// worse paging-structure-cache locality) than 2 MB pages (3 levels).
/// Multiplies every TLB-miss count fed to the cost model.
pub fn tlb_walk_scale(cfg: &JoinConfig) -> f64 {
    match cfg.topology.page_size {
        mmjoin_numamodel::topology::PageSize::Small4K => 1.3,
        mmjoin_numamodel::topology::PageSize::Huge2M => 0.7,
    }
}

/// Aggregate LLC over all sockets — the capacity bound for the global
/// tables of the NOP family.
pub fn total_llc(cfg: &JoinConfig) -> f64 {
    (cfg.topology.llc_bytes() * cfg.topology.nodes) as f64
}

/// Run one phase through the simulator. Returns `(seconds, sim)`;
/// `(0, empty)` when simulation is disabled.
pub fn run_phase(cfg: &JoinConfig, tasks: &[TaskSpec], order: &[usize]) -> (f64, PhaseSim) {
    if !cfg.simulate || tasks.is_empty() {
        return (0.0, PhaseSim::empty(cfg.topology.nodes));
    }
    let sim = simulate_phase(&cfg.topology, &cfg.cost, cfg.sim_threads(), tasks, order);
    (sim.duration, sim)
}

/// Stream `bytes` of a buffer with `placement` into/out of a task homed on
/// `home`, attributing traffic to the right nodes.
fn add_stream(spec: &mut TaskSpec, cfg: &JoinConfig, placement: Placement, bytes: f64) {
    match placement {
        Placement::Interleaved => {
            spec.stream_interleaved(bytes);
        }
        Placement::Node(n) => {
            spec.stream(n % cfg.topology.nodes, bytes);
        }
        Placement::Chunked { .. } => {
            // Chunk i of `parts` lives on node i % nodes; a thread reading
            // *its own* chunk reads locally. We model the common case in
            // the study: per-thread chunks aligned with thread homes.
            let home = spec.home_node.unwrap_or(0);
            spec.stream(home, bytes);
        }
    }
}

/// One spec per thread for a scan-shaped phase over `tuples` tuples.
fn scan_specs(cfg: &JoinConfig, tuples: usize, placement: Placement) -> Vec<TaskSpec> {
    let threads = cfg.sim_threads();
    let per_thread = tuples as f64 / threads as f64;
    (0..threads)
        .map(|t| {
            let mut spec = TaskSpec::new(cfg.topology.nodes);
            spec.on_node(cfg.topology.node_of_thread(t));
            add_stream(&mut spec, cfg, placement, per_thread * TUPLE_BYTES);
            spec.tlb(seq_tlb_misses(per_thread * TUPLE_BYTES, cfg) * tlb_walk_scale(cfg));
            spec
        })
        .collect()
}

// --------------------------------------------------------------------
// NOP family (global-table joins)
// --------------------------------------------------------------------

/// Build phase of NOP/NOPA/CHTJ: scan the build chunk, random-write into
/// the interleaved global table.
pub fn global_build_specs(
    cfg: &JoinConfig,
    r_len: usize,
    r_placement: Placement,
    table_bytes: f64,
    cpu_per_tuple: f64,
) -> Vec<TaskSpec> {
    let mut specs = scan_specs(cfg, r_len, r_placement);
    let per_thread = r_len as f64 / cfg.sim_threads() as f64;
    let p_miss = miss_probability(table_bytes, total_llc(cfg));
    let p_tlb = tlb_miss_probability(table_bytes, cfg);
    for spec in &mut specs {
        spec.random_interleaved(per_thread * p_miss);
        spec.tlb(per_thread * p_tlb * tlb_walk_scale(cfg));
        spec.cpu(per_thread * cpu_per_tuple);
    }
    specs
}

/// Probe phase of NOP/NOPA/CHTJ: scan the probe chunk, random-read the
/// global table `accesses_per_probe` times per tuple.
pub fn global_probe_specs(
    cfg: &JoinConfig,
    s_len: usize,
    s_placement: Placement,
    table_bytes: f64,
    accesses_per_probe: f64,
    cpu_per_tuple: f64,
) -> Vec<TaskSpec> {
    let mut specs = scan_specs(cfg, s_len, s_placement);
    let per_thread = s_len as f64 / cfg.sim_threads() as f64;
    let p_miss = miss_probability_zipf(table_bytes, total_llc(cfg), cfg.probe_theta);
    let p_tlb = tlb_miss_probability(table_bytes, cfg) * (1.0 - cfg.probe_theta).max(0.1);
    for spec in &mut specs {
        spec.random_interleaved(per_thread * accesses_per_probe * p_miss);
        spec.tlb(per_thread * accesses_per_probe * p_tlb * tlb_walk_scale(cfg));
        spec.cpu(per_thread * cpu_per_tuple);
    }
    specs
}

/// Cost-model view of one probe stage of a fused pipeline (see
/// `mmjoin_core::pipeline`): the tuples that actually reached it and the
/// resident structure they probed.
#[derive(Copy, Clone, Debug)]
pub struct FusedStageModel {
    /// Tuples entering this stage (stage 0 sees `|S|`; later stages see
    /// the previous stage's match count).
    pub tuples_in: usize,
    /// Footprint of the stage's build-side structure.
    pub table_bytes: f64,
    /// Random accesses per probe into that structure.
    pub accesses_per_probe: f64,
    /// CPU cost per probing tuple.
    pub cpu_per_tuple: f64,
}

/// Probe phase of a fused operator pipeline: one scan of the probe
/// relation, then per stage `tuples_in` random probes against that
/// stage's structure. The inter-stage batches themselves are charged
/// nothing — they are cache-resident by construction, which is exactly
/// the traffic a materialized two-step plan pays and a fused one avoids.
pub fn fused_probe_specs(
    cfg: &JoinConfig,
    s_len: usize,
    s_placement: Placement,
    stages: &[FusedStageModel],
) -> Vec<TaskSpec> {
    let mut specs = scan_specs(cfg, s_len, s_placement);
    let threads = cfg.sim_threads() as f64;
    for st in stages {
        let per_thread = st.tuples_in as f64 / threads;
        let p_miss = miss_probability_zipf(st.table_bytes, total_llc(cfg), cfg.probe_theta);
        let p_tlb = tlb_miss_probability(st.table_bytes, cfg) * (1.0 - cfg.probe_theta).max(0.1);
        for spec in &mut specs {
            spec.random_interleaved(per_thread * st.accesses_per_probe * p_miss);
            spec.tlb(per_thread * st.accesses_per_probe * p_tlb * tlb_walk_scale(cfg));
            spec.cpu(per_thread * st.cpu_per_tuple);
        }
    }
    specs
}

// --------------------------------------------------------------------
// Radix partitioning phases
// --------------------------------------------------------------------

/// How a partitioning pass writes its output.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PartitionWrites {
    /// Contiguous global output, interleaved over nodes (PRB/PRO/MWAY).
    GlobalInterleaved,
    /// Thread-local output (CPR*).
    Local,
}

/// One partitioning pass over `tuples` tuples with fanout `fanout`.
pub fn partition_pass_specs(
    cfg: &JoinConfig,
    tuples: usize,
    input_placement: Placement,
    fanout: usize,
    swwcb: bool,
    writes: PartitionWrites,
) -> Vec<TaskSpec> {
    let threads = cfg.sim_threads();
    let per_thread = tuples as f64 / threads as f64;
    let bytes = per_thread * TUPLE_BYTES;
    let tlb_entries = cfg.topology.tlb_entries() as f64;

    // Scatter TLB pressure. When partition regions are smaller than a
    // page, several cursors share one page and each TLB entry covers
    // that many partitions; the LRU reuse distance between touches of
    // the same partition's page is `fanout` writes for a direct scatter
    // and 8·fanout for SWWCB (one flush per TUPLES_PER_CACHELINE
    // buffered tuples). Misses saturate once the reuse distance exceeds
    // the effective TLB reach — at which point the page size stops
    // mattering, which is why SWWCB algorithms are page-size-neutral in
    // the scatter while PRB (128-way direct) inverts (Figure 8).
    let region_bytes = (tuples as f64 * TUPLE_BYTES / fanout as f64).max(1.0);
    let partitions_per_page = (cfg.topology.page_bytes() as f64 / region_bytes).max(1.0);
    let effective_entries = tlb_entries * partitions_per_page;
    let scatter_tlb = if swwcb {
        let reuse = fanout as f64 * TUPLES_PER_CACHELINE as f64;
        let p = (1.0 - effective_entries / reuse).max(0.0);
        per_thread * p / TUPLES_PER_CACHELINE as f64
    } else {
        let p = (1.0 - effective_entries / fanout as f64).max(0.0);
        per_thread * p
    };

    // SWWCB banks: every thread holds one cache line of buffer state per
    // partition. Once all threads' banks no longer fit their shared LLC
    // slice, buffered writes themselves start missing — the
    // deterioration beyond 2^15 partitions in Figure 11 and the reason
    // Equation (1) caps the fanout (Section 7.3). Bank bytes scale with
    // the capacity scale like Equation (1)'s budget term.
    let bank_bytes_per_part = ((64.0 + 16.0) / cfg.topology.capacity_scale as f64).max(1.0);
    let threads_per_node = (threads as f64 / cfg.topology.nodes as f64).max(1.0);
    let total_bank_bytes = fanout as f64 * bank_bytes_per_part * threads_per_node;
    let p_bank_spill = if swwcb {
        (miss_probability(total_bank_bytes, cfg.topology.llc_bytes() as f64) - 0.02).max(0.0)
    } else {
        0.0
    };

    (0..threads)
        .map(|t| {
            let mut spec = TaskSpec::new(cfg.topology.nodes);
            spec.on_node(cfg.topology.node_of_thread(t));
            // Histogram pass: read input once.
            add_stream(&mut spec, cfg, input_placement, bytes);
            spec.cpu(per_thread * ops::HISTOGRAM);
            // Scatter pass: read input again, write output.
            add_stream(&mut spec, cfg, input_placement, bytes);
            // Output writes: every flushed cache line targets a different
            // partition region (a different page at realistic fanouts) —
            // Figure 4(b)'s "random remote writes". We charge each flush
            // as a random access (latency via MLP + bandwidth). SWWCB
            // emits one flush per TUPLES_PER_CACHELINE tuples; the
            // unbuffered scatter combines writes in cache only while one
            // open line per partition fits the L2, paying a cache-missing
            // store per tuple beyond that. Spilled bank lines add an
            // extra DRAM round trip per buffered write.
            let open_lines_bytes = fanout as f64 * 64.0;
            let flushes = if swwcb {
                per_thread / TUPLES_PER_CACHELINE as f64
            } else {
                let p_linemiss = miss_probability(open_lines_bytes, cfg.topology.l2_bytes() as f64);
                per_thread / TUPLES_PER_CACHELINE as f64 + per_thread * p_linemiss
            };
            let spill_accesses = per_thread * p_bank_spill;
            match writes {
                PartitionWrites::GlobalInterleaved => {
                    spec.random_interleaved(flushes + spill_accesses);
                }
                PartitionWrites::Local => {
                    let home = spec.home_node.unwrap();
                    spec.random(home, flushes + spill_accesses);
                }
            }
            spec.cpu(per_thread * ops::SCATTER);
            spec.tlb((scatter_tlb + 2.0 * seq_tlb_misses(bytes, cfg)) * tlb_walk_scale(cfg));
            spec
        })
        .collect()
}

/// Mirror of the cooperative skew handling (`crate::skew`) on the cost-
/// model plane: oversized co-partitions are split into `threads`
/// sub-tasks (appended at the end of the queue, where the cooperative
/// phase runs), so the simulator sees the same parallelism the real
/// execution gets.
pub fn split_skewed_sizes(
    r_sizes: &[usize],
    s_sizes: &[usize],
    order: &[usize],
    threads: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let (_, skewed) = crate::skew::classify_partitions(s_sizes, threads);
    if skewed.is_empty() {
        return (r_sizes.to_vec(), s_sizes.to_vec(), order.to_vec());
    }
    let mut r2 = r_sizes.to_vec();
    let mut s2 = s_sizes.to_vec();
    let mut order2: Vec<usize> = order
        .iter()
        .copied()
        .filter(|p| !skewed.contains(p))
        .collect();
    for &p in &skewed {
        let k = threads.max(1);
        let r_share = r_sizes[p] / k;
        let s_share = s_sizes[p] / k;
        // Reuse slot p for the first share, append the rest.
        r2[p] = r_sizes[p] - r_share * (k - 1);
        s2[p] = s_sizes[p] - s_share * (k - 1);
        order2.push(p);
        for _ in 1..k {
            r2.push(r_share);
            s2.push(s_share);
            order2.push(r2.len() - 1);
        }
    }
    (r2, s2, order2)
}

// --------------------------------------------------------------------
// Co-partition join phases
// --------------------------------------------------------------------

/// Where a co-partition's data lives for the join phase.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PartitionLayout {
    /// Contiguous partitions in an interleaved buffer: partition `p`
    /// resides wholly on `node_of_partition(p)` (PR* family).
    Contiguous,
    /// Chunked partitions: every partition is spread over all nodes
    /// (CPR* family).
    Spread,
}

/// One spec per co-partition join task.
///
/// `r_sizes[p]` / `s_sizes[p]` are tuple counts per partition;
/// `cpu_build` / `cpu_probe` depend on the table kind.
#[allow(clippy::too_many_arguments)]
pub fn join_task_specs(
    cfg: &JoinConfig,
    r_sizes: &[usize],
    s_sizes: &[usize],
    layout: PartitionLayout,
    cpu_build: f64,
    cpu_probe: f64,
    table_bytes_per_tuple: f64,
) -> Vec<TaskSpec> {
    let parts = r_sizes.len();
    let nodes = cfg.topology.nodes;
    // SMT halves the private L2 available to each hyperthread — the
    // reason partitioned joins degrade beyond 60 threads (Appendix B).
    let smt_share = if cfg.topology.uses_smt(cfg.sim_threads()) {
        2.0
    } else {
        1.0
    };
    let l2 = cfg.topology.l2_bytes() as f64 / smt_share;
    (0..parts)
        .map(|p| {
            let r = r_sizes[p] as f64;
            let s = s_sizes[p] as f64;
            let mut spec = TaskSpec::new(nodes);
            let bytes = (r + s) * TUPLE_BYTES;
            match layout {
                PartitionLayout::Contiguous => {
                    spec.stream(node_of_partition(p, parts, nodes), bytes);
                }
                PartitionLayout::Spread => {
                    spec.stream_interleaved(bytes);
                }
            }
            // Build-table accesses: random within the per-partition table;
            // cache-free if the table fits the (SMT-shared) L2 — the
            // whole point of radix partitioning. Spills land in the LLC
            // (partition tables are far smaller than the LLC share), so
            // they cost L3 latency as extra stall cycles, not DRAM trips.
            let table_bytes = r * table_bytes_per_tuple;
            if table_bytes > l2 {
                let p_miss = miss_probability(table_bytes, l2);
                const L3_HIT_OPS: f64 = 40.0; // ~15 ns L3 latency in op units
                spec.cpu((r + s) * p_miss * L3_HIT_OPS);
            }
            spec.cpu(r * cpu_build + s * cpu_probe);
            spec.tlb(
                (seq_tlb_misses(bytes, cfg) + (r + s) * tlb_miss_probability(table_bytes, cfg))
                    * tlb_walk_scale(cfg),
            );
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JoinConfig;

    fn cfg() -> JoinConfig {
        let mut c = JoinConfig::new(32);
        c.simulate = true;
        c
    }

    #[test]
    fn miss_probability_bounds() {
        assert!(miss_probability(1e3, 1e9) <= 0.02 + 1e-12);
        assert!((miss_probability(1e12, 1e6) - 1.0).abs() < 1e-3);
        assert_eq!(miss_probability(0.0, 1e6), 0.0);
    }

    #[test]
    fn nop_probe_slower_for_big_tables() {
        let cfg = cfg();
        let small = global_probe_specs(
            &cfg,
            1 << 20,
            Placement::Chunked { parts: 32 },
            1e6,
            1.0,
            5.0,
        );
        let big = global_probe_specs(
            &cfg,
            1 << 20,
            Placement::Chunked { parts: 32 },
            40e9,
            1.0,
            5.0,
        );
        let order: Vec<usize> = (0..small.len()).collect();
        let (t_small, _) = run_phase(&cfg, &small, &order);
        let (t_big, _) = run_phase(&cfg, &big, &order);
        assert!(t_big > 3.0 * t_small, "{t_big} vs {t_small}");
    }

    #[test]
    fn swwcb_reduces_partition_time_at_high_fanout() {
        let cfg = cfg();
        let n = 16 << 20;
        let with = partition_pass_specs(
            &cfg,
            n,
            Placement::Chunked { parts: 32 },
            16384,
            true,
            PartitionWrites::GlobalInterleaved,
        );
        let without = partition_pass_specs(
            &cfg,
            n,
            Placement::Chunked { parts: 32 },
            16384,
            false,
            PartitionWrites::GlobalInterleaved,
        );
        let order: Vec<usize> = (0..with.len()).collect();
        let (t_with, _) = run_phase(&cfg, &with, &order);
        let (t_without, _) = run_phase(&cfg, &without, &order);
        assert!(t_with < t_without, "{t_with} vs {t_without}");
    }

    #[test]
    fn local_writes_beat_global_writes() {
        // The CPRL argument: local scatter beats 3/4-remote scatter.
        let cfg = cfg();
        let n = 64 << 20;
        let global = partition_pass_specs(
            &cfg,
            n,
            Placement::Chunked { parts: 32 },
            4096,
            true,
            PartitionWrites::GlobalInterleaved,
        );
        let local = partition_pass_specs(
            &cfg,
            n,
            Placement::Chunked { parts: 32 },
            4096,
            true,
            PartitionWrites::Local,
        );
        let order: Vec<usize> = (0..global.len()).collect();
        let (t_global, _) = run_phase(&cfg, &global, &order);
        let (t_local, _) = run_phase(&cfg, &local, &order);
        assert!(t_local < t_global, "{t_local} vs {t_global}");
    }

    #[test]
    fn round_robin_order_speeds_up_contiguous_join_phase() {
        // The PROiS argument, end to end through the spec builders.
        let cfg = cfg();
        let parts = 512;
        // Per-partition tables sized to fit L2 (the Equation (1) regime),
        // so tasks are bandwidth-bound and scheduling order matters.
        let r_sizes = vec![8 << 10; parts];
        let s_sizes = vec![80 << 10; parts];
        let tasks = join_task_specs(
            &cfg,
            &r_sizes,
            &s_sizes,
            PartitionLayout::Contiguous,
            ops::BUILD,
            ops::PROBE,
            16.0,
        );
        let seq: Vec<usize> = (0..parts).collect();
        let rr = mmjoin_partition::task_order(
            parts,
            mmjoin_partition::ScheduleOrder::NumaRoundRobin {
                nodes: cfg.topology.nodes,
            },
        );
        let (t_seq, _) = run_phase(&cfg, &tasks, &seq);
        let (t_rr, _) = run_phase(&cfg, &tasks, &rr);
        assert!(t_rr < t_seq * 0.75, "rr {t_rr} vs seq {t_seq}");
    }

    #[test]
    fn spread_layout_is_order_insensitive() {
        // The CPRL argument: every task reads all nodes, so scheduling
        // order barely matters (Figure 6, bottom).
        let cfg = cfg();
        let parts = 512;
        let sizes = vec![64 << 10; parts];
        let tasks = join_task_specs(
            &cfg,
            &sizes,
            &sizes,
            PartitionLayout::Spread,
            ops::BUILD,
            ops::PROBE,
            16.0,
        );
        let seq: Vec<usize> = (0..parts).collect();
        let rr = mmjoin_partition::task_order(
            parts,
            mmjoin_partition::ScheduleOrder::NumaRoundRobin {
                nodes: cfg.topology.nodes,
            },
        );
        let (t_seq, _) = run_phase(&cfg, &tasks, &seq);
        let (t_rr, _) = run_phase(&cfg, &tasks, &rr);
        let rel = (t_seq - t_rr).abs() / t_seq;
        assert!(rel < 0.05, "order changed spread join by {rel}");
    }

    #[test]
    fn simulation_disabled_returns_zero() {
        let mut cfg = cfg();
        cfg.simulate = false;
        let tasks = scan_specs(&cfg, 1000, Placement::Interleaved);
        let (t, _) = run_phase(&cfg, &tasks, &[0]);
        assert_eq!(t, 0.0);
    }
}
