//! Materializing join output.
//!
//! The thirteen study algorithms report verification checksums (the
//! micro-benchmark methodology shared by all the compared papers, which
//! deliberately excludes output materialization from the measured
//! runtime). Downstream users usually want the *join index* — the
//! `(key, build_payload, probe_payload)` triples — e.g. to drive late
//! materialization like TPC-H Q19's executor.
//!
//! `join_index` produces exactly that with a partitioned gather join
//! (the CPRL machinery: chunk-local partitioning, per-co-partition
//! linear tables, per-thread output buffers). Every algorithm in this
//! crate yields the same match multiset (enforced by the integration
//! tests), so materialization does not need to be offered per algorithm.

use mmjoin_hashtable::{IdentityHash, StLinearTable};
use mmjoin_partition::{chunked_partition_on, RadixFn, ScatterMode};
use mmjoin_util::alloc::AlignedVec;
use mmjoin_util::{Placement, Relation, Tuple};

use crate::config::JoinConfig;
use crate::exec::morsel_map;
use crate::executor::QueuePolicy;
use crate::fault::{CtxPool, FaultCtx};
use crate::plan::JoinError;
use crate::Algorithm;

/// One materialized match.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct JoinMatch {
    pub key: u32,
    pub build_payload: u32,
    pub probe_payload: u32,
}

/// Materialize `r ⋈ s` as a join index.
///
/// The output order is deterministic for a fixed configuration
/// (partition-id order, then chunk order within a partition) but is not
/// a semantic guarantee; sort or hash downstream as needed.
///
/// Runs on the CPRL machinery and honours the same fault controls as
/// the thirteen drivers: `cfg.deadline`, `cfg.cancel`, and
/// `cfg.mem_limit` (which here also covers the materialized output —
/// the one allocation the checksum-only drivers never make).
pub fn join_index(
    r: &Relation,
    s: &Relation,
    cfg: &JoinConfig,
) -> Result<Vec<JoinMatch>, JoinError> {
    let ctx = FaultCtx::begin(Algorithm::Cprl, cfg);
    let mut result = crate::stats::JoinResult::new(Algorithm::Cprl);
    let bits = cfg.bits_for_hash_tables(r.len());
    let f = RadixFn::new(bits);
    let pool = cfg.executor();
    let cpool = CtxPool::new(pool.as_ref(), &ctx);
    let parts = f.fanout();

    ctx.enter_phase("partition");
    let _part_charge = ctx.charge((r.len() + s.len()) * 8 + cfg.threads * parts * 64)?;
    let cr = chunked_partition_on(r.tuples(), f, &cpool, ScatterMode::Swwcb);
    let cs = chunked_partition_on(s.tuples(), f, &cpool, ScatterMode::Swwcb);
    ctx.checkpoint(&result)?;

    ctx.enter_phase("join");
    let order: Vec<usize> = (0..parts).collect();
    let mut tasks: Vec<(usize, AlignedVec<JoinMatch>)> =
        morsel_map(&pool, &order, parts, QueuePolicy::Shared, |p| {
            if ctx.tick() {
                return (p, AlignedVec::new());
            }
            let spec_bytes = (2 * cr.part_len(p).max(1)).next_power_of_two() * 8;
            let _table_charge = match ctx.try_charge(spec_bytes) {
                Some(charge) => charge,
                None => return (p, AlignedVec::new()),
            };
            let mut table = StLinearTable::<IdentityHash>::with_capacity(cr.part_len(p).max(1));
            cr.for_each_slice(p, |slice| {
                for &t in slice {
                    table.insert(t);
                }
            });
            // Output buffer: at least one JoinMatch per probe tuple of
            // the partition under the FK workloads; charge that bound.
            let out_bytes = cs.part_len(p) * std::mem::size_of::<JoinMatch>();
            let _out_charge = match ctx.try_charge(out_bytes) {
                Some(charge) => charge,
                None => return (p, AlignedVec::new()),
            };
            // Policy-aware output buffer: the per-partition gather is
            // the write-heavy allocation of materialization.
            let mut out = AlignedVec::with_capacity(cs.part_len(p));
            cs.for_each_slice(p, |slice| {
                for &t in slice {
                    table.probe(t.key, |bp| {
                        out.push(JoinMatch {
                            key: t.key,
                            build_payload: bp,
                            probe_payload: t.payload,
                        })
                    });
                }
            });
            (p, out)
        })
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .collect();

    // Deterministic order: by partition id.
    tasks.sort_by_key(|(p, _)| *p);
    let total: usize = tasks.iter().map(|(_, v)| v.len()).sum();
    let _out_charge = ctx.charge(total * std::mem::size_of::<JoinMatch>())?;
    let mut out = Vec::new();
    if out.try_reserve_exact(total).is_err() {
        return Err(JoinError::MemoryBudgetExceeded {
            phase: "join",
            requested: total * std::mem::size_of::<JoinMatch>(),
            limit: cfg.mem_limit.unwrap_or(usize::MAX),
            available: 0,
        });
    }
    for (_, v) in tasks {
        out.extend_from_slice(&v);
    }
    result.set_checksum(mmjoin_util::checksum::JoinChecksum::new());
    ctx.checkpoint(&result)?;
    Ok(out)
}

/// The materialized two-step baseline for a two-join chain
/// `(first ⋈ s) ⋈ second` on `first.payload == second.key`.
///
/// Step one materializes `first ⋈ s` as a full join index; step two
/// re-runs `final_alg` with the intermediate `(first.payload, s.payload)`
/// relation as its probe side. The fused pipeline
/// (`crate::pipeline::Pipeline` with two stages) computes the same
/// checksum without ever allocating the intermediate — the differential
/// tests pin the two paths against each other, and the `pipeline` bench
/// experiment reports the bytes this baseline writes that the fused plan
/// avoids.
pub fn chain_two_step(
    first: &Relation,
    second: &Relation,
    s: &Relation,
    final_alg: Algorithm,
    cfg: &JoinConfig,
) -> Result<crate::stats::JoinResult, JoinError> {
    let idx = join_index(first, s, cfg)?;
    let mid: Vec<Tuple> = idx
        .iter()
        .map(|m| Tuple::new(m.build_payload, m.probe_payload))
        .collect();
    let mid_rel = Relation::from_tuples(&mid, Placement::Interleaved);
    crate::plan::dispatch(final_alg, second, &mid_rel, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_join;
    use mmjoin_datagen::{gen_build_dense, gen_probe_fk, gen_probe_zipf};
    use mmjoin_util::checksum::JoinChecksum;
    use mmjoin_util::Placement;

    fn checksum_of(matches: &[JoinMatch]) -> JoinChecksum {
        let mut c = JoinChecksum::new();
        for m in matches {
            c.add(m.key, m.build_payload, m.probe_payload);
        }
        c
    }

    #[test]
    fn index_matches_reference() {
        let r = gen_build_dense(3_000, 1, Placement::Chunked { parts: 4 });
        let s = gen_probe_fk(15_000, 3_000, 2, Placement::Chunked { parts: 4 });
        let expect = reference_join(&r, &s);
        for threads in [1, 4] {
            let mut cfg = JoinConfig::new(threads);
            cfg.simulate = false;
            let idx = join_index(&r, &s, &cfg).unwrap();
            assert_eq!(idx.len() as u64, expect.count);
            assert_eq!(checksum_of(&idx), expect);
        }
    }

    #[test]
    fn index_is_deterministic() {
        let r = gen_build_dense(1_000, 3, Placement::Interleaved);
        let s = gen_probe_zipf(5_000, 1_000, 0.9, 4, Placement::Interleaved);
        let mut cfg = JoinConfig::new(4);
        cfg.simulate = false;
        let a = join_index(&r, &s, &cfg).unwrap();
        let b = join_index(&r, &s, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cross_products_materialize_fully() {
        use mmjoin_util::{Relation, Tuple};
        let r = Relation::from_tuples(
            &[Tuple::new(7, 1), Tuple::new(7, 2)],
            Placement::Interleaved,
        );
        let s = Relation::from_tuples(
            &[Tuple::new(7, 10), Tuple::new(7, 11), Tuple::new(7, 12)],
            Placement::Interleaved,
        );
        let mut cfg = JoinConfig::new(2);
        cfg.simulate = false;
        cfg.radix_bits = Some(2);
        let mut idx = join_index(&r, &s, &cfg).unwrap();
        idx.sort();
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|m| m.key == 7));
    }

    #[test]
    fn empty_inputs() {
        let empty = mmjoin_util::Relation::from_tuples(&[], Placement::Interleaved);
        let r = gen_build_dense(10, 5, Placement::Interleaved);
        let cfg = JoinConfig::new(2);
        assert!(join_index(&empty, &r, &cfg).unwrap().is_empty());
        assert!(join_index(&r, &empty, &cfg).unwrap().is_empty());
    }
}
