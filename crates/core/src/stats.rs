//! Join results: verification data + per-phase measured and simulated
//! times.

use std::time::Duration;

use mmjoin_numamodel::PhaseSim;
use mmjoin_util::checksum::JoinChecksum;
use mmjoin_util::mem::{self, AllocSnapshot};
use mmjoin_util::perf::CounterDelta;
use mmjoin_util::pool::{ExecCounters, WorkerPhaseStat};

use crate::executor::Executor;
use crate::Algorithm;

/// Disk-spill activity of one phase (the spilling hybrid hash join;
/// all-zero for the in-memory drivers). Aggregated into the metrics and
/// chrome-trace exporters (see `observe`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SpillCounters {
    /// Bytes written to spill runs during this phase.
    pub bytes_spilled: u64,
    /// Partitions evicted to (or re-spilled onto) disk in this phase.
    pub partitions_spilled: u64,
    /// Deepest recursive-repartitioning level reached (0 = none).
    pub recursion_depth: u32,
}

impl SpillCounters {
    pub fn merge(&mut self, other: SpillCounters) {
        self.bytes_spilled += other.bytes_spilled;
        self.partitions_spilled += other.partitions_spilled;
        self.recursion_depth = self.recursion_depth.max(other.recursion_depth);
    }
}

/// Memory-subsystem activity of one phase: deltas of the process-wide
/// `mmjoin_util::mem` counters between this phase's boundary and the
/// previous one. All-zero under the portable policy (no mapped arenas)
/// or when another thread's join interleaves — the counters are global,
/// so concurrent joins attribute each other's traffic; treat these as
/// diagnostics, not an exact ledger.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// mmap-backed arena blocks created during this phase.
    pub mapped_blocks: u64,
    /// Bytes freshly mapped from the kernel.
    pub mapped_bytes: u64,
    /// Arena requests served by the pool (no syscall, pages pre-faulted).
    pub pool_hits: u64,
    /// Bytes served from the pool.
    pub pool_hit_bytes: u64,
    /// Page-policy downgrades (hugetlb/THP unavailable → small pages).
    pub degraded_page: u64,
    /// NUMA-placement downgrades (`mbind` failed → first-touch).
    pub degraded_numa: u64,
    /// Mapped requests that fell all the way back to the heap.
    pub heap_fallback: u64,
}

impl AllocCounters {
    fn from_delta(d: AllocSnapshot) -> AllocCounters {
        AllocCounters {
            mapped_blocks: d.mapped_blocks,
            mapped_bytes: d.mapped_bytes,
            pool_hits: d.pool_hits,
            pool_hit_bytes: d.pool_hit_bytes,
            degraded_page: d.degraded_page,
            degraded_numa: d.degraded_numa,
            heap_fallback: d.heap_fallback,
        }
    }

    pub fn merge(&mut self, other: AllocCounters) {
        self.mapped_blocks += other.mapped_blocks;
        self.mapped_bytes += other.mapped_bytes;
        self.pool_hits += other.pool_hits;
        self.pool_hit_bytes += other.pool_hit_bytes;
        self.degraded_page += other.degraded_page;
        self.degraded_numa += other.degraded_numa;
        self.heap_fallback += other.heap_fallback;
    }

    /// Whether any backend degraded during this phase (fallback ladder
    /// took a downgrade step; see DESIGN.md §14).
    pub fn degraded(&self) -> bool {
        self.degraded_page > 0 || self.degraded_numa > 0 || self.heap_fallback > 0
    }
}

/// One barrier-delimited phase of a join.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    pub name: &'static str,
    /// Wall-clock time on this host.
    pub wall: Duration,
    /// Simulated time on the configured topology (0 if simulation off).
    pub sim_seconds: f64,
    /// Executor scheduling counters for this phase (tasks run, steals,
    /// worker idle time at the barrier).
    pub exec: ExecCounters,
    /// Disk-spill activity (zero for in-memory drivers).
    pub spill: SpillCounters,
    /// Memory-subsystem activity (zero under the portable policy).
    pub alloc: AllocCounters,
    /// Per-worker spans (one per worker per barrier broadcast) with
    /// native PMU deltas, recorded only when `JoinConfig::profile` is
    /// enabled; empty otherwise.
    pub workers: Vec<WorkerPhaseStat>,
}

impl PhaseStat {
    /// Native counter totals over this phase's worker spans. All `None`
    /// when profiling was off or the host exposes no counters.
    pub fn counter_totals(&self) -> CounterDelta {
        let mut total = CounterDelta::none();
        for w in &self.workers {
            total.merge(&w.counters);
        }
        total
    }
}

/// Result of one join execution.
#[derive(Debug)]
pub struct JoinResult {
    pub algorithm: Algorithm,
    /// Number of output matches.
    pub matches: u64,
    /// Order-independent digest over all matches.
    pub checksum: u64,
    pub phases: Vec<PhaseStat>,
    /// Radix bits actually used (partitioned joins).
    pub radix_bits: Option<u32>,
    /// Per-phase simulator outputs, kept only when
    /// `JoinConfig::keep_timelines` is set (Figure 6).
    pub timelines: Vec<(&'static str, PhaseSim)>,
    /// `mem::stats()` at the previous phase boundary; each pushed phase
    /// records the delta since this mark and advances it.
    alloc_mark: AllocSnapshot,
}

impl JoinResult {
    pub fn new(algorithm: Algorithm) -> Self {
        JoinResult {
            algorithm,
            matches: 0,
            checksum: 0,
            phases: Vec::new(),
            radix_bits: None,
            timelines: Vec::new(),
            alloc_mark: mem::stats(),
        }
    }

    /// Delta of the global alloc counters since the last phase boundary;
    /// advances the mark.
    fn take_alloc(&mut self) -> AllocCounters {
        let now = mem::stats();
        let delta = now.delta(&self.alloc_mark);
        self.alloc_mark = now;
        AllocCounters::from_delta(delta)
    }

    pub fn set_checksum(&mut self, c: JoinChecksum) {
        self.matches = c.count;
        self.checksum = c.digest;
    }

    pub fn push_phase(&mut self, name: &'static str, wall: Duration, sim_seconds: f64) {
        self.push_phase_exec(name, wall, sim_seconds, ExecCounters::new());
    }

    /// `push_phase` carrying the executor's scheduling counters for the
    /// phase (drained at the phase boundary).
    pub fn push_phase_exec(
        &mut self,
        name: &'static str,
        wall: Duration,
        sim_seconds: f64,
        exec: ExecCounters,
    ) {
        let alloc = self.take_alloc();
        self.phases.push(PhaseStat {
            name,
            wall,
            sim_seconds,
            exec,
            spill: SpillCounters::default(),
            alloc,
            workers: Vec::new(),
        });
    }

    /// The phase-boundary drain every driver uses: take the aggregate
    /// counters *and* the per-worker spans accumulated on `pool` since
    /// the previous boundary and record them as one phase.
    pub fn push_phase_pool(
        &mut self,
        name: &'static str,
        wall: Duration,
        sim_seconds: f64,
        pool: &Executor,
    ) {
        self.push_phase_pool_spill(name, wall, sim_seconds, pool, SpillCounters::default());
    }

    /// [`JoinResult::push_phase_pool`] with the phase's disk-spill
    /// counters attached (the spilling join's drain).
    pub fn push_phase_pool_spill(
        &mut self,
        name: &'static str,
        wall: Duration,
        sim_seconds: f64,
        pool: &Executor,
        spill: SpillCounters,
    ) {
        let alloc = self.take_alloc();
        self.phases.push(PhaseStat {
            name,
            wall,
            sim_seconds,
            exec: pool.drain_counters(),
            spill,
            alloc,
            workers: pool.drain_spans(),
        });
    }

    /// Native counter totals over all phases (see
    /// [`PhaseStat::counter_totals`]).
    pub fn counter_totals(&self) -> CounterDelta {
        let mut total = CounterDelta::none();
        for p in &self.phases {
            total.merge(&p.counter_totals());
        }
        total
    }

    /// Spill totals over all phases (all-zero for in-memory drivers).
    pub fn spill_totals(&self) -> SpillCounters {
        let mut total = SpillCounters::default();
        for p in &self.phases {
            total.merge(p.spill);
        }
        total
    }

    /// Memory-subsystem totals over all phases (all-zero under the
    /// portable policy).
    pub fn alloc_totals(&self) -> AllocCounters {
        let mut total = AllocCounters::default();
        for p in &self.phases {
            total.merge(p.alloc);
        }
        total
    }

    /// Sum of executor counters over all phases.
    pub fn total_exec(&self) -> ExecCounters {
        let mut total = ExecCounters::new();
        for p in &self.phases {
            total.merge(p.exec);
        }
        total
    }

    /// Total measured wall time.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Total simulated time on the modeled machine.
    pub fn total_sim(&self) -> f64 {
        self.phases.iter().map(|p| p.sim_seconds).sum()
    }

    /// Sum of phases whose name contains `needle` (e.g. "partition").
    pub fn sim_of(&self, needle: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.sim_seconds)
            .sum()
    }

    pub fn wall_of(&self, needle: &str) -> Duration {
        self.phases
            .iter()
            .filter(|p| p.name.contains(needle))
            .map(|p| p.wall)
            .sum()
    }

    /// Paper throughput metric `(|R|+|S|) / time` in Mtuples/s over the
    /// *simulated* time.
    pub fn sim_throughput_mtps(&self, r_len: usize, s_len: usize) -> f64 {
        let t = self.total_sim();
        if t <= 0.0 {
            return f64::INFINITY;
        }
        (r_len + s_len) as f64 / t / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_filters() {
        let mut r = JoinResult::new(Algorithm::Pro);
        r.push_phase("partition", Duration::from_millis(10), 0.5);
        r.push_phase("join", Duration::from_millis(20), 1.0);
        assert_eq!(r.total_wall(), Duration::from_millis(30));
        assert!((r.total_sim() - 1.5).abs() < 1e-12);
        assert!((r.sim_of("join") - 1.0).abs() < 1e-12);
        assert_eq!(r.wall_of("partition"), Duration::from_millis(10));
    }

    #[test]
    fn checksum_transfer() {
        let mut c = JoinChecksum::new();
        c.add(1, 2, 3);
        let mut r = JoinResult::new(Algorithm::Nop);
        r.set_checksum(c);
        assert_eq!(r.matches, 1);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn throughput_uses_sim_time() {
        let mut r = JoinResult::new(Algorithm::Cprl);
        r.push_phase("join", Duration::ZERO, 2.0);
        let mt = r.sim_throughput_mtps(1_000_000, 1_000_000);
        assert!((mt - 1.0).abs() < 1e-9);
    }
}
